//! Out-of-core determinism properties: a sharded, merged corpus must
//! reproduce the single-process corpus to the last f64 bit for every
//! tested shard count × worker count, and the full disk-backed
//! pipeline (profile → shard → bin store → streamed GBDT) must
//! serialize models byte-equal to the resident pipeline.

use proptest::prelude::*;
use stencilmart::binstore::BinStore;
use stencilmart::config::PipelineConfig;
use stencilmart::dataset::{ProfiledCorpus, RegressionDataset};
use stencilmart::models::train_gb_regressor_streamed;
use stencilmart::shard::{
    build_sharded_corpus, merge_corpus_shards, write_regression_store, write_regression_store_with,
    StoreOptions,
};
use stencilmart_gpusim::GpuId;
use stencilmart_ml::gbdt::GbdtRegressor;
use stencilmart_stencil::pattern::Dim;

/// Serializes the binary: every test mutates the process-wide
/// `STENCILMART_THREADS` variable.
fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var("STENCILMART_THREADS", threads);
    let out = f();
    std::env::remove_var("STENCILMART_THREADS");
    out
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("stencilmart_prop_ooc_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus_cfg(seed: u64, stencils: usize) -> PipelineConfig {
    PipelineConfig {
        seed,
        stencils_per_dim: stencils,
        samples_per_oc: 2,
        gpus: vec![GpuId::V100, GpuId::P100],
        max_regression_rows: usize::MAX,
        ..PipelineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    // Any contiguous shard partitioning of the profiling work, run
    // under any worker count, merges back to the exact single-process
    // corpus: every simulated f64, every crash list, every pattern.
    // `shards = 8 > unique stencils` exercises empty shards.
    #[test]
    fn sharded_profiling_reproduces_resident_corpus(
        seed in 0u64..1 << 16,
        stencils in 4usize..7,
    ) {
        let _guard = env_lock();
        let cfg = corpus_cfg(seed, stencils);
        let expect = with_threads("1", || {
            serde_json::to_string(&ProfiledCorpus::build(&cfg, Dim::D2)).unwrap()
        });
        for shards in [1usize, 3, 8] {
            for threads in ["1", "4"] {
                let dir = tmp_dir(&format!("s{shards}t{threads}"));
                let merged = with_threads(threads, || {
                    build_sharded_corpus(&dir, &cfg, Dim::D2, shards).unwrap();
                    merge_corpus_shards(&dir).unwrap()
                });
                let got = serde_json::to_string(&merged).unwrap();
                let _ = std::fs::remove_dir_all(&dir);
                prop_assert!(
                    got == expect,
                    "corpus diverged at shards={} threads={}", shards, threads
                );
            }
        }
    }
}

// End to end: profile → regression bin store on disk → streamed GBDT
// must serialize byte-equal to the fully resident pipeline (uncapped
// RegressionDataset + in-RAM fit) at the same seed and bin count.
#[test]
fn disk_backed_gbdt_pipeline_matches_resident_pipeline() {
    let _guard = env_lock();
    let cfg = corpus_cfg(11, 5);
    let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
    let ds = RegressionDataset::build(&corpus, &cfg);

    let mut gb_cfg = stencilmart::models::gbdt_regressor_config(3);
    gb_cfg.rounds = 10; // keep the test fast; every round is checked bit-for-bit
    let resident = GbdtRegressor::fit(&ds.features, &ds.target_ln_ms, &gb_cfg);

    let dir = tmp_dir("endtoend");
    let store = write_regression_store(&dir, &corpus, &cfg, gb_cfg.bins, 97).unwrap();
    assert!(store.shard_count() > 1, "test must actually shard");
    let mut streamed_cfg = gb_cfg;
    streamed_cfg.bins = store.n_bins();
    let bins = store.sharded_bins(2);
    let streamed = GbdtRegressor::fit_streamed(&bins, &store.all_targets().unwrap(), &streamed_cfg);
    assert_eq!(
        serde_json::to_string(&streamed).unwrap(),
        serde_json::to_string(&resident).unwrap(),
        "disk-backed model must be byte-equal to the resident model"
    );

    // The convenience entry point trains the same way (full default
    // rounds are too slow here, so just check it runs and predicts).
    let model = train_gb_regressor_streamed(&store, 3, 2).unwrap();
    assert_eq!(model.predict(&ds.features).len(), ds.len());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The on-disk layout — u8 vs u16 bin codes, compressed vs plain CODES
/// sections — and the shard-cache size must all be invisible to
/// training: every combination serializes the streamed model byte-equal
/// to the resident fit, including sub-covering caches (capacity 1 and
/// shards/2) that force repeated evictions mid-tree.
#[test]
fn store_layout_and_cache_size_are_invisible_to_training() {
    let _guard = env_lock();
    let cfg = corpus_cfg(23, 5);
    let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
    let ds = RegressionDataset::build(&corpus, &cfg);

    let mut gb_cfg = stencilmart::models::gbdt_regressor_config(3);
    gb_cfg.rounds = 6;
    let expect =
        serde_json::to_string(&GbdtRegressor::fit(&ds.features, &ds.target_ln_ms, &gb_cfg))
            .unwrap();

    for wide_codes in [false, true] {
        for compress in [false, true] {
            let dir = tmp_dir(&format!("layout_w{wide_codes}_c{compress}"));
            let opts = StoreOptions {
                wide_codes,
                compress,
            };
            let store =
                write_regression_store_with(&dir, &corpus, &cfg, gb_cfg.bins, 97, opts).unwrap();
            let shards = store.shard_count();
            assert!(shards > 1, "test must actually shard");
            assert_eq!(store.code_width(), if wide_codes { 2 } else { 1 });
            let mut streamed_cfg = gb_cfg;
            streamed_cfg.bins = store.n_bins();
            let targets = store.all_targets().unwrap();
            for cache in [1, (shards / 2).max(1), shards + 1] {
                let bins = store.sharded_bins(cache);
                let streamed = GbdtRegressor::fit_streamed(&bins, &targets, &streamed_cfg);
                assert_eq!(
                    serde_json::to_string(&streamed).unwrap(),
                    expect,
                    "diverged at wide_codes={wide_codes} compress={compress} cache={cache}"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Hostile input: truncations and bit flips anywhere in a *compressed*
/// shard file must surface as structured `MartError`s from `open`,
/// never a panic — the checksum catches silent flips and the codec
/// decode check catches frames the checksum cannot vouch for.
#[test]
fn corrupted_compressed_store_fails_structurally_never_panics() {
    let _guard = env_lock();
    let cfg = corpus_cfg(31, 4);
    let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
    let dir = tmp_dir("hostile");
    let opts = StoreOptions {
        wide_codes: false,
        compress: true,
    };
    let store = write_regression_store_with(&dir, &corpus, &cfg, 16, 120, opts).unwrap();
    let victim = dir.join(&store.shard_entries()[0].file);
    let pristine = std::fs::read(&victim).unwrap();
    let known = [
        "io",
        "parse",
        "wrong_version",
        "checksum_mismatch",
        "invalid_shard",
        "decode",
    ];

    // Truncate at a spread of lengths, including mid-header and
    // mid-CODES-frame.
    for keep in [0, 3, 17, 31, 32, pristine.len() / 2, pristine.len() - 1] {
        std::fs::write(&victim, &pristine[..keep]).unwrap();
        let err = BinStore::open(&dir).expect_err("truncated shard must fail open");
        assert!(known.contains(&err.kind()), "keep={keep}: {err}");
    }

    // Flip one bit at a stride of positions across the whole file.
    for pos in (0..pristine.len()).step_by(97) {
        let mut bytes = pristine.clone();
        bytes[pos] ^= 0x10;
        std::fs::write(&victim, &bytes).unwrap();
        match BinStore::open(&dir) {
            // A flip in shard 0 must never produce a clean open: the
            // header, checksum, or decode check has to object.
            Ok(_) => panic!("bit flip at {pos} went unnoticed"),
            Err(err) => assert!(known.contains(&err.kind()), "pos={pos}: {err}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

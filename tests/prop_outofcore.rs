//! Out-of-core determinism properties: a sharded, merged corpus must
//! reproduce the single-process corpus to the last f64 bit for every
//! tested shard count × worker count, and the full disk-backed
//! pipeline (profile → shard → bin store → streamed GBDT) must
//! serialize models byte-equal to the resident pipeline.

use proptest::prelude::*;
use stencilmart::config::PipelineConfig;
use stencilmart::dataset::{ProfiledCorpus, RegressionDataset};
use stencilmart::models::train_gb_regressor_streamed;
use stencilmart::shard::{build_sharded_corpus, merge_corpus_shards, write_regression_store};
use stencilmart_gpusim::GpuId;
use stencilmart_ml::gbdt::GbdtRegressor;
use stencilmart_stencil::pattern::Dim;

/// Serializes the binary: every test mutates the process-wide
/// `STENCILMART_THREADS` variable.
fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var("STENCILMART_THREADS", threads);
    let out = f();
    std::env::remove_var("STENCILMART_THREADS");
    out
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("stencilmart_prop_ooc_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus_cfg(seed: u64, stencils: usize) -> PipelineConfig {
    PipelineConfig {
        seed,
        stencils_per_dim: stencils,
        samples_per_oc: 2,
        gpus: vec![GpuId::V100, GpuId::P100],
        max_regression_rows: usize::MAX,
        ..PipelineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    // Any contiguous shard partitioning of the profiling work, run
    // under any worker count, merges back to the exact single-process
    // corpus: every simulated f64, every crash list, every pattern.
    // `shards = 8 > unique stencils` exercises empty shards.
    #[test]
    fn sharded_profiling_reproduces_resident_corpus(
        seed in 0u64..1 << 16,
        stencils in 4usize..7,
    ) {
        let _guard = env_lock();
        let cfg = corpus_cfg(seed, stencils);
        let expect = with_threads("1", || {
            serde_json::to_string(&ProfiledCorpus::build(&cfg, Dim::D2)).unwrap()
        });
        for shards in [1usize, 3, 8] {
            for threads in ["1", "4"] {
                let dir = tmp_dir(&format!("s{shards}t{threads}"));
                let merged = with_threads(threads, || {
                    build_sharded_corpus(&dir, &cfg, Dim::D2, shards).unwrap();
                    merge_corpus_shards(&dir).unwrap()
                });
                let got = serde_json::to_string(&merged).unwrap();
                let _ = std::fs::remove_dir_all(&dir);
                prop_assert!(
                    got == expect,
                    "corpus diverged at shards={} threads={}", shards, threads
                );
            }
        }
    }
}

// End to end: profile → regression bin store on disk → streamed GBDT
// must serialize byte-equal to the fully resident pipeline (uncapped
// RegressionDataset + in-RAM fit) at the same seed and bin count.
#[test]
fn disk_backed_gbdt_pipeline_matches_resident_pipeline() {
    let _guard = env_lock();
    let cfg = corpus_cfg(11, 5);
    let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
    let ds = RegressionDataset::build(&corpus, &cfg);

    let mut gb_cfg = stencilmart::models::gbdt_regressor_config(3);
    gb_cfg.rounds = 10; // keep the test fast; every round is checked bit-for-bit
    let resident = GbdtRegressor::fit(&ds.features, &ds.target_ln_ms, &gb_cfg);

    let dir = tmp_dir("endtoend");
    let store = write_regression_store(&dir, &corpus, &cfg, gb_cfg.bins, 97).unwrap();
    assert!(store.shard_count() > 1, "test must actually shard");
    let mut streamed_cfg = gb_cfg;
    streamed_cfg.bins = store.n_bins();
    let bins = store.sharded_bins(2);
    let streamed = GbdtRegressor::fit_streamed(&bins, &store.all_targets().unwrap(), &streamed_cfg);
    assert_eq!(
        serde_json::to_string(&streamed).unwrap(),
        serde_json::to_string(&resident).unwrap(),
        "disk-backed model must be byte-equal to the resident model"
    );

    // The convenience entry point trains the same way (full default
    // rounds are too slow here, so just check it runs and predicts).
    let model = train_gb_regressor_streamed(&store, 3, 2).unwrap();
    assert_eq!(model.predict(&ds.features).len(), ds.len());
    let _ = std::fs::remove_dir_all(&dir);
}

//! Structure-aware hostile-input fuzzing of the wire protocol decoder —
//! deterministic (fixed seed), no external fuzzer dependency.
//!
//! Every iteration mutates known-valid frames (bit flips, truncations,
//! length-lies, garbage splices), feeds the result to a fresh
//! [`FrameDecoder`] in randomly sized chunks, and checks the decoder's
//! contract:
//!
//! * it never panics (a panic fails the test process outright);
//! * every outcome is `Ok(Some)`, `Ok(None)`, or a structured
//!   [`WireError`];
//! * after a `fatal` error the stream is abandoned (as a server would);
//! * every frame that *does* decode re-encodes to bytes that decode to
//!   the same frame again (round-trip stability for survivors).
//!
//! The iteration budget comes from `STENCILMART_FUZZ_ITERS` (default
//! 500 for local `cargo test`; CI cranks it up).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stencilmart::wire::{
    encode_request, encode_response, Frame, FrameDecoder, PatternSpec, Reply, Request, Response,
};

fn iters() -> u64 {
    std::env::var("STENCILMART_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500)
}

/// The valid-frame corpus the mutators start from.
fn corpus() -> Vec<Vec<u8>> {
    let requests = [
        Request::BestOc {
            gpu: "V100".to_string(),
            pattern: PatternSpec::Name("star2d1r".to_string()),
        },
        Request::BestOc {
            gpu: "P100".to_string(),
            pattern: PatternSpec::Offsets {
                rank: 2,
                points: vec![[1, 0, 0], [-1, 0, 0], [0, 1, 0], [0, -1, 0]],
            },
        },
        Request::PredictTime {
            gpu: "A100".to_string(),
            pattern: PatternSpec::Offsets {
                rank: 3,
                points: vec![[0, 0, 1], [0, 0, -1], [2, 0, 0]],
            },
            oc: "ST_BM".to_string(),
        },
        Request::RankGpus {
            criterion: "cost".to_string(),
            pattern: PatternSpec::Name("box3d2r".to_string()),
            oc: "ST".to_string(),
        },
        Request::Ping,
        Request::Reload,
        Request::Shutdown,
    ];
    let responses = [
        Response {
            id: 1,
            model_version: 3,
            result: Ok(Reply::BestOc {
                oc: "ST_CM_TB".to_string(),
            }),
        },
        Response {
            id: 2,
            model_version: 1,
            result: Ok(Reply::Time { ms: 1.5 }),
        },
        Response {
            id: 3,
            model_version: 2,
            result: Ok(Reply::Ranking(vec![
                ("V100".to_string(), 0.5),
                ("A100".to_string(), 0.25),
            ])),
        },
        Response {
            id: 4,
            model_version: 7,
            result: Err(("unknown_gpu".to_string(), "no such GPU".to_string())),
        },
    ];
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for (i, r) in requests.iter().enumerate() {
        frames.push(encode_request(i as u64 * 31, r));
    }
    for r in &responses {
        frames.push(encode_response(r));
    }
    frames
}

/// Apply one structure-aware mutation to `bytes`.
fn mutate(rng: &mut ChaCha8Rng, bytes: &mut Vec<u8>) {
    match rng.gen_range(0..5u32) {
        // Bit flips: 1..8 random single-bit corruptions.
        0 => {
            for _ in 0..rng.gen_range(1..=8u32) {
                if bytes.is_empty() {
                    return;
                }
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1 << rng.gen_range(0..8u32);
            }
        }
        // Truncation: cut the frame anywhere.
        1 => {
            let keep = rng.gen_range(0..bytes.len().max(1));
            bytes.truncate(keep);
        }
        // Length-lie: overwrite the leading varint with random bytes.
        2 => {
            let n = rng.gen_range(1..=5usize).min(bytes.len());
            for b in bytes.iter_mut().take(n) {
                *b = rng.gen::<u8>();
            }
        }
        // Garbage splice: insert random bytes at a random point.
        3 => {
            let at = rng.gen_range(0..=bytes.len());
            let count = rng.gen_range(1..32usize);
            let garbage: Vec<u8> = (0..count).map(|_| rng.gen()).collect();
            bytes.splice(at..at, garbage);
        }
        // Byte overwrite run.
        _ => {
            if bytes.is_empty() {
                return;
            }
            let at = rng.gen_range(0..bytes.len());
            let run = rng.gen_range(1..16usize).min(bytes.len() - at);
            for b in &mut bytes[at..at + run] {
                *b = rng.gen();
            }
        }
    }
}

/// Feed `stream` to a fresh decoder in random chunks, enforcing the
/// decoder contract. Returns the decoded survivor frames.
fn drive(rng: &mut ChaCha8Rng, stream: &[u8]) -> Vec<Frame> {
    let mut dec = FrameDecoder::new();
    let mut survivors = Vec::new();
    let mut pos = 0usize;
    'outer: while pos < stream.len() {
        let chunk = rng.gen_range(1..=64usize).min(stream.len() - pos);
        dec.push(&stream[pos..pos + chunk]);
        pos += chunk;
        loop {
            match dec.next_frame() {
                Ok(None) => break,
                Ok(Some(frame)) => survivors.push(frame),
                Err(e) => {
                    // Structured error, never a panic. `kind()` must be
                    // one of the stable tags.
                    assert!(!e.error.kind().is_empty());
                    if e.fatal {
                        // Framing is lost: a server drops the
                        // connection here; so does the harness.
                        break 'outer;
                    }
                }
            }
        }
    }
    survivors
}

/// Survivor frames must round-trip: re-encode, decode, compare.
fn assert_roundtrip(frame: &Frame) {
    let bytes = match frame {
        Frame::Request { id, req } => encode_request(*id, req),
        Frame::Response(resp) => encode_response(resp),
    };
    let mut dec = FrameDecoder::new();
    dec.push(&bytes);
    let again = dec
        .next_frame()
        .expect("re-encoded survivor decodes")
        .expect("re-encoded survivor is complete");
    // Compare via a second encoding: f64 payloads may be NaN after
    // mutation, where PartialEq would be false on identical frames.
    let bytes2 = match &again {
        Frame::Request { id, req } => encode_request(*id, req),
        Frame::Response(resp) => encode_response(resp),
    };
    assert_eq!(bytes, bytes2, "survivor encoding is not stable");
}

#[test]
fn mutated_valid_frames_never_panic_the_decoder() {
    let corpus = corpus();
    let mut rng = ChaCha8Rng::seed_from_u64(0x57E4C11);
    for _ in 0..iters() {
        // Concatenate 1..4 frames, mutate 1..3 of the stream's copies.
        let count = rng.gen_range(1..=4usize);
        let mut stream = Vec::new();
        for _ in 0..count {
            stream.extend_from_slice(&corpus[rng.gen_range(0..corpus.len())]);
        }
        for _ in 0..rng.gen_range(1..=3u32) {
            mutate(&mut rng, &mut stream);
        }
        for frame in drive(&mut rng, &stream) {
            assert_roundtrip(&frame);
        }
    }
}

#[test]
fn pure_garbage_streams_never_panic_the_decoder() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBADBEEF);
    for _ in 0..iters() {
        let len = rng.gen_range(0..512usize);
        let stream: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        // Contract checks happen inside drive(); garbage rarely decodes
        // but any survivor must still round-trip.
        for frame in drive(&mut rng, &stream) {
            assert_roundtrip(&frame);
        }
    }
}

#[test]
fn interleaved_corruption_resynchronizes_on_frame_boundaries() {
    // A corrupt frame between two valid ones: the decoder reports one
    // recoverable error and still yields both valid frames.
    let good = encode_request(7, &Request::Ping);
    let mut bad = encode_request(8, &Request::Ping);
    let last = bad.len() - 1;
    bad[last] ^= 0xff;
    let mut stream = Vec::new();
    stream.extend_from_slice(&good);
    stream.extend_from_slice(&bad);
    stream.extend_from_slice(&good);
    let mut dec = FrameDecoder::new();
    dec.push(&stream);
    let mut frames = 0;
    let mut errors = 0;
    loop {
        match dec.next_frame() {
            Ok(None) => break,
            Ok(Some(_)) => frames += 1,
            Err(e) => {
                assert!(!e.fatal);
                errors += 1;
            }
        }
    }
    assert_eq!((frames, errors), (2, 1));
}

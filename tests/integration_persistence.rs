//! Bundle persistence integration tests: every classifier × regressor
//! mechanism round-trips through a saved bundle with bit-identical
//! predictions, and corrupt/truncated/hostile inputs surface as
//! structured errors — never panics — through both `ModelBundle::load`
//! and the batched `Predictor` APIs.

use std::path::PathBuf;

use stencilmart::api::{Predictor, StencilMart};
use stencilmart::bundle::{ModelBundle, FORMAT_VERSION};
use stencilmart::config::PipelineConfig;
use stencilmart::models::{ClassifierKind, RegressorKind};
use stencilmart_gpusim::{GpuId, OptCombo, ParamSetting};
use stencilmart_obs::manifest::fnv1a;
use stencilmart_stencil::pattern::Dim;
use stencilmart_stencil::shapes;

fn cfg() -> PipelineConfig {
    PipelineConfig {
        stencils_per_dim: 10,
        samples_per_oc: 2,
        max_regression_rows: 600,
        gpus: vec![GpuId::V100, GpuId::P100],
        ..PipelineConfig::default()
    }
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("stencilmart-it-{}-{name}", std::process::id()))
}

/// Probe patterns the round-trip comparisons use.
fn probes() -> Vec<stencilmart_stencil::pattern::StencilPattern> {
    vec![
        shapes::star(Dim::D2, 1),
        shapes::star(Dim::D2, 2),
        shapes::box_(Dim::D2, 1),
    ]
}

#[test]
fn bundle_roundtrip_is_bit_identical_for_every_mechanism() {
    let probes = probes();
    let oc = OptCombo::parse("ST").unwrap();
    let params = ParamSetting::default_for_dim(&oc, Dim::D2);
    for classifier in ClassifierKind::ALL {
        for regressor in RegressorKind::ALL {
            let mut mart = StencilMart::train(cfg(), Dim::D2, classifier, regressor);
            let direct_ocs: Vec<OptCombo> = probes
                .iter()
                .map(|p| mart.predict_best_oc(p, GpuId::V100))
                .collect();
            let direct_times: Vec<u64> = probes
                .iter()
                .map(|p| mart.predict_time_ms(p, &oc, &params, GpuId::P100).to_bits())
                .collect();

            let path = tmp_path(&format!("rt-{classifier:?}-{regressor:?}.json"));
            mart.save(&path, "integration-test").unwrap();
            let mut served = Predictor::load(&path).unwrap();
            std::fs::remove_file(&path).unwrap();

            let loaded_ocs = served.best_oc_batch(&probes, GpuId::V100);
            let loaded_times = served.predict_time_batch(&probes, &oc, &params, GpuId::P100);
            for i in 0..probes.len() {
                assert_eq!(
                    *loaded_ocs[i].as_ref().unwrap(),
                    direct_ocs[i],
                    "{classifier:?}/{regressor:?} probe {i}: OC drifted through the bundle"
                );
                assert_eq!(
                    loaded_times[i].as_ref().unwrap().to_bits(),
                    direct_times[i],
                    "{classifier:?}/{regressor:?} probe {i}: time drifted through the bundle"
                );
            }
        }
    }
}

#[test]
fn corrupted_bundles_error_without_panicking() {
    let mut mart = StencilMart::train(
        cfg(),
        Dim::D2,
        ClassifierKind::Gbdt,
        RegressorKind::GbRegressor,
    );
    let path = tmp_path("corrupt.json");
    mart.save(&path, "integration-test").unwrap();
    let good = std::fs::read_to_string(&path).unwrap();

    // Flipped checksum.
    let stored = good.split("\"checksum\":\"").nth(1).unwrap()[..16].to_string();
    let flipped: String = stored
        .chars()
        .map(|c| if c == '0' { '1' } else { '0' })
        .collect();
    std::fs::write(&path, good.replace(&stored, &flipped)).unwrap();
    let err = ModelBundle::load(&path).err().unwrap();
    assert_eq!(err.kind(), "checksum_mismatch", "{err}");

    // Wrong format version.
    std::fs::write(
        &path,
        good.replace(
            &format!("\"format_version\":{FORMAT_VERSION}"),
            "\"format_version\":99",
        ),
    )
    .unwrap();
    let err = ModelBundle::load(&path).err().unwrap();
    assert_eq!(err.kind(), "wrong_version", "{err}");

    // Truncated file.
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    let err = ModelBundle::load(&path).err().unwrap();
    assert_eq!(err.kind(), "parse", "{err}");

    // Missing file.
    std::fs::remove_file(&path).unwrap();
    let err = ModelBundle::load(&path).err().unwrap();
    assert_eq!(err.kind(), "io", "{err}");

    // Structurally invalid: duplicating one group's members into
    // another breaks the exactly-one-group partition invariant.
    let mut bundle = mart.to_bundle("integration-test");
    let dup = bundle.merging.groups[0].clone();
    bundle.merging.groups[1].extend(dup);
    bundle.save(&path).unwrap();
    let err = ModelBundle::load(&path).err().unwrap();
    assert_eq!(err.kind(), "invalid_bundle", "{err}");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn hostile_files_and_requests_never_panic() {
    let path = tmp_path("hostile.json");
    // Payload that checksums correctly but is not a bundle, plus a pile
    // of structurally broken envelopes.
    let bogus_payload = "{\"definitely\":\"not a bundle\"}";
    let checksummed = format!(
        "{{\"format_version\":{FORMAT_VERSION},\"checksum\":\"{:016x}\",\
         \"training_config_hash\":\"x\",\"payload\":{}}}",
        fnv1a(bogus_payload.as_bytes()),
        serde_json::to_string(&bogus_payload).unwrap()
    );
    let hostile: Vec<String> = vec![
        String::new(),
        "null".into(),
        "{}".into(),
        "[1,2".into(),
        "{\"format_version\":\"one\"}".into(),
        format!("{{\"format_version\":{FORMAT_VERSION}}}"),
        checksummed,
    ];
    for (i, contents) in hostile.iter().enumerate() {
        std::fs::write(&path, contents).unwrap();
        let res = ModelBundle::load(&path);
        assert!(res.is_err(), "hostile file {i} was accepted");
    }
    std::fs::remove_file(&path).unwrap();

    // Hostile requests against a live predictor: wrong dimensionality,
    // untrained GPU, structurally invalid OC, parameters that do not fit
    // the OC — all per-entry errors, no panics, valid entries unharmed.
    let mart = StencilMart::train(
        cfg(),
        Dim::D2,
        ClassifierKind::Gbdt,
        RegressorKind::GbRegressor,
    );
    let mut served = Predictor::from_mart(mart);
    let mixed = vec![
        shapes::star(Dim::D3, 1),
        shapes::star(Dim::D2, 1),
        shapes::box_(Dim::D3, 2),
        shapes::star(Dim::D2, 1),
    ];
    let out = served.best_oc_batch(&mixed, GpuId::V100);
    assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 2);
    assert!(served
        .best_oc_batch(&mixed, GpuId::A100)
        .iter()
        .all(|r| r.is_err()));
    assert!(served.best_oc_batch(&[], GpuId::V100).is_empty());

    let valid_oc = OptCombo::parse("ST_TB").unwrap();
    let params = ParamSetting::default_for_dim(&valid_oc, Dim::D2);
    let out = served.predict_time_batch(&mixed, &valid_oc, &params, GpuId::V100);
    assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 2);

    let invalid_oc = OptCombo {
        rt: true,
        ..OptCombo::BASE
    };
    let out = served.predict_time_batch(&mixed, &invalid_oc, &params, GpuId::V100);
    assert!(out.iter().all(|r| r.is_err()));

    let wrong_params = ParamSetting {
        time_tile: 1, // TB requires >= 2
        ..params
    };
    let out = served.predict_time_batch(&mixed, &valid_oc, &wrong_params, GpuId::V100);
    assert!(out.iter().all(|r| r.is_err()));
}

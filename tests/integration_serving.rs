//! Serving-layer integration tests: hot-swap atomicity under
//! multi-threaded load, JSONL ordering/flush discipline, and a full
//! TCP round-trip through the wire protocol server.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use stencilmart::api::{Predictor, StencilMart};
use stencilmart::config::PipelineConfig;
use stencilmart::models::{ClassifierKind, RegressorKind};
use stencilmart::serve::engine::{Engine, EngineOptions};
use stencilmart::serve::jsonl;
use stencilmart::serve::server::{serve, ServerOptions};
use stencilmart::wire::{
    encode_request, Frame, FrameDecoder, PatternSpec, Reply, Request, Response,
};
use stencilmart_gpusim::GpuId;
use stencilmart_stencil::pattern::Dim;

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("stencilmart-serve-{}-{name}", std::process::id()))
}

/// Two tiny bundles, trained once and shared across tests:
/// * bundle A covers `{V100, P100}` — `best_oc` on P100 succeeds;
/// * bundle B covers `{V100}` only — `best_oc` on P100 is a structured
///   `unknown_gpu` error.
///
/// The A/B difference is the consistency oracle for the hot-swap
/// stress: which outcome a response carries must match the generation
/// version it echoes.
fn bundles() -> &'static (PathBuf, PathBuf) {
    static BUNDLES: OnceLock<(PathBuf, PathBuf)> = OnceLock::new();
    BUNDLES.get_or_init(|| {
        let base = PipelineConfig {
            stencils_per_dim: 10,
            samples_per_oc: 2,
            max_regression_rows: 600,
            ..PipelineConfig::default()
        };
        let cfg_a = PipelineConfig {
            gpus: vec![GpuId::V100, GpuId::P100],
            ..base.clone()
        };
        let cfg_b = PipelineConfig {
            gpus: vec![GpuId::V100],
            ..base
        };
        let path_a = tmp_path("bundle-a.json");
        let path_b = tmp_path("bundle-b.json");
        StencilMart::train(
            cfg_a,
            Dim::D2,
            ClassifierKind::Gbdt,
            RegressorKind::GbRegressor,
        )
        .save(&path_a, "serving-test")
        .expect("save bundle A");
        StencilMart::train(
            cfg_b,
            Dim::D2,
            ClassifierKind::Gbdt,
            RegressorKind::GbRegressor,
        )
        .save(&path_b, "serving-test")
        .expect("save bundle B");
        (path_a, path_b)
    })
}

fn probe() -> Request {
    Request::BestOc {
        gpu: "P100".to_string(),
        pattern: PatternSpec::Name("star2d1r".to_string()),
    }
}

/// 4 threads hammer `best_oc` on P100 while the main thread swaps
/// between bundle A (serves P100) and bundle B (doesn't) in a loop.
/// Generation versions alternate deterministically — 1=A, 2=B, 3=A… —
/// so every response must be internally consistent: an `Ok` may only
/// come from an odd (A) version and an `unknown_gpu` error only from an
/// even (B) version. Any torn read (new version, old model, or vice
/// versa) fails the assertion.
#[test]
fn hot_swap_is_atomic_under_concurrent_load() {
    let (path_a, path_b) = bundles();
    let engine = Arc::new(Engine::new(
        Predictor::load(path_a).expect("load bundle A"),
        EngineOptions::default(),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for t in 0..4u64 {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let mut seen_ok = 0u64;
            let mut seen_unknown = 0u64;
            let mut seq = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let resp = engine.submit((t << 32) | seq, probe());
                seq += 1;
                match &resp.result {
                    Ok(Reply::BestOc { .. }) => {
                        assert!(
                            !resp.model_version.is_multiple_of(2),
                            "Ok(best_oc) served by even (B) generation {}",
                            resp.model_version
                        );
                        seen_ok += 1;
                    }
                    Err((kind, _)) if kind == "unknown_gpu" => {
                        assert!(
                            resp.model_version.is_multiple_of(2),
                            "unknown_gpu served by odd (A) generation {}",
                            resp.model_version
                        );
                        seen_unknown += 1;
                    }
                    other => panic!("unexpected response {other:?}"),
                }
            }
            (seen_ok, seen_unknown)
        }));
    }
    // 24 swaps, alternating B, A, B, A, … — versions 2, 3, 4, …
    for i in 0..24 {
        let path = if i % 2 == 0 { path_b } else { path_a };
        let v = engine.swap_with(Predictor::load(path).expect("load swap bundle"));
        assert_eq!(v, i as u64 + 2);
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    stop.store(true, Ordering::SeqCst);
    let mut total_ok = 0;
    let mut total_unknown = 0;
    for w in workers {
        let (ok, unknown) = w.join().expect("worker panicked");
        total_ok += ok;
        total_unknown += unknown;
    }
    // The workers ran across many swaps: both generations must actually
    // have been observed, or the oracle proved nothing.
    assert!(total_ok > 0, "no responses from an A generation");
    assert!(total_unknown > 0, "no responses from a B generation");
}

/// A writer that records flush positions, to pin the per-line flush
/// discipline.
#[derive(Default)]
struct FlushTracker {
    bytes: Vec<u8>,
    flushed_lines: usize,
    flushes: usize,
}

impl Write for FlushTracker {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.flushes += 1;
        // Every flush must land exactly on a line boundary: the
        // response for request N is fully visible before N+1 is served.
        let text = String::from_utf8(self.bytes.clone()).expect("utf8 output");
        assert!(
            text.is_empty() || text.ends_with('\n'),
            "flush mid-line: {text:?}"
        );
        self.flushed_lines = text.lines().count();
        Ok(())
    }
}

#[test]
fn jsonl_serving_flushes_every_line_in_order() {
    let (path_a, _) = bundles();
    let mut predictor = Predictor::load(path_a).expect("load bundle A");
    let input = concat!(
        "{\"op\":\"best_oc\",\"gpu\":\"V100\",\"stencil\":\"star2d1r\"}\n",
        "this is not json\n",
        "{\"op\":\"best_oc\",\"gpu\":\"NoSuchGpu\",\"stencil\":\"star2d1r\"}\n",
        "\n",
        "{\"op\":\"predict_time\",\"gpu\":\"P100\",\"stencil\":\"box2d1r\",\"oc\":\"ST\"}\n",
        "{\"op\":\"best_oc\",\"gpu\":\"V100\",\"offsets\":[[1,0],[-1,0],[0,1],[0,-1]]}\n",
    );
    let mut out = FlushTracker::default();
    let stats = jsonl::serve_lines(&mut predictor, input.as_bytes(), &mut out)
        .expect("serving in-memory input");
    assert_eq!(stats.served, 3);
    assert_eq!(stats.failed, 2);
    // One flush per response line (blank input lines produce nothing).
    assert_eq!(out.flushes, 5);
    assert_eq!(out.flushed_lines, 5);
    let text = String::from_utf8(out.bytes).expect("utf8 output");
    let lines: Vec<&str> = text.lines().collect();
    // Responses come back in request order: ok, parse error, unknown
    // GPU, ok, ok.
    assert!(
        lines[0].starts_with("{\"ok\":true,\"op\":\"best_oc\""),
        "{}",
        lines[0]
    );
    assert!(
        lines[1].starts_with("{\"ok\":false,\"kind\":\"parse\""),
        "{}",
        lines[1]
    );
    assert!(
        lines[2].starts_with("{\"ok\":false,\"kind\":\"unknown_gpu\""),
        "{}",
        lines[2]
    );
    assert!(
        lines[3].starts_with("{\"ok\":true,\"op\":\"predict_time\""),
        "{}",
        lines[3]
    );
    assert!(
        lines[4].starts_with("{\"ok\":true,\"op\":\"best_oc\""),
        "{}",
        lines[4]
    );
    // Every line parses as standalone JSON.
    for line in &lines {
        serde_json::parse_value(line).expect("response line is valid JSON");
    }
}

/// A bundle trained on the full 8-GPU two-vendor matrix must round-trip
/// through `ModelBundle` with no feature-width validation errors and
/// serve unchanged: `rank_gpus` under pure performance ranks *every*
/// GPU — including the unpriced consumer cards (2080 Ti, 6900 XT) —
/// while cost efficiency ranks exactly the priced fleet, and `best_oc`
/// answers for an AMD part.
#[test]
fn full_matrix_bundle_serves_mixed_priced_unpriced_fleet() {
    use stencilmart::serve::dispatch_batch;

    let cfg = PipelineConfig {
        stencils_per_dim: 10,
        samples_per_oc: 2,
        max_regression_rows: 600,
        ..PipelineConfig::default()
    };
    assert_eq!(
        cfg.gpus.len(),
        GpuId::ALL.len(),
        "default covers the matrix"
    );
    let path = tmp_path("bundle-matrix.json");
    StencilMart::train(
        cfg,
        Dim::D2,
        ClassifierKind::Gbdt,
        RegressorKind::GbRegressor,
    )
    .save(&path, "serving-test")
    .expect("save full-matrix bundle");
    let mut predictor = Predictor::load(&path).expect("full-matrix bundle round-trips");

    let reqs = vec![
        Request::RankGpus {
            criterion: "perf".to_string(),
            pattern: PatternSpec::Name("star2d1r".to_string()),
            oc: "ST".to_string(),
        },
        Request::RankGpus {
            criterion: "cost".to_string(),
            pattern: PatternSpec::Name("star2d1r".to_string()),
            oc: "ST".to_string(),
        },
        Request::BestOc {
            gpu: "MI100".to_string(),
            pattern: PatternSpec::Name("star2d1r".to_string()),
        },
    ];
    let replies = dispatch_batch(&mut predictor, &reqs);

    match replies[0].as_ref().expect("perf ranking succeeds") {
        Reply::Ranking(items) => {
            assert_eq!(items.len(), GpuId::ALL.len());
            let names: Vec<&str> = items.iter().map(|(n, _)| n.as_str()).collect();
            // Time-based rankings must never drop an unpriced GPU.
            assert!(names.contains(&"2080Ti"), "{names:?}");
            assert!(names.contains(&"6900XT"), "{names:?}");
            assert!(names.contains(&"MI210"), "{names:?}");
            assert!(items.iter().all(|(_, ms)| ms.is_finite() && *ms > 0.0));
        }
        other => panic!("perf rank_gpus answered {other:?}"),
    }
    match replies[1].as_ref().expect("cost ranking succeeds") {
        Reply::Ranking(items) => {
            // Exactly the priced fleet: consumer cards are unrentable.
            assert_eq!(items.len(), 6, "{items:?}");
            let names: Vec<&str> = items.iter().map(|(n, _)| n.as_str()).collect();
            assert!(!names.contains(&"2080Ti"), "{names:?}");
            assert!(!names.contains(&"6900XT"), "{names:?}");
        }
        other => panic!("cost rank_gpus answered {other:?}"),
    }
    assert!(
        matches!(replies[2], Ok(Reply::BestOc { .. })),
        "best_oc on an AMD part: {:?}",
        replies[2]
    );
}

fn read_n_responses(stream: &mut TcpStream, n: usize) -> Vec<Response> {
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut got = Vec::with_capacity(n);
    while got.len() < n {
        let read = stream.read(&mut buf).expect("read from server");
        assert!(
            read > 0,
            "server closed early with {} of {n} responses",
            got.len()
        );
        dec.push(&buf[..read]);
        loop {
            match dec.next_frame() {
                Ok(None) => break,
                Ok(Some(Frame::Response(r))) => got.push(r),
                Ok(Some(other)) => panic!("server sent {other:?}"),
                Err(e) => panic!("client-side decode error: {}", e.error),
            }
        }
    }
    got
}

/// Full TCP round-trip: pipelined valid requests, one corrupt frame
/// mid-stream, a hot-swap `Reload`, then `Shutdown` — zero dropped
/// valid requests, the corrupt frame surfaces as a structured error
/// response, and the accept loop exits cleanly.
#[test]
fn tcp_server_round_trip_with_corruption_and_reload() {
    let (path_a, _) = bundles();
    let engine = Arc::new(Engine::new(
        Predictor::load(path_a).expect("load bundle A"),
        EngineOptions {
            max_batch: 64,
            bundle_path: Some(path_a.clone()),
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || serve(listener, engine, ServerOptions::default()))
    };

    let mut stream = TcpStream::connect(addr).expect("connect");
    // 20 pipelined valid requests with a corrupt frame in the middle.
    let mut wire = Vec::new();
    for i in 0..20u64 {
        wire.extend_from_slice(&encode_request(i, &probe()));
        if i == 9 {
            let mut corrupt = encode_request(999, &Request::Ping);
            let last = corrupt.len() - 1;
            corrupt[last] ^= 0xff;
            wire.extend_from_slice(&corrupt);
        }
    }
    stream.write_all(&wire).expect("write pipelined requests");
    let responses = read_n_responses(&mut stream, 21);
    let errors: Vec<&Response> = responses.iter().filter(|r| r.result.is_err()).collect();
    assert_eq!(errors.len(), 1, "exactly the corrupt frame errors");
    assert_eq!(
        errors[0].result.as_ref().unwrap_err().0,
        "checksum_mismatch"
    );
    let ok_ids: Vec<u64> = responses
        .iter()
        .filter(|r| r.result.is_ok())
        .map(|r| r.id)
        .collect();
    assert_eq!(ok_ids.len(), 20, "zero dropped valid requests");
    for i in 0..20u64 {
        assert!(ok_ids.contains(&i), "request {i} was dropped");
    }

    // Hot-swap over the wire, mid-connection.
    stream
        .write_all(&encode_request(100, &Request::Reload))
        .expect("write reload");
    let reload = read_n_responses(&mut stream, 1)
        .pop()
        .expect("reload response");
    match reload.result {
        Ok(Reply::Reloaded { version }) => assert!(version >= 2),
        other => panic!("reload answered {other:?}"),
    }
    // Post-swap traffic on the same connection still serves.
    stream
        .write_all(&encode_request(101, &probe()))
        .expect("write post-swap probe");
    let post = read_n_responses(&mut stream, 1)
        .pop()
        .expect("post-swap response");
    assert!(post.result.is_ok());
    assert!(
        post.model_version >= 2,
        "post-swap response from old generation"
    );

    // Clean shutdown: the accept loop returns.
    stream
        .write_all(&encode_request(102, &Request::Shutdown))
        .expect("write shutdown");
    let bye = read_n_responses(&mut stream, 1)
        .pop()
        .expect("shutdown ack");
    assert!(bye.result.is_ok());
    server
        .join()
        .expect("server thread panicked")
        .expect("accept loop failed");
}

//! Integration tests for the experiment drivers: every table and figure
//! regenerates, renders, and satisfies the paper's qualitative claims at
//! small scale.

use stencilmart::advisor::Criterion;
use stencilmart::baselines::BaselinePolicy;
use stencilmart::config::PipelineConfig;
use stencilmart::experiments as exp;
use stencilmart_gpusim::{GpuId, NoiseModel, ProfileConfig};

fn ctx() -> exp::ExperimentContext {
    exp::ExperimentContext::build(PipelineConfig {
        stencils_per_dim: 16,
        samples_per_oc: 3,
        folds: 2,
        max_regression_rows: 900,
        ..PipelineConfig::default()
    })
}

fn pc() -> ProfileConfig {
    ProfileConfig {
        samples_per_oc: 3,
        noise: NoiseModel::default(),
        seed: 9,
    }
}

#[test]
fn tables_contain_paper_constants() {
    let t1 = exp::table1();
    assert!(t1.contains("Temporal Blocking"));
    assert!(t1.contains("(30)"), "30 valid OCs:\n{t1}");
    let t2 = exp::table2();
    assert!(t2.contains("sparsity"));
    let t34 = exp::table3_and_4();
    assert!(t34.contains("$1.46/hr"));
    assert!(t34.contains("108")); // A100 SMs
}

#[test]
fn fig1_gap_is_large_and_positive() {
    let r = exp::fig1(&pc());
    assert_eq!(r.gaps.len(), 24);
    // Paper: average ≈ 9.95×. Accept a broad band for the simulator.
    assert!(r.average > 3.0 && r.average < 60.0, "avg {}", r.average);
    assert!(r.gaps.iter().all(|(_, g)| *g >= 1.0));
}

#[test]
fn fig2_streaming_dominates() {
    let ctx = ctx();
    let r = exp::fig2(&ctx);
    for (gpu, share) in &r.streaming_share {
        assert!(
            *share > 0.5,
            "{gpu}: streaming OCs won only {:.0}%",
            share * 100.0
        );
    }
}

#[test]
fn fig3_pcc_values_are_high_for_top_pairs() {
    let ctx = ctx();
    let r = exp::fig3(&ctx, 50);
    for (gpu, summary) in &r.per_gpu {
        assert!(summary.max <= 1.0 + 1e-9, "{gpu}");
        assert!(summary.min > 0.5, "{gpu}: top-pair PCC {}", summary.min);
    }
    assert!(r.intersection > 0.0, "some pairs generalize across GPUs");
}

#[test]
fn fig4_shows_architecture_nonuniformity() {
    let r = exp::fig4(&pc());
    // Paper's headline: the most powerful GPU is not always the best.
    // Count stencils where V100 beats A100.
    let (v_idx, a_idx) = (
        r.gpus.iter().position(|&g| g == GpuId::V100).unwrap(),
        r.gpus.iter().position(|&g| g == GpuId::A100).unwrap(),
    );
    let v100_wins = r.rows.iter().filter(|(_, s)| s[v_idx] > s[a_idx]).count();
    assert!(
        v100_wins > 0,
        "V100 must beat A100 somewhere (paper: box3d3r/4r)"
    );
    assert!(v100_wins < r.rows.len(), "A100 must also win somewhere");
}

#[test]
fn classification_suite_beats_chance_and_baselines_render() {
    let ctx = ctx();
    let suite = exp::classification_suite(&ctx);
    let fig9 = suite.render_fig9(&ctx);
    assert!(fig9.contains("2d stencils"));
    assert!(fig9.contains("3d stencils"));
    // Mean accuracy across everything must beat 5-class chance.
    let mean: f64 = suite
        .evals
        .iter()
        .map(|(_, _, _, e)| e.accuracy)
        .sum::<f64>()
        / suite.evals.len() as f64;
    assert!(mean > 0.3, "mean accuracy {mean}");

    for (fig, policy) in [
        (10, BaselinePolicy::ArtemisLike),
        (11, BaselinePolicy::An5dLike),
    ] {
        let sp = exp::speedup_over(&ctx, &suite, policy);
        let rendered = sp.render(fig, &ctx);
        assert!(rendered.contains(policy.name()));
        for (_, _, _, v) in &sp.entries {
            assert!(v.is_finite() && *v > 0.2 && *v < 50.0);
        }
    }
}

#[test]
fn regression_suite_and_fig13_produce_finite_errors() {
    let ctx = ctx();
    let suite = exp::regression_suite(&ctx);
    assert_eq!(suite.evals.len(), 6); // 3 mechanisms × 2 dims
    let fig12 = suite.render_fig12(&ctx);
    assert!(fig12.contains("GBRegressor"));
    for (_, e) in &suite.evals {
        assert!(e.mape_overall.is_finite() && e.mape_overall > 0.0);
    }
    let f13 = exp::fig13(&ctx, &[2, 4], &[16, 32]);
    assert_eq!(f13.grid.len(), 2);
    assert_eq!(f13.grid[0].len(), 2);
    assert_eq!(f13.grid[0][0].len(), 2);
    assert!(f13.render().contains("layers\\width"));
}

#[test]
fn advisor_figures_render_both_criteria() {
    let ctx = ctx();
    for (fig, criterion) in [
        (14, Criterion::PurePerformance),
        (15, Criterion::CostEfficiency),
    ] {
        let res = exp::fig14_15(&ctx, criterion);
        assert_eq!(res.len(), 2);
        let rendered = exp::render_advisor(&res, fig);
        assert!(rendered.contains("overall accuracy"));
    }
}

//! Cross-crate invariants: the stencil representation, the simulator, and
//! the public API agree with each other.

use stencilmart::api::StencilMart;
use stencilmart::config::PipelineConfig;
use stencilmart::models::{ClassifierKind, RegressorKind};
use stencilmart_gpusim::{
    profile_stencil, simulate, GpuArch, GpuId, NoiseModel, OptCombo, ParamSetting, ParamSpace,
    ProfileConfig,
};
use stencilmart_stencil::canonical;
use stencilmart_stencil::codegen::{emit, KernelFlavor};
use stencilmart_stencil::pattern::Dim;
use stencilmart_stencil::shapes;
use stencilmart_stencil::tensor::BinaryTensor;

#[test]
fn canonical_suite_profiles_on_every_gpu() {
    let cfg = ProfileConfig {
        samples_per_oc: 2,
        noise: NoiseModel::none(),
        seed: 0,
    };
    for c in canonical::suite() {
        for gpu in GpuId::ALL {
            let p = profile_stencil(&c.pattern, c.grid, &GpuArch::preset(gpu), &cfg, 0);
            let best = p.best_time_ms();
            assert!(
                best.is_some() && best.unwrap() > 0.0,
                "{} on {gpu} must have at least one runnable OC",
                c.name
            );
        }
    }
}

#[test]
fn denser_stencils_are_never_faster_noise_free() {
    // With identical OC/params and no noise, adding points to a pattern
    // cannot make the sweep faster.
    let cfg = ParamSetting::default_for(&OptCombo::BASE);
    let arch = GpuArch::preset(GpuId::V100);
    for dim in [Dim::D2, Dim::D3] {
        let grid = canonical::grid_for(dim);
        let mut last = 0.0f64;
        for r in 1..=4u8 {
            let t = simulate(&shapes::box_(dim, r), grid, &OptCombo::BASE, &cfg, &arch)
                .expect("naive kernels always run");
            assert!(t > last, "box{dim}{r}r: {t} !> {last}");
            last = t;
        }
    }
}

#[test]
fn codegen_matches_pattern_arity() {
    // The emitted kernel performs exactly one FMA per accessed point, for
    // every canonical stencil.
    for c in canonical::suite() {
        let src = emit(&c.pattern, c.grid, KernelFlavor::Naive);
        assert_eq!(src.matches("acc +=").count(), c.pattern.nnz(), "{}", c.name);
    }
}

#[test]
fn tensor_canvas_matches_ml_input_width() {
    use stencilmart::models::canvas_len;
    for dim in [Dim::D2, Dim::D3] {
        let p = shapes::star(dim, 4);
        assert_eq!(BinaryTensor::canvas(&p).data().len(), canvas_len(dim));
    }
}

#[test]
fn api_predictions_are_consistent_with_simulator_scale() {
    // The trained regressor should predict times within an order of
    // magnitude of the simulator for in-distribution inputs.
    let cfg = PipelineConfig {
        stencils_per_dim: 24,
        samples_per_oc: 3,
        max_regression_rows: 2000,
        gpus: vec![GpuId::V100, GpuId::P100],
        ..PipelineConfig::default()
    };
    let grid = cfg.grid_for(Dim::D2);
    let mut mart = StencilMart::train(
        cfg,
        Dim::D2,
        ClassifierKind::Gbdt,
        RegressorKind::GbRegressor,
    );
    let pattern = shapes::star(Dim::D2, 2);
    let oc = OptCombo::parse("ST").unwrap();
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(5);
    let params = ParamSpace::new(oc, Dim::D2).sample(&mut rng);
    let simulated =
        simulate(&pattern, grid, &oc, &params, &GpuArch::preset(GpuId::V100)).expect("runs");
    let predicted = mart.predict_time_ms(&pattern, &oc, &params, GpuId::V100);
    let ratio = predicted / simulated;
    assert!(
        (0.1..10.0).contains(&ratio),
        "predicted {predicted} ms vs simulated {simulated} ms"
    );
}

#[test]
fn crashes_are_architecture_dependent() {
    // The same configuration can crash on a small-shared-memory part and
    // run on a large one — the cross-architecture behaviour the advisor
    // must cope with.
    let p = shapes::box_(Dim::D3, 4);
    let oc = OptCombo::parse("ST_TB").unwrap();
    let mut params = ParamSetting::default_for(&oc);
    params.block_x = 32;
    params.block_y = 4;
    params.time_tile = 2;
    params.use_smem = true;
    let on_p100 = simulate(&p, 512, &oc, &params, &GpuArch::preset(GpuId::P100));
    let on_a100 = simulate(&p, 512, &oc, &params, &GpuArch::preset(GpuId::A100));
    assert!(on_p100.is_err(), "48 KiB per-block limit must overflow");
    assert!(on_a100.is_ok(), "164 KiB Ampere shared memory fits");
}

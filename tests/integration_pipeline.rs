//! End-to-end pipeline integration test: generation → profiling → OC
//! merging → classification → baseline comparison → regression → rental
//! advisor, at a tiny scale.

use stencilmart::advisor::{evaluate_advisor, Criterion};
use stencilmart::baselines::{speedups_over_baseline, BaselinePolicy};
use stencilmart::classify::evaluate_classifier;
use stencilmart::config::PipelineConfig;
use stencilmart::dataset::{ClassificationDataset, ProfiledCorpus, RegressionDataset};
use stencilmart::models::{ClassifierKind, MlpShape, RegressorKind};
use stencilmart::regress::evaluate_regressor;
use stencilmart_stencil::pattern::Dim;

fn cfg() -> PipelineConfig {
    PipelineConfig {
        stencils_per_dim: 20,
        samples_per_oc: 3,
        folds: 3,
        max_regression_rows: 1200,
        ..PipelineConfig::default()
    }
}

#[test]
fn full_pipeline_2d() {
    let cfg = cfg();
    let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
    assert_eq!(corpus.patterns.len(), 20);
    assert_eq!(corpus.profiles.len(), cfg.gpus.len());

    let merging = corpus.derive_merging(cfg.oc_classes);
    assert_eq!(merging.classes(), 5);
    let covered: usize = merging.groups.iter().map(Vec::len).sum();
    assert_eq!(covered, 30, "every OC belongs to exactly one class");

    // Classification on every GPU.
    for &gpu in &cfg.gpus {
        let ds = ClassificationDataset::build(&corpus, &merging, gpu);
        assert_eq!(ds.len(), 20);
        let eval = evaluate_classifier(ClassifierKind::Gbdt, &ds, cfg.folds, cfg.seed);
        assert!(eval.accuracy >= 0.0 && eval.accuracy <= 1.0);

        // Baseline comparison is well-defined for every stencil.
        let profiles: Vec<_> = ds
            .stencil_of_row
            .iter()
            .map(|&i| corpus.profiles_for(gpu)[i].clone())
            .collect();
        for policy in [BaselinePolicy::ArtemisLike, BaselinePolicy::An5dLike] {
            let sp = speedups_over_baseline(
                &profiles,
                &eval.predictions,
                &merging,
                policy,
                cfg.samples_per_oc,
            );
            assert_eq!(sp.len(), 20, "no stencil dropped");
            assert!(sp.iter().all(|&v| v > 0.05 && v < 100.0));
        }
    }

    // Regression across architectures.
    let rds = RegressionDataset::build(&corpus, &cfg);
    assert!(rds.len() > 100);
    let eval = evaluate_regressor(
        RegressorKind::GbRegressor,
        &rds,
        MlpShape::default(),
        cfg.folds,
        cfg.seed,
    );
    assert!(eval.mape_overall.is_finite());
    assert!(eval.mape_overall < 200.0, "MAPE {}", eval.mape_overall);

    // Rental advisor under both criteria.
    for criterion in [Criterion::PurePerformance, Criterion::CostEfficiency] {
        let res = evaluate_advisor(
            &corpus,
            &rds,
            &cfg,
            RegressorKind::GbRegressor,
            criterion,
            cfg.seed,
        );
        assert!(res.instances > 0);
        let total: f64 = res.share.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}

#[test]
fn pipeline_is_deterministic() {
    let cfg = cfg();
    let a = ProfiledCorpus::build(&cfg, Dim::D2);
    let b = ProfiledCorpus::build(&cfg, Dim::D2);
    assert_eq!(a.patterns, b.patterns);
    for ((ga, pa), (gb, pb)) in a.profiles.iter().zip(&b.profiles) {
        assert_eq!(ga, gb);
        assert_eq!(pa, pb);
    }
    assert_eq!(a.derive_merging(5), b.derive_merging(5));
}

#[test]
fn regression_rows_subsample_to_cap() {
    let mut cfg = cfg();
    cfg.max_regression_rows = 200;
    let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
    let ds = RegressionDataset::build(&corpus, &cfg);
    assert_eq!(ds.len(), 200);
    assert_eq!(ds.keys.len(), 200);
    assert_eq!(ds.tensors.rows(), 200);
}

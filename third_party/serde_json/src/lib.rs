//! JSON rendering and parsing for the vendored serde subset.
//!
//! Speaks [`serde::Value`]: `to_string` renders a `Serialize` type's value
//! tree; `from_str` parses JSON into a value tree and rebuilds the target
//! type. Numbers round-trip losslessly for `i64`/`u64` and for `f64` via
//! Rust's shortest round-trip float formatting. Non-finite floats render
//! as `null` (matching the vendored `serde`'s convention).

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Render a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Render a value as indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parse JSON text into a `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into a raw [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // `{:?}` gives the shortest representation that round-trips the f64,
    // and always includes a `.0` or exponent so the value reads back as a
    // float-compatible number.
    out.push_str(&format!("{f:?}"));
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` in array, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` in object, found {:?} at byte {}",
                        other.map(|c| c as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                core::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our own
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("non-UTF-8 number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v = vec![1.0f32, -2.5, 3.25];
        assert_eq!(from_str::<Vec<f32>>(&to_string(&v).unwrap()).unwrap(), v);
        let t = (1u8, "x".to_string());
        assert_eq!(
            from_str::<(u8, String)>(&to_string(&t).unwrap()).unwrap(),
            t
        );
    }

    #[test]
    fn f64_shortest_repr_roundtrips() {
        for v in [0.1, 1e300, -2.2250738585072014e-308, 123456.789] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), v);
        }
    }

    #[test]
    fn whitespace_and_nesting_parse() {
        let v: Vec<Vec<i64>> = from_str(" [ [1, 2] ,\n\t[3] , [] ] ").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![3], vec![]]);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(from_str::<u32>("42 junk").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u8, 2u8), (3, 4)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u8, u8)>>(&pretty).unwrap(), v);
    }
}

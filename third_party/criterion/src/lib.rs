//! Offline subset of criterion.rs.
//!
//! Each benchmark calibrates an iteration count so a sample takes a few
//! milliseconds, collects `sample_size` samples, and prints the median
//! time per iteration. No plots, no saved baselines; `cargo bench`
//! output is a plain line per benchmark:
//!
//! ```text
//! matmul_64x128x64            time: 412.318 µs/iter (20 samples)
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample target time used when calibrating the iteration count.
const TARGET_SAMPLE: Duration = Duration::from_millis(4);
const MAX_CALIBRATION: Duration = Duration::from_millis(250);

/// How inputs are handed to `iter_batched` routines. This subset times
/// every batch size identically (setup is always excluded from timing).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = std::env::var("CRITERION_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        Criterion { sample_size }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibrate: grow the iteration count until one sample reaches the
    // target time (or calibration has taken long enough already).
    let calibration_start = Instant::now();
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE
            || calibration_start.elapsed() >= MAX_CALIBRATION
            || iters >= 1 << 30
        {
            break;
        }
        // Jump straight toward the target rather than plain doubling.
        let per_iter = b.elapsed.as_nanos().max(1) / iters as u128;
        let wanted = TARGET_SAMPLE.as_nanos() / per_iter.max(1);
        iters = (wanted as u64)
            .clamp(iters * 2, iters.saturating_mul(100))
            .max(iters + 1);
    }

    let mut samples: Vec<f64> = (0..sample_size.max(2))
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!(
        "{name:<44} time: {} ({} samples, {iters} iters/sample)",
        format_ns(median),
        samples.len()
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Build a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("CRITERION_SAMPLE_SIZE", "3");
        let mut c = Criterion::default();
        std::env::remove_var("CRITERION_SAMPLE_SIZE");
        let mut runs = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_sample_size_and_batched() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn format_ns_picks_unit() {
        assert!(format_ns(12.0).ends_with("ns/iter"));
        assert!(format_ns(12_000.0).ends_with("µs/iter"));
        assert!(format_ns(12_000_000.0).ends_with("ms/iter"));
        assert!(format_ns(2e9).ends_with("s/iter"));
    }
}

//! Offline, API-compatible subset of `serde`.
//!
//! The real serde's visitor architecture is replaced by a concrete
//! [`Value`] tree: `Serialize` renders into a `Value`, `Deserialize`
//! rebuilds from one. This supports everything the workspace uses —
//! `#[derive(Serialize, Deserialize)]` on plain structs and enums plus
//! `serde_json::{to_string, from_str}` — without any network dependency.
//! Formats (JSON) live in the sibling `serde_json` crate and speak
//! `Value`.

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the meeting point between
/// `Serialize`, `Deserialize`, and formats such as JSON).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Object(Vec<(String, Value)>),
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl core::fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Look up a field of an object.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
            other => Err(Error::custom(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// The elements of an array.
    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// The fields of an object.
    pub fn as_object(&self) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Object(fields) => Ok(fields),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }

    /// Numeric value widened to `f64` (accepts any numeric variant; `Null`
    /// maps to NaN, mirroring how non-finite floats serialize).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Int(v) => Ok(*v as f64),
            Value::UInt(v) => Ok(*v as f64),
            Value::Float(v) => Ok(*v),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }

    /// Integer value, accepting exact floats.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::UInt(v) if *v <= i64::MAX as u64 => Ok(*v as i64),
            Value::Float(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Ok(*v as i64),
            other => Err(Error::custom(format!(
                "expected integer, got {}",
                other.kind()
            ))),
        }
    }

    /// Unsigned integer value.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::UInt(v) => Ok(*v),
            Value::Int(v) if *v >= 0 => Ok(*v as u64),
            Value::Float(v) if v.fract() == 0.0 && *v >= 0.0 && *v < 1.9e19 => Ok(*v as u64),
            other => Err(Error::custom(format!(
                "expected unsigned integer, got {}",
                other.kind()
            ))),
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }

    /// Boolean contents.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Render into a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!("{} out of range for {}", raw, stringify!($t)))
                })
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u64()
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // Widening to f64 is exact; narrowing back recovers the same f32.
        if self.is_finite() {
            Value::Float(*self as f64)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_str()?.to_string())
    }
}

/// Deserializing into `&'static str` leaks the allocation. Acceptable here:
/// the workspace only uses it for a handful of short, fixed architecture
/// names loaded at most a few times per process.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::leak(v.as_str()?.to_string().into_boxed_str()))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array()?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length changed during conversion"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array()?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i32::from_value(&42i32.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn f32_roundtrip_is_exact() {
        for v in [0.1f32, f32::MIN_POSITIVE, 3.25, -2.5e-20] {
            assert_eq!(f32::from_value(&v.to_value()).unwrap(), v);
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        let t = (1u8, -2i64, 0.5f64);
        assert_eq!(<(u8, i64, f64)>::from_value(&t.to_value()).unwrap(), t);
        let a = [1i32, 2, 3];
        assert_eq!(<[i32; 3]>::from_value(&a.to_value()).unwrap(), a);
    }

    #[test]
    fn out_of_range_int_is_an_error() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn nonfinite_floats_become_null_and_back_nan() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }
}

//! A genuine ChaCha8 block cipher driven as an RNG, implementing the
//! vendored [`rand`] traits. Vendored because the build environment has no
//! network access; the keystream follows djb's ChaCha specification
//! (64-bit block counter), though the `rand`-facing seeding path is only
//! guaranteed to be self-consistent, not byte-identical to upstream
//! `rand_chacha`.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf` (16 = exhausted).
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: four column rounds, four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buf.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // 64-bit counter in words 12–13 (djb variant).
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // 40 u32 pulls crosses the 16-word block twice; all should differ
        // from each other with overwhelming probability.
        let words: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        let mut dedup = words.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), words.len());
    }

    #[test]
    fn float_sampling_is_uniform_ish() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn chacha8_keystream_reference_block() {
        // All-zero key/counter/nonce, first block, per the ChaCha reference
        // implementation (8 rounds). First output word of chacha8 with zero
        // input is fixed; check self-consistency of the permutation
        // structure instead of an external vector: applying the same state
        // twice yields the same block.
        let mut a = ChaCha8Rng::from_seed([0; 32]);
        let mut b = ChaCha8Rng::from_seed([0; 32]);
        assert_eq!(a.next_u32(), b.next_u32());
        // And the block is not the identity on the input state.
        let mut c = ChaCha8Rng::from_seed([0; 32]);
        assert_ne!(c.next_u32(), CHACHA_CONSTANTS[0]);
    }
}

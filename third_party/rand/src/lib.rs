//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of `rand` 0.8 it actually uses: [`RngCore`], the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng`], and [`seq::SliceRandom`] (`shuffle`, `choose`).
//! Algorithms follow the upstream documentation (widening-multiply range
//! reduction, 53-/24-bit float conversion, Fisher–Yates shuffling) but the
//! exact output streams are not guaranteed to match upstream `rand`; the
//! workspace only relies on determinism for a fixed seed, not on matching
//! upstream byte-for-byte.

pub mod distributions;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// A source of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T` (uniform over
    /// the full range for integers, `[0, 1)` for floats).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, RA>(&mut self, range: RA) -> T
    where
        T: SampleUniform,
        RA: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded to a full seed with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Vigna): decorrelates consecutive integer seeds.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range on empty inclusive range");
        T::sample_inclusive(rng, start, end)
    }
}

/// Widening multiply: map a raw `u64` onto `[0, span)` without modulo bias
/// beyond 2^-64.
#[inline]
fn reduce_u64(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                low.wrapping_add(reduce_u64(rng.next_u64(), span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(reduce_u64(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        low + unit * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 / ((1u32 << 24) - 1) as f32;
        low + unit * (high - low)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        low + unit * (high - low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Step(u64);
    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weyl sequence through a mix: deterministic, full-period.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Step(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..7);
            assert!((-5..7).contains(&v));
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_range(0usize..=9);
            assert!(u <= 9);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = Step(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = Step(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Step(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = Step(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

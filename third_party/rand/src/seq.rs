//! Slice sampling helpers: `shuffle` and `choose`.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly pick one element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len())])
        }
    }
}

#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    struct Mix(u64);
    impl crate::RngCore for Mix {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }
    impl SeedableRng for Mix {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Mix(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Mix::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_returns_member_or_none() {
        let mut rng = Mix::seed_from_u64(2);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [10u8, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }
}

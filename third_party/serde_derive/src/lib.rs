//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Implemented directly over `proc_macro::TokenStream` (the build
//! environment has no `syn`/`quote`). Supports what the workspace uses:
//! non-generic structs (named, tuple, unit) and enums whose variants are
//! unit, tuple, or struct-like. `#[serde(...)]` attributes are not
//! supported and such fields are rejected at parse time by the absence of
//! special handling (attributes are skipped wholesale).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    body: Body,
}

enum Body {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute (incl. doc comments): skip the bracket group.
                toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Skip `pub` and a possible `(crate)` restriction.
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut toks);
                reject_generics(&mut toks, &name);
                return Item {
                    name,
                    body: parse_struct_body(&mut toks),
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut toks);
                reject_generics(&mut toks, &name);
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Item {
                            name,
                            body: Body::Enum(parse_variants(g.stream())),
                        };
                    }
                    other => panic!("serde_derive: malformed enum body: {other:?}"),
                }
            }
            Some(other) => panic!("serde_derive: unexpected token {other}"),
            None => panic!("serde_derive: no struct or enum found"),
        }
    }
}

fn expect_ident(toks: &mut impl Iterator<Item = TokenTree>) -> String {
    match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected identifier, got {other:?}"),
    }
}

fn reject_generics(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>, name: &str) {
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic type `{name}` is not supported");
        }
    }
}

fn parse_struct_body(toks: &mut impl Iterator<Item = TokenTree>) -> Body {
    match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Body::NamedStruct(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Body::TupleStruct(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
        other => panic!("serde_derive: malformed struct body: {other:?}"),
    }
}

/// Field names of a named-field body (`{ a: T, b: U }`). Types are skipped
/// with angle-bracket depth tracking so `Vec<(A, B)>` commas don't split.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        match toks.next() {
            None => return fields,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next(); // attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde_derive: expected `:` after field, got {other:?}"),
                }
                skip_type_until_comma(&mut toks);
            }
            Some(other) => panic!("serde_derive: unexpected token in fields: {other}"),
        }
    }
}

fn skip_type_until_comma(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    for tok in toks.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Number of fields in a tuple body (`(T, U)`), counting top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut angle_depth = 0i32;
    let mut in_field = false;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            if p.as_char() == ',' && angle_depth == 0 {
                in_field = false;
                continue;
            }
        }
        if !in_field {
            fields += 1;
            in_field = true;
        }
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                _ => {}
            }
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        match toks.next() {
            None => return variants,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                let kind = match toks.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        toks.next();
                        VariantKind::Tuple(n)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        toks.next();
                        VariantKind::Named(fields)
                    }
                    _ => VariantKind::Unit,
                };
                // Skip a possible `= discriminant` up to the next comma.
                if let Some(TokenTree::Punct(p)) = toks.peek() {
                    if p.as_char() == '=' {
                        for t in toks.by_ref() {
                            if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                                break;
                            }
                        }
                    }
                }
                variants.push(Variant { name, kind });
            }
            Some(other) => panic!("serde_derive: unexpected token in enum: {other}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation (rendered as source text, then reparsed)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Body::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn ser_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let vals: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{enum_name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{vname}\"), \
                      ::serde::Value::Array(::std::vec![{vals}]))]),",
                binds = binds.join(", "),
                vals = vals.join(", "),
            )
        }
        VariantKind::Named(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                     (::std::string::String::from(\"{vname}\"), \
                      ::serde::Value::Object(::std::vec![{entries}]))]),",
                entries = entries.join(", "),
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                entries.join(", ")
            )
        }
        Body::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array()?; \
                 if items.len() != {n} {{ \
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"expected {n} fields for {name}, got {{}}\", items.len()))); \
                 }} \
                 ::std::result::Result::Ok({name}({}))",
                entries.join(", ")
            )
        }
        Body::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                vname = v.name
            )
        })
        .collect();
    let data_variants: Vec<&Variant> = variants
        .iter()
        .filter(|v| !matches!(v.kind, VariantKind::Unit))
        .collect();
    let data_arms: Vec<String> = data_variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => unreachable!("filtered out"),
                VariantKind::Tuple(n) => {
                    let entries: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "\"{vname}\" => {{ \
                             let items = inner.as_array()?; \
                             if items.len() != {n} {{ \
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"expected {n} fields for {name}::{vname}, \
                                              got {{}}\", items.len()))); \
                             }} \
                             ::std::result::Result::Ok({name}::{vname}({entries})) \
                         }}",
                        entries = entries.join(", ")
                    )
                }
                VariantKind::Named(fields) => {
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_value(inner.field(\"{f}\")?)?")
                        })
                        .collect();
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    // `inner` is only bound when at least one variant carries data, to
    // avoid an unused-variable warning for all-unit enums.
    let inner_pat = if data_variants.is_empty() {
        "_inner"
    } else {
        "inner"
    };
    format!(
        "match v {{ \
             ::serde::Value::Str(s) => match s.as_str() {{ \
                 {unit_arms} \
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown unit variant `{{other}}` for {name}\"))), \
             }}, \
             ::serde::Value::Object(fields) if fields.len() == 1 => {{ \
                 let (tag, {inner_pat}) = &fields[0]; \
                 match tag.as_str() {{ \
                     {data_arms} \
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"unknown variant `{{other}}` for {name}\"))), \
                 }} \
             }} \
             _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected string or single-key object for enum {name}\")), \
         }}",
        unit_arms = unit_arms.join(" "),
        data_arms = data_arms.join(" "),
    )
}

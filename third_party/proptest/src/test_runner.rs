//! Deterministic case runner backing the `proptest!` macro.

/// Runner configuration. Only `cases` is honored by this subset.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case does not count.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// SplitMix64 generator; deterministic per test name so failures reproduce.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, 1)` with 24 random bits.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Drives the generate/run/record loop for one `#[test]` fn.
pub struct TestRunner {
    rng: TestRng,
    seed: u64,
    name: &'static str,
    target: u32,
    completed: u32,
    rejected: u32,
    attempts: u32,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let target = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        let seed = fnv1a(name.as_bytes());
        TestRunner {
            rng: TestRng::new(seed),
            seed,
            name,
            target,
            completed: 0,
            rejected: 0,
            attempts: 0,
        }
    }

    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Whether another case should run. Caps total attempts so pathological
    /// `prop_assume!` filters terminate instead of spinning.
    pub fn more_cases(&self) -> bool {
        self.completed < self.target && self.attempts < self.target.saturating_mul(16)
    }

    pub fn record(&mut self, outcome: Result<(), TestCaseError>) {
        self.attempts += 1;
        match outcome {
            Ok(()) => self.completed += 1,
            Err(TestCaseError::Reject) => self.rejected += 1,
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest failure in `{}` (case {}, rng seed {:#018x}):\n{}",
                self.name, self.attempts, self.seed, msg
            ),
        }
    }

    pub fn finish(&self) {
        assert!(
            self.completed > 0,
            "proptest `{}`: every case was rejected by prop_assume! ({} rejections)",
            self.name,
            self.rejected
        );
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::new(43);
        assert_ne!(TestRng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = TestRng::new(9);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            let g = rng.next_f32();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn runner_counts_cases_and_rejects() {
        let mut r = TestRunner::new(ProptestConfig::with_cases(5), "counting");
        let mut ran = 0;
        while r.more_cases() {
            ran += 1;
            if ran % 2 == 0 {
                r.record(Err(TestCaseError::Reject));
            } else {
                r.record(Ok(()));
            }
        }
        r.finish();
        assert!(ran >= 5);
    }

    #[test]
    #[should_panic(expected = "proptest failure")]
    fn failure_panics_with_context() {
        let mut r = TestRunner::new(ProptestConfig::default(), "boom");
        r.record(Err(TestCaseError::fail("expected")));
    }
}

//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`fn@vec`]: a fixed size or a range of sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// A strategy producing `Vec`s whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_sizes() {
        let mut rng = TestRng::new(11);
        for _ in 0..50 {
            assert_eq!(vec(0u8..4, 7usize).new_value(&mut rng).len(), 7);
            let l = vec(0u8..4, 1..30).new_value(&mut rng).len();
            assert!((1..30).contains(&l));
            let m = vec(0u8..4, 2..=5).new_value(&mut rng).len();
            assert!((2..=5).contains(&m));
        }
    }
}

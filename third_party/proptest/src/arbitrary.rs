//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy for a primitive (marker type per target).
pub struct AnyPrim<T>(core::marker::PhantomData<T>);

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim(core::marker::PhantomData)
    }
}

impl Strategy for AnyPrim<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrim(core::marker::PhantomData)
            }
        }
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_hits_both_values() {
        let mut rng = TestRng::new(5);
        let s = any::<bool>();
        let mut t = 0;
        for _ in 0..100 {
            if s.new_value(&mut rng) {
                t += 1;
            }
        }
        assert!(t > 20 && t < 80);
    }
}

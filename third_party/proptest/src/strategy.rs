//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a new strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe mirror of [`Strategy`], used for heterogeneous unions.
pub trait DynStrategy {
    type Value;
    fn dyn_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// Box a strategy as a trait object (used by `prop_oneof!`).
pub fn dyn_box<S>(s: S) -> Box<dyn DynStrategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.dyn_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn DynStrategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn DynStrategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].dyn_value(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategies {
    ($($t:ty => $gen:ident),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.$gen() * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + rng.$gen() * (hi - lo)
            }
        }
    )*};
}

float_range_strategies!(f32 => next_f32, f64 => next_f64);

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let v = (-3i32..=3).new_value(&mut rng);
            assert!((-3..=3).contains(&v));
            let u = (5usize..9).new_value(&mut rng);
            assert!((5..9).contains(&u));
            let f = (-1.5f64..2.5).new_value(&mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::new(1);
        let s = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u8..10, n).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = s.new_value(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn union_covers_all_options() {
        let mut rng = TestRng::new(3);
        let s = Union::new(vec![dyn_box(Just(1u8)), dyn_box(Just(2)), dyn_box(Just(3))]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }
}

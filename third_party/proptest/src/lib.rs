//! Offline subset of the `proptest` property-testing crate.
//!
//! Implements the slice of the API this workspace uses: the
//! [`strategy::Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], `any::<T>()`, `Just`, `prop_oneof!`, the
//! `proptest!` test macro, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case index and the deterministic per-test seed instead of a minimized
//! input), and `.proptest-regressions` files are ignored. Case generation
//! is deterministic per test name, so failures reproduce across runs; set
//! `PROPTEST_CASES` to override the case count globally.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// The entry-point macro: wraps `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (($config:expr); $(
        #[test]
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                while runner.more_cases() {
                    let ($($arg,)*) = ($(
                        $crate::strategy::Strategy::new_value(&$strat, runner.rng()),
                    )*);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    runner.record(outcome);
                }
                runner.finish();
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body; failure fails the case
/// with the formatted message instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert two values are equal (requires `Debug` for the failure report).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Assert two values are not equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::dyn_box($strat)),+
        ])
    };
}

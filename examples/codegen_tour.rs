//! A tour of the substrate: stencil shapes as ASCII tensors, the
//! pseudo-CUDA kernels the simulator models, and the per-component timing
//! breakdown of one configuration on each GPU.
//!
//! ```text
//! cargo run --release --example codegen_tour
//! ```

use stencilmart_gpusim::{
    simulate_breakdown, BoundaryModel, GpuArch, GpuId, OptCombo, ParamSetting,
};
use stencilmart_stencil::codegen::{emit, KernelFlavor};
use stencilmart_stencil::pattern::Dim;
use stencilmart_stencil::shapes::{self, Shape};
use stencilmart_stencil::tensor::BinaryTensor;

fn main() {
    // 1. Shapes as binary tensors (the CNN's view of a stencil).
    println!("=== stencil access patterns (order 2, tight canvas) ===");
    for shape in Shape::ALL {
        let p = shapes::build(shape, Dim::D2, 2);
        println!("\n{}2d2r ({} points):", shape.name(), p.nnz());
        print!("{}", BinaryTensor::from_pattern(&p).ascii().expect("2-D"));
    }

    // 2. The kernels the simulator models.
    let p = shapes::star(Dim::D3, 1);
    println!("\n=== pseudo-CUDA for star3d1r ===");
    for (label, flavor) in [
        ("naive", KernelFlavor::Naive),
        ("block-merged x4", KernelFlavor::BlockMerged { merge: 4 }),
        (
            "2.5-D streaming + prefetch",
            KernelFlavor::Streaming { prefetch: true },
        ),
    ] {
        println!("\n--- {label} ---");
        print!("{}", emit(&p, 512, flavor));
    }

    // 3. Where the time goes, per GPU, for one configuration.
    let oc = OptCombo::parse("ST_PR").expect("valid");
    let mut params = ParamSetting::default_for(&oc);
    params.block_x = 64;
    params.block_y = 8;
    println!("\n=== simulated breakdown: box3d2r under {} ===", oc.name());
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "GPU", "mem ms", "comp ms", "smem ms", "sync ms", "total ms", "occup"
    );
    let pattern = shapes::box_(Dim::D3, 2);
    for gpu in GpuId::ALL {
        let arch = GpuArch::preset(gpu);
        match simulate_breakdown(&pattern, 512, &oc, &params, &arch, BoundaryModel::None) {
            Ok(b) => println!(
                "{:<8} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>6.0}%",
                gpu.name(),
                b.t_mem_ms,
                b.t_comp_ms,
                b.t_smem_ms,
                b.t_sync_ms,
                b.total_ms,
                b.occupancy.fraction * 100.0
            ),
            Err(crash) => println!("{:<8} crash: {crash}", gpu.name()),
        }
    }
}

//! "To rent or not to rent a cloud GPU" (paper §V-D): use the
//! cross-architecture regressor to decide which GPU to rent for a stencil
//! workload — by pure performance, and by cost efficiency.
//!
//! ```text
//! cargo run --release --example rent_or_not
//! ```

use stencilmart::advisor::{evaluate_advisor, Criterion};
use stencilmart::config::PipelineConfig;
use stencilmart::dataset::{ProfiledCorpus, RegressionDataset};
use stencilmart::models::RegressorKind;
use stencilmart_gpusim::GpuArch;
use stencilmart_stencil::pattern::Dim;

fn main() {
    let cfg = PipelineConfig {
        stencils_per_dim: 60,
        samples_per_oc: 6,
        max_regression_rows: 4000,
        ..PipelineConfig::default()
    };
    println!("rental menu (Google Cloud, us-central1, Oct 2021):");
    for arch in GpuArch::all() {
        match arch.rental_per_hr {
            Some(p) => println!("  {:<8} ${p:.2}/hr", arch.id.name()),
            None => println!("  {:<8} not rentable (desktop card)", arch.id.name()),
        }
    }

    for dim in [Dim::D2, Dim::D3] {
        println!("\n=== {dim} stencil workload ===");
        let corpus = ProfiledCorpus::build(&cfg, dim);
        let ds = RegressionDataset::build(&corpus, &cfg);
        for criterion in [Criterion::PurePerformance, Criterion::CostEfficiency] {
            let res = evaluate_advisor(
                &corpus,
                &ds,
                &cfg,
                RegressorKind::GbRegressor,
                criterion,
                cfg.seed,
            );
            let label = match criterion {
                Criterion::PurePerformance => "pure performance",
                Criterion::CostEfficiency => "cost efficiency",
            };
            println!("\nby {label} ({} held-out instances):", res.instances);
            println!(
                "  {:<8} {:>14} {:>14}",
                "GPU", "truly best for", "pred accuracy"
            );
            for ((gpu, share), (_, acc)) in res.share.iter().zip(&res.accuracy) {
                let acc_s = if acc.is_nan() {
                    "-".into()
                } else {
                    format!("{:.1}%", acc * 100.0)
                };
                println!("  {:<8} {:>13.1}% {:>14}", gpu.name(), share * 100.0, acc_s);
            }
            let winner = res
                .share
                .iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            println!(
                "  -> rent the {} (best for {:.0}% of instances); advisor agrees {:.1}% of the time",
                winner.0.name(),
                winner.1 * 100.0,
                res.overall_accuracy * 100.0
            );
        }
    }
}

//! Quickstart: train StencilMART on a small simulated corpus, then ask it
//! for the best optimization combination for classic stencils and a
//! cross-architecture time prediction.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use stencilmart::api::StencilMart;
use stencilmart::config::PipelineConfig;
use stencilmart::models::{ClassifierKind, RegressorKind};
use stencilmart_gpusim::{GpuId, OptCombo, ParamSetting};
use stencilmart_stencil::pattern::Dim;
use stencilmart_stencil::shapes;

fn main() {
    // A small training configuration so the example runs in seconds.
    let cfg = PipelineConfig {
        stencils_per_dim: 60,
        samples_per_oc: 6,
        max_regression_rows: 3000,
        ..PipelineConfig::default()
    };
    println!(
        "training StencilMART on {} random 2-D stencils across {} GPUs...",
        cfg.stencils_per_dim,
        cfg.gpus.len()
    );
    let mut mart = StencilMart::train(
        cfg,
        Dim::D2,
        ClassifierKind::Gbdt,
        RegressorKind::GbRegressor,
    );

    // 1. Optimization selection: which OC should each stencil use?
    println!("\npredicted best optimization combination:");
    println!("{:<12} {:>12} {:>16}", "stencil", "GPU", "predicted OC");
    for order in 1..=4u8 {
        let star = shapes::star(Dim::D2, order);
        let oc = mart.predict_best_oc(&star, GpuId::V100);
        println!(
            "{:<12} {:>12} {:>16}",
            format!("star2d{order}r"),
            "V100",
            oc.name()
        );
    }
    for gpu in GpuId::ALL {
        let boxs = shapes::box_(Dim::D2, 2);
        let oc = mart.predict_best_oc(&boxs, gpu);
        println!("{:<12} {:>12} {:>16}", "box2d2r", gpu.name(), oc.name());
    }

    // 2. Cross-architecture performance prediction: how long would this
    //    configured kernel take on a GPU we do not own?
    let pattern = shapes::cross(Dim::D2, 3);
    let oc = OptCombo::parse("ST_RT_PR").expect("valid OC");
    let params = ParamSetting::default_for(&oc);
    println!("\npredicted sweep time for cross2d3r under {}:", oc.name());
    for gpu in GpuId::ALL {
        let t = mart.predict_time_ms(&pattern, &oc, &params, gpu);
        println!("  {:<8} {t:>8.3} ms", gpu.name());
    }
}

//! The full StencilMART pipeline, step by step: random stencil
//! generation → profiling under every OC → PCC-based OC merging →
//! classifier cross-validation → speedup over the Artemis- and AN5D-style
//! baselines.
//!
//! This is the "workflow" view of the framework — what a performance
//! engineer integrating StencilMART into an autotuner would run.
//!
//! ```text
//! cargo run --release --example autotune_pipeline
//! ```

use stencilmart::baselines::{speedups_over_baseline, BaselinePolicy};
use stencilmart::classify::evaluate_classifier;
use stencilmart::config::PipelineConfig;
use stencilmart::dataset::{ClassificationDataset, ProfiledCorpus};
use stencilmart::models::ClassifierKind;
use stencilmart_gpusim::OptCombo;
use stencilmart_stencil::pattern::Dim;

fn main() {
    let cfg = PipelineConfig {
        stencils_per_dim: 80,
        samples_per_oc: 6,
        folds: 5,
        ..PipelineConfig::default()
    };

    // Step 1 + 2: generate random stencils and profile them under all 30
    // OCs on every GPU (the simulator stands in for the testbed).
    println!(
        "step 1-2: generating and profiling {} 3-D stencils...",
        cfg.stencils_per_dim
    );
    let corpus = ProfiledCorpus::build(&cfg, Dim::D3);

    // Step 3: merge OCs into prediction classes.
    let merging = corpus.derive_merging(cfg.oc_classes);
    let ocs = OptCombo::enumerate();
    println!("\nstep 3: OC classes after PCC merging:");
    for (i, group) in merging.groups.iter().enumerate() {
        let rep = ocs[merging.representatives[i]].name();
        println!("  class {i} (target {rep}): {} OCs", group.len());
    }

    // Step 4: cross-validate the classifier per GPU.
    println!("\nstep 4: {}-fold cross-validated OC selection:", cfg.folds);
    for &gpu in &cfg.gpus {
        let ds = ClassificationDataset::build(&corpus, &merging, gpu);
        let eval = evaluate_classifier(ClassifierKind::Gbdt, &ds, cfg.folds, cfg.seed);
        print!(
            "  {:<8} GBDT accuracy {:>5.1}%",
            gpu.name(),
            eval.accuracy * 100.0
        );

        // Step 5: how much faster is the predicted OC than the baselines
        // under an equal total tuning budget?
        let profiles: Vec<_> = ds
            .stencil_of_row
            .iter()
            .map(|&i| corpus.profiles_for(gpu)[i].clone())
            .collect();
        for policy in [BaselinePolicy::ArtemisLike, BaselinePolicy::An5dLike] {
            let sp = speedups_over_baseline(
                &profiles,
                &eval.predictions,
                &merging,
                policy,
                cfg.samples_per_oc,
            );
            let mean = sp.iter().sum::<f64>() / sp.len().max(1) as f64;
            print!("   vs {} {mean:>5.2}x", policy.name());
        }
        println!();
    }
}

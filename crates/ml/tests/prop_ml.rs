//! Property-based tests for the ML substrate: tensor algebra, losses,
//! trees, and data utilities.

use proptest::prelude::*;
use stencilmart_ml::data::{FeatureMatrix, KFold, MaxNormalizer};
use stencilmart_ml::gbdt::binned::BinnedMatrix;
use stencilmart_ml::gbdt::{GbdtConfig, GbdtRegressor};
use stencilmart_ml::metrics::{accuracy, kendall_tau, mape, pearson};
use stencilmart_ml::nn::{softmax, softmax_cross_entropy};
use stencilmart_ml::tensor::Tensor;

fn arb_matrix(max_m: usize, max_n: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_m, 1..=max_n).prop_flat_map(|(m, n)| {
        prop::collection::vec(-10.0f32..10.0, m * n)
            .prop_map(move |data| Tensor::from_vec(&[m, n], data))
    })
}

proptest! {
    #[test]
    fn matmul_is_associative_with_identity(a in arb_matrix(6, 6)) {
        let n = a.shape()[1];
        let mut eye = Tensor::zeros(&[n, n]);
        for i in 0..n {
            eye.data_mut()[i * n + i] = 1.0;
        }
        let prod = Tensor::matmul(&a, &eye);
        for (x, y) in prod.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_transposed_variants_agree(
        a in arb_matrix(5, 4),
        b in arb_matrix(4, 3),
    ) {
        prop_assume!(a.shape()[1] == b.shape()[0]);
        let c = Tensor::matmul(&a, &b);
        // Build A^T and B^T explicitly.
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let (_, n) = (b.shape()[0], b.shape()[1]);
        let mut at = Tensor::zeros(&[k, m]);
        for i in 0..m {
            for j in 0..k {
                at.data_mut()[j * m + i] = a.data()[i * k + j];
            }
        }
        let mut bt = Tensor::zeros(&[n, k]);
        for i in 0..k {
            for j in 0..n {
                bt.data_mut()[j * k + i] = b.data()[i * n + j];
            }
        }
        let c_tn = Tensor::matmul_tn(&at, &b);
        let c_nt = Tensor::matmul_nt(&a, &bt);
        for (x, y) in c.data().iter().zip(c_tn.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        for (x, y) in c.data().iter().zip(c_nt.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(t in arb_matrix(8, 6)) {
        let p = softmax(&t);
        for i in 0..p.batch() {
            let row = p.row(i);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative(t in arb_matrix(6, 4), seed in 0usize..4) {
        let classes = t.shape()[1];
        let labels: Vec<usize> = (0..t.batch()).map(|i| (i + seed) % classes).collect();
        let (loss, grad) = softmax_cross_entropy(&t, &labels);
        prop_assert!(loss >= 0.0);
        // Gradient rows sum to ~0 (softmax minus one-hot, averaged).
        for i in 0..t.batch() {
            let s: f32 = grad.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-4);
        }
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(
        a in prop::collection::vec(-100.0f64..100.0, 3..40),
        b in prop::collection::vec(-100.0f64..100.0, 3..40),
    ) {
        let n = a.len().min(b.len());
        let (x, y) = (&a[..n], &b[..n]);
        let r = pearson(x, y);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        prop_assert!((r - pearson(y, x)).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_bounded(
        a in prop::collection::vec(-10.0f64..10.0, 2..20),
    ) {
        let b: Vec<f64> = a.iter().map(|v| v * 2.0).collect();
        prop_assert!((kendall_tau(&a, &b) - 1.0).abs() < 1e-12 || a.windows(2).any(|w| w[0] == w[1]));
        let tau = kendall_tau(&a, &a);
        prop_assert!((-1.0..=1.0).contains(&tau));
    }

    #[test]
    fn mape_of_exact_predictions_is_zero(
        t in prop::collection::vec(0.1f64..100.0, 1..30),
    ) {
        prop_assert!(mape(&t, &t) < 1e-12);
    }

    #[test]
    fn accuracy_of_self_is_one(labels in prop::collection::vec(0usize..5, 1..50)) {
        prop_assert_eq!(accuracy(&labels, &labels), 1.0);
    }

    #[test]
    fn normalizer_output_bounded_on_training_data(
        rows in 1usize..20,
        cols in 1usize..8,
        seed in 0u64..100,
    ) {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i as u64 * 2654435761 + seed) % 1000) as f32 / 10.0 - 40.0)
            .collect();
        let m = FeatureMatrix::new(rows, cols, data);
        let t = MaxNormalizer::fit(&m).transform(&m);
        prop_assert!(t.data().iter().all(|&v| (-1.0 - 1e-6..=1.0 + 1e-6).contains(&v)));
    }

    #[test]
    fn kfold_is_a_partition(n in 5usize..100, k in 2usize..5, seed in 0u64..50) {
        prop_assume!(n >= k);
        let kf = KFold::new(n, k, seed);
        let mut seen = vec![false; n];
        for i in 0..k {
            let (train, test) = kf.split(i);
            prop_assert_eq!(train.len() + test.len(), n);
            for &t in &test {
                prop_assert!(!seen[t], "sample {t} in two test folds");
                seen[t] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn binning_is_monotone(
        vals in prop::collection::vec(-100.0f32..100.0, 4..60),
        bins in 2usize..16,
    ) {
        let n = vals.len();
        let x = FeatureMatrix::new(n, 1, vals.clone());
        let bm = BinnedMatrix::new(&x, bins);
        let mut pairs: Vec<(f32, usize)> = (0..n).map(|r| (vals[r], bm.bin(r, 0))).collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "bins not monotone in value");
        }
    }

    #[test]
    fn gbdt_regressor_interpolates_constant(
        c in -5.0f32..5.0,
        n in 4usize..30,
    ) {
        let x = FeatureMatrix::new(n, 1, (0..n).map(|i| i as f32).collect());
        let y = vec![c; n];
        let cfg = GbdtConfig { rounds: 5, ..GbdtConfig::default() };
        let model = GbdtRegressor::fit(&x, &y, &cfg);
        for i in 0..n {
            prop_assert!((model.predict_row(x.row(i)) - c).abs() < 1e-4);
        }
    }
}

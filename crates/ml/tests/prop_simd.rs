//! Dispatch-path parity property tests: the vectorized kernels must be
//! **bit-identical** to their scalar oracles (the documented ULP bound
//! is zero — see DESIGN.md §14). Every test runs the same computation
//! with the hardware's native tier and with `STENCILMART_NO_SIMD=1`
//! and compares raw output bits, across the packed-panel path, the
//! no-pack direct path, the transposed variants, and the threaded row
//! partition. On hosts whose native tier is already scalar the
//! comparisons are trivially equal — CI's AVX2/AVX-512 runners are
//! where they bite.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use stencilmart_ml::gemm::{gemm, gemm_nt, gemm_tn, DIRECT_FLOP_THRESHOLD, PAR_FLOP_THRESHOLD};

/// Serializes the binary on one mutex: every test mutates the
/// process-wide `STENCILMART_NO_SIMD` / `STENCILMART_THREADS` variables.
fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn with_no_simd<T>(no_simd: bool, f: impl FnOnce() -> T) -> T {
    if no_simd {
        std::env::set_var("STENCILMART_NO_SIMD", "1");
    } else {
        std::env::remove_var("STENCILMART_NO_SIMD");
    }
    let out = f();
    std::env::remove_var("STENCILMART_NO_SIMD");
    out
}

fn random_vec(rng: &mut ChaCha8Rng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

/// Bits of `C` after one GEMM call of the requested variant.
#[allow(clippy::too_many_arguments)]
fn gemm_bits(
    variant: u8,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c_init: &[f32],
    accumulate: bool,
) -> Vec<u32> {
    let mut c = c_init.to_vec();
    match variant {
        0 => gemm(m, k, n, a, b, &mut c, accumulate),
        1 => gemm_tn(m, k, n, a, b, &mut c, accumulate),
        _ => gemm_nt(m, k, n, a, b, &mut c, accumulate),
    }
    c.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Small shapes: exercises the no-pack direct path (plain and Aᵀ
    // layouts) and the packed path for Bᵀ, against the scalar tier.
    #[test]
    fn small_gemm_is_bit_identical_across_tiers(
        seed in 0u64..1 << 20,
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        variant in 0u8..3,
        accumulate in any::<bool>(),
    ) {
        let _guard = env_lock();
        prop_assume!(2 * m * k * n < DIRECT_FLOP_THRESHOLD);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (a, b) = match variant {
            0 => (random_vec(&mut rng, m * k), random_vec(&mut rng, k * n)),
            1 => (random_vec(&mut rng, k * m), random_vec(&mut rng, k * n)),
            _ => (random_vec(&mut rng, m * k), random_vec(&mut rng, n * k)),
        };
        let c_init = random_vec(&mut rng, m * n);
        let native = with_no_simd(false, || gemm_bits(variant, m, k, n, &a, &b, &c_init, accumulate));
        let scalar = with_no_simd(true, || gemm_bits(variant, m, k, n, &a, &b, &c_init, accumulate));
        prop_assert_eq!(native, scalar);
    }

    // Large shapes: exercises the packed-panel micro-kernels, serial
    // and threaded, against the scalar tier. Shapes straddle the MR/NR
    // tile edges so zero-padded tails are covered.
    #[test]
    fn packed_gemm_is_bit_identical_across_tiers(
        seed in 0u64..1 << 20,
        m in 150usize..200,
        k in 160usize..300,
        n in 90usize..140,
        variant in 0u8..3,
        parallel in any::<bool>(),
    ) {
        let _guard = env_lock();
        let threads = if parallel { "3" } else { "1" };
        prop_assume!(2 * m * k * n >= DIRECT_FLOP_THRESHOLD);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (a, b) = match variant {
            0 => (random_vec(&mut rng, m * k), random_vec(&mut rng, k * n)),
            1 => (random_vec(&mut rng, k * m), random_vec(&mut rng, k * n)),
            _ => (random_vec(&mut rng, m * k), random_vec(&mut rng, n * k)),
        };
        let c_init = vec![0.0f32; m * n];
        std::env::set_var("STENCILMART_THREADS", threads);
        let native = with_no_simd(false, || gemm_bits(variant, m, k, n, &a, &b, &c_init, false));
        let scalar = with_no_simd(true, || gemm_bits(variant, m, k, n, &a, &b, &c_init, false));
        std::env::remove_var("STENCILMART_THREADS");
        prop_assert_eq!(native, scalar);
    }
}

/// The parallel threshold really is reachable from the proptest shape
/// ranges above (guards against silent `prop_assume` vacuity if the
/// thresholds ever move).
#[test]
#[allow(clippy::assertions_on_constants)]
fn packed_shapes_cross_the_parallel_threshold() {
    assert!(2 * 199 * 299 * 139 >= PAR_FLOP_THRESHOLD);
    assert!(2 * 150 * 160 * 90 >= DIRECT_FLOP_THRESHOLD);
}

//! Determinism property tests for the parallel GBDT engine: fitted
//! models (tree structures, leaf values) and predictions must be
//! bit-identical across `STENCILMART_THREADS` ∈ {1, 2, 4} **and**
//! across `STENCILMART_NO_SIMD` ∈ {0, 1} on random datasets, for both
//! the exact and binned tree paths, regressor and classifier alike. The
//! observability counters (commutative sums) must agree exactly too.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use stencilmart_ml::data::FeatureMatrix;
use stencilmart_ml::gbdt::binned::BinnedMatrix;
use stencilmart_ml::gbdt::stream::ShardedBins;
use stencilmart_ml::gbdt::tree::TreeConfig;
use stencilmart_ml::gbdt::{GbdtClassifier, GbdtConfig, GbdtRegressor};
use stencilmart_obs as obs;

/// Serializes the whole binary on one mutex: every test both mutates the
/// process-wide `STENCILMART_THREADS` variable and (in the counter test)
/// resets process-global metric cells.
fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var("STENCILMART_THREADS", threads);
    let out = f();
    std::env::remove_var("STENCILMART_THREADS");
    out
}

fn with_no_simd<T>(no_simd: bool, f: impl FnOnce() -> T) -> T {
    if no_simd {
        std::env::set_var("STENCILMART_NO_SIMD", "1");
    } else {
        std::env::remove_var("STENCILMART_NO_SIMD");
    }
    let out = f();
    std::env::remove_var("STENCILMART_NO_SIMD");
    out
}

fn random_regression(seed: u64, n: usize, cols: usize) -> (FeatureMatrix, Vec<f32>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * cols);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f32> = (0..cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let target = row
            .iter()
            .enumerate()
            .map(|(j, v)| (j as f32 + 1.0) * v)
            .sum::<f32>()
            + rng.gen_range(-0.1f32..0.1);
        data.extend_from_slice(&row);
        y.push(target);
    }
    (FeatureMatrix::new(n, cols, data), y)
}

fn random_classification(
    seed: u64,
    n: usize,
    cols: usize,
    classes: usize,
) -> (FeatureMatrix, Vec<usize>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * cols);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f32> = (0..cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        // Label correlates with the first feature so trees have signal,
        // with a random remainder so classes stay non-trivial.
        let label = if row[0] > 0.0 && classes > 1 {
            1 + rng.gen_range(0..classes - 1)
        } else {
            rng.gen_range(0..classes)
        };
        data.extend_from_slice(&row);
        labels.push(label);
    }
    (FeatureMatrix::new(n, cols, data), labels)
}

fn gbdt_config(exact: bool, seed: u64) -> GbdtConfig {
    let cfg = GbdtConfig {
        rounds: 8,
        eta: 0.2,
        subsample: 0.7,
        tree: TreeConfig {
            max_depth: 4,
            ..TreeConfig::default()
        },
        bins: 16,
        seed,
    };
    if exact {
        cfg.exact()
    } else {
        cfg
    }
}

/// A [`ShardedBins`] built from a resident matrix through the public
/// API only: the matrix is binned once, its codes are sliced into
/// `shards` near-equal contiguous row shards, and the loader serves
/// those slices — exactly what the on-disk store does, minus the disk.
fn sharded_bins(x: &FeatureMatrix, n_bins: usize, shards: usize) -> ShardedBins {
    let bm = BinnedMatrix::new(x, n_bins);
    let (rows, cols) = (x.rows(), x.cols());
    let cuts: Vec<Vec<f32>> = (0..cols)
        .map(|c| (0..bm.n_bins(c) - 1).map(|b| bm.cut_value(c, b)).collect())
        .collect();
    let mut shard_rows = Vec::with_capacity(shards);
    let mut slices: Vec<Arc<Vec<u8>>> = Vec::with_capacity(shards);
    for s in 0..shards {
        let lo = s * rows / shards;
        let hi = (s + 1) * rows / shards;
        shard_rows.push(hi - lo);
        let mut codes = Vec::with_capacity((hi - lo) * cols);
        for r in lo..hi {
            codes.extend((0..cols).map(|c| bm.bin(r, c) as u8));
        }
        slices.push(Arc::new(codes));
    }
    ShardedBins::new(
        &shard_rows,
        cols,
        cuts,
        2,
        Box::new(move |s| Ok(Arc::clone(&slices[s]))),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn regressor_is_bit_identical_across_thread_counts(
        seed in 0u64..1 << 20,
        n in 40usize..120,
        cols in 1usize..4,
        exact in any::<bool>(),
    ) {
        let _guard = env_lock();
        let (x, y) = random_regression(seed, n, cols);
        let cfg = gbdt_config(exact, seed ^ 0xA5);
        let runs: Vec<(String, Vec<u32>)> = ["1", "2", "4"]
            .iter()
            .map(|threads| {
                with_threads(threads, || {
                    let model = GbdtRegressor::fit(&x, &y, &cfg);
                    let json = serde_json::to_string(&model).unwrap();
                    let bits = model.predict(&x).iter().map(|p| p.to_bits()).collect();
                    (json, bits)
                })
            })
            .collect();
        prop_assert_eq!(&runs[0], &runs[1]);
        prop_assert_eq!(&runs[0], &runs[2]);
    }

    #[test]
    fn classifier_is_bit_identical_across_thread_counts(
        seed in 0u64..1 << 20,
        n in 40usize..120,
        cols in 1usize..4,
        classes in 2usize..5,
        exact in any::<bool>(),
    ) {
        let _guard = env_lock();
        let (x, labels) = random_classification(seed, n, cols, classes);
        let cfg = gbdt_config(exact, seed ^ 0x5A);
        let runs: Vec<(String, Vec<usize>)> = ["1", "2", "4"]
            .iter()
            .map(|threads| {
                with_threads(threads, || {
                    let model = GbdtClassifier::fit(&x, &labels, classes, &cfg);
                    let json = serde_json::to_string(&model).unwrap();
                    (json, model.predict(&x))
                })
            })
            .collect();
        prop_assert_eq!(&runs[0], &runs[1]);
        prop_assert_eq!(&runs[0], &runs[2]);
    }

    // The SIMD histogram/binning paths must not change a single bit of
    // the fitted model, in any combination with the thread partition
    // (binned path only: the exact path never dispatches).
    #[test]
    fn binned_fit_is_bit_identical_across_simd_paths(
        seed in 0u64..1 << 20,
        n in 40usize..120,
        cols in 1usize..4,
        classes in 2usize..5,
    ) {
        let _guard = env_lock();
        let (x, y) = random_regression(seed, n, cols);
        let (cx, labels) = random_classification(seed ^ 0x33, n, cols, classes);
        let cfg = gbdt_config(false, seed ^ 0xC3);
        let runs: Vec<(String, Vec<u32>, String)> = [(false, "1"), (false, "4"), (true, "1"), (true, "4")]
            .iter()
            .map(|&(no_simd, threads)| {
                with_no_simd(no_simd, || with_threads(threads, || {
                    let reg = GbdtRegressor::fit(&x, &y, &cfg);
                    let bits = reg.predict(&x).iter().map(|p| p.to_bits()).collect();
                    let cls = GbdtClassifier::fit(&cx, &labels, classes, &cfg);
                    (
                        serde_json::to_string(&reg).unwrap(),
                        bits,
                        serde_json::to_string(&cls).unwrap(),
                    )
                }))
            })
            .collect();
        for run in &runs[1..] {
            prop_assert_eq!(&runs[0], run);
        }
    }

    // The out-of-core path: a streamed fit must serialize byte-equal to
    // the resident fit for every tested shard count × worker count, on
    // random data. Scratch-buffer reuse in `BinnedMatrix::new` and the
    // shard-run accumulation must not move a single bit.
    #[test]
    fn streamed_fit_is_bit_identical_for_any_sharding(
        seed in 0u64..1 << 20,
        n in 40usize..120,
        cols in 1usize..4,
        classes in 2usize..4,
    ) {
        let _guard = env_lock();
        let (x, y) = random_regression(seed, n, cols);
        let (cx, labels) = random_classification(seed ^ 0x77, n, cols, classes);
        let cfg = gbdt_config(false, seed ^ 0xE1);
        let (reg_expect, cls_expect) = with_threads("1", || {
            (
                serde_json::to_string(&GbdtRegressor::fit(&x, &y, &cfg)).unwrap(),
                serde_json::to_string(&GbdtClassifier::fit(&cx, &labels, classes, &cfg)).unwrap(),
            )
        });
        for shards in [1usize, 3, 8] {
            for threads in ["1", "4"] {
                let (reg_json, cls_json) = with_threads(threads, || {
                    let sb = sharded_bins(&x, cfg.bins, shards);
                    let reg = GbdtRegressor::fit_streamed(&sb, &y, &cfg);
                    let csb = sharded_bins(&cx, cfg.bins, shards);
                    let cls = GbdtClassifier::fit_streamed(&csb, &labels, classes, &cfg);
                    (
                        serde_json::to_string(&reg).unwrap(),
                        serde_json::to_string(&cls).unwrap(),
                    )
                });
                prop_assert!(reg_json == reg_expect, "reg shards={} threads={}", shards, threads);
                prop_assert!(cls_json == cls_expect, "cls shards={} threads={}", shards, threads);
            }
        }
    }

    #[test]
    fn gbdt_counters_match_across_thread_counts(
        seed in 0u64..1 << 20,
        classes in 2usize..4,
    ) {
        let _guard = env_lock();
        let (x, labels) = random_classification(seed, 60, 2, classes);
        let cfg = gbdt_config(false, seed);
        let snapshots: Vec<Vec<(&'static str, u64)>> = ["1", "4"]
            .iter()
            .map(|threads| {
                with_threads(threads, || {
                    obs::set_enabled(true);
                    obs::reset();
                    let _ = GbdtClassifier::fit(&x, &labels, classes, &cfg);
                    obs::counters::snapshot()
                })
            })
            .collect();
        prop_assert_eq!(&snapshots[0], &snapshots[1]);
        let get = |name: &str| {
            snapshots[0]
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let trees = (cfg.rounds * classes) as u64;
        prop_assert_eq!(get("trees_fitted"), trees);
        prop_assert_eq!(get("gbdt_trees_grown"), trees);
        prop_assert!(get("hist_builds") >= trees, "every tree builds a root histogram");
        prop_assert!(get("hist_subtractions") > 0, "depth-4 trees must split somewhere");
    }
}

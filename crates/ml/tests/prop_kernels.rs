//! Parity property tests: the blocked GEMM and the im2col convolution
//! layers must agree with the naive oracles in `stencilmart_ml::reference`
//! to 1e-4 relative tolerance across random shapes, including degenerate
//! (`m = 1`, `k = 1`) and non-tile-multiple sizes.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stencilmart_ml::gemm;
use stencilmart_ml::nn::{Conv2d, Conv3d, Layer};
use stencilmart_ml::reference;
use stencilmart_ml::tensor::Tensor;

/// Deterministic fill in (-1, 1) from a mutable LCG state.
fn lcg_fill(seed: &mut u64, out: &mut [f32]) {
    for v in out {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *v = ((*seed >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0;
    }
}

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-4 * (1.0 + a.abs().max(b.abs()))
}

fn assert_all_close(got: &[f32], want: &[f32], what: &str) -> Result<(), TestCaseError> {
    prop_assert!(
        got.len() == want.len(),
        "{} length mismatch: {} vs {}",
        what,
        got.len(),
        want.len()
    );
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        prop_assert!(close(*g, *w), "{}[{}]: got {} want {}", what, i, g, w);
    }
    Ok(())
}

/// GEMM shapes: random sizes plus hand-picked boundary cases — degenerate
/// dims, exact tile multiples (MR=4 / NR=16 / KC=256), and off-by-one
/// neighbours of the blocking parameters.
fn gemm_shape() -> impl Strategy<Value = (usize, usize, usize)> {
    prop_oneof![
        (1usize..=48, 1usize..=48, 1usize..=48),
        Just((1, 1, 1)),
        Just((1, 37, 23)),
        Just((29, 1, 31)),
        Just((33, 27, 1)),
        Just((4, 16, 16)),
        Just((5, 17, 15)),
        Just((65, 64, 33)),
    ]
}

proptest! {
    #[test]
    fn gemm_matches_naive_reference((m, k, n) in gemm_shape(), seed in 0u64..1 << 32) {
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        lcg_fill(&mut s, &mut a);
        lcg_fill(&mut s, &mut b);
        let want = reference::matmul(m, k, n, &a, &b);
        let mut got = vec![0.0f32; m * n];
        gemm::gemm(m, k, n, &a, &b, &mut got, false);
        assert_all_close(&got, &want, "gemm")?;
    }

    #[test]
    fn gemm_tn_matches_naive_reference((m, k, n) in gemm_shape(), seed in 0u64..1 << 32) {
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(7);
        let mut a = vec![0.0f32; k * m]; // A stored [k, m]
        let mut b = vec![0.0f32; k * n];
        lcg_fill(&mut s, &mut a);
        lcg_fill(&mut s, &mut b);
        let want = reference::matmul_tn(m, k, n, &a, &b);
        let mut got = vec![0.0f32; m * n];
        gemm::gemm_tn(m, k, n, &a, &b, &mut got, false);
        assert_all_close(&got, &want, "gemm_tn")?;
    }

    #[test]
    fn gemm_nt_matches_naive_reference((m, k, n) in gemm_shape(), seed in 0u64..1 << 32) {
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(13);
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; n * k]; // B stored [n, k]
        lcg_fill(&mut s, &mut a);
        lcg_fill(&mut s, &mut b);
        let want = reference::matmul_nt(m, k, n, &a, &b);
        let mut got = vec![0.0f32; m * n];
        gemm::gemm_nt(m, k, n, &a, &b, &mut got, false);
        assert_all_close(&got, &want, "gemm_nt")?;
    }

    #[test]
    fn gemm_accumulate_adds_onto_existing_output(
        (m, k, n) in gemm_shape(),
        seed in 0u64..1 << 32,
    ) {
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(19);
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        let mut c0 = vec![0.0f32; m * n];
        lcg_fill(&mut s, &mut a);
        lcg_fill(&mut s, &mut b);
        lcg_fill(&mut s, &mut c0);
        let prod = reference::matmul(m, k, n, &a, &b);
        let want: Vec<f32> = c0.iter().zip(&prod).map(|(c, p)| c + p).collect();
        let mut got = c0.clone();
        gemm::gemm(m, k, n, &a, &b, &mut got, true);
        assert_all_close(&got, &want, "gemm+acc")?;
    }

    #[test]
    fn conv2d_matches_naive_reference(
        (b, ic, oc) in (1usize..=2, 1usize..=3, 1usize..=3),
        k in 1usize..=3,
        (dh, dw) in (0usize..=4, 0usize..=4),
        seed in 0u64..1 << 32,
    ) {
        let (h, w) = (k + dh, k + dw);
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(23);
        let mut xd = vec![0.0f32; b * ic * h * w];
        let mut wd = vec![0.0f32; oc * ic * k * k];
        let mut bias = vec![0.0f32; oc];
        lcg_fill(&mut s, &mut xd);
        lcg_fill(&mut s, &mut wd);
        lcg_fill(&mut s, &mut bias);

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut layer = Conv2d::new(ic, oc, k, &mut rng);
        let mut slot = 0;
        layer.visit_params(&mut |p, _| {
            if slot == 0 {
                p.copy_from_slice(&wd);
            } else {
                p.copy_from_slice(&bias);
            }
            slot += 1;
        });

        let x = Tensor::from_vec(&[b, ic, h, w], xd.clone());
        let y = layer.forward(&x, true);
        let want_y = reference::conv2d_forward(&xd, b, ic, h, w, &wd, &bias, oc, k);
        assert_all_close(y.data(), &want_y, "conv2d fwd")?;

        let mut gd = vec![0.0f32; y.len()];
        lcg_fill(&mut s, &mut gd);
        let g = Tensor::from_vec(y.shape(), gd.clone());
        let gx = layer.backward(&g);
        let (want_gx, want_gw, want_gb) =
            reference::conv2d_backward(&xd, &gd, b, ic, h, w, &wd, oc, k);
        assert_all_close(gx.data(), &want_gx, "conv2d gx")?;
        let mut grads: Vec<Vec<f32>> = Vec::new();
        layer.visit_params(&mut |_, gr| grads.push(gr.to_vec()));
        assert_all_close(&grads[0], &want_gw, "conv2d gw")?;
        assert_all_close(&grads[1], &want_gb, "conv2d gb")?;
    }

    #[test]
    fn conv3d_matches_naive_reference(
        (b, ic, oc) in (1usize..=2, 1usize..=2, 1usize..=2),
        k in 1usize..=3,
        (dd, dh, dw) in (0usize..=2, 0usize..=2, 0usize..=2),
        seed in 0u64..1 << 32,
    ) {
        let (d, h, w) = (k + dd, k + dh, k + dw);
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(29);
        let mut xd = vec![0.0f32; b * ic * d * h * w];
        let mut wd = vec![0.0f32; oc * ic * k * k * k];
        let mut bias = vec![0.0f32; oc];
        lcg_fill(&mut s, &mut xd);
        lcg_fill(&mut s, &mut wd);
        lcg_fill(&mut s, &mut bias);

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut layer = Conv3d::new(ic, oc, k, &mut rng);
        let mut slot = 0;
        layer.visit_params(&mut |p, _| {
            if slot == 0 {
                p.copy_from_slice(&wd);
            } else {
                p.copy_from_slice(&bias);
            }
            slot += 1;
        });

        let x = Tensor::from_vec(&[b, ic, d, h, w], xd.clone());
        let y = layer.forward(&x, true);
        let want_y = reference::conv3d_forward(&xd, b, ic, d, h, w, &wd, &bias, oc, k);
        assert_all_close(y.data(), &want_y, "conv3d fwd")?;

        let mut gd = vec![0.0f32; y.len()];
        lcg_fill(&mut s, &mut gd);
        let g = Tensor::from_vec(y.shape(), gd.clone());
        let gx = layer.backward(&g);
        let (want_gx, want_gw, want_gb) =
            reference::conv3d_backward(&xd, &gd, b, ic, d, h, w, &wd, oc, k);
        assert_all_close(gx.data(), &want_gx, "conv3d gx")?;
        let mut grads: Vec<Vec<f32>> = Vec::new();
        layer.visit_params(&mut |_, gr| grads.push(gr.to_vec()));
        assert_all_close(&grads[0], &want_gw, "conv3d gw")?;
        assert_all_close(&grads[1], &want_gb, "conv3d gb")?;
    }
}

//! Runtime SIMD dispatch for the hot kernels.
//!
//! The workspace compiles with `-C target-cpu=native`, so the scalar
//! kernels already autovectorize on the build host — but the explicit
//! `core::arch` paths in [`crate::gemm`] and [`crate::gbdt`] squeeze
//! out the register tiling and instruction selection LLVM won't commit
//! to on its own. Which path runs is a *runtime* decision made here,
//! once per kernel invocation:
//!
//! * the hardware tier comes from a cached `cpuid` probe
//!   ([`stencilmart_obs::runtime::simd_isa`]),
//! * `STENCILMART_NO_SIMD=1` forces [`SimdIsa::Scalar`] everywhere so
//!   tests and CI can exercise the fallback paths on wide hosts,
//! * every decision is recorded in the obs layer: the `simd_isa_level`
//!   gauge tracks the most recent tier, and the `simd_dispatches`
//!   counter counts invocations that actually took a vectorized path.
//!
//! # Determinism contract
//!
//! Dispatch never changes results where the workspace promises
//! bit-determinism (DESIGN.md §14): every vectorized kernel keeps each
//! output element's floating-point reduction in the same order as its
//! scalar oracle, so GEMM outputs and GBDT fits are bit-identical
//! across [`SimdIsa`] tiers, `STENCILMART_NO_SIMD` settings, and
//! `STENCILMART_THREADS` values. Vector width only changes how many
//! *independent* elements advance per instruction, never the
//! association order within one element's chain.

use stencilmart_obs::counters;
pub use stencilmart_obs::runtime::SimdIsa;

/// Resolve the instruction-set tier for one kernel invocation and
/// record the decision in the obs layer.
///
/// Call this once per kernel *entry point* (a GEMM call, a GBDT
/// histogram batch), not per tile: the env-var re-read behind
/// [`stencilmart_obs::runtime::simd_isa`] is cheap but not free, and a
/// single decision per invocation also guarantees one invocation never
/// mixes tiers mid-computation.
#[inline]
pub fn dispatch() -> SimdIsa {
    let isa = stencilmart_obs::runtime::simd_isa();
    counters::SIMD_ISA_LEVEL.set(isa.ordinal());
    if isa > SimdIsa::Scalar {
        counters::SIMD_DISPATCHES.inc();
    }
    isa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par;

    #[test]
    fn dispatch_matches_runtime_and_honors_override() {
        let _guard = par::test_env_lock();
        std::env::remove_var("STENCILMART_NO_SIMD");
        let native = dispatch();
        assert_eq!(native, stencilmart_obs::runtime::simd_isa());
        std::env::set_var("STENCILMART_NO_SIMD", "1");
        assert_eq!(dispatch(), SimdIsa::Scalar);
        std::env::remove_var("STENCILMART_NO_SIMD");
        assert_eq!(dispatch(), native);
    }

    #[test]
    fn dispatch_counts_only_vectorized_paths() {
        let _guard = par::test_env_lock();
        stencilmart_obs::set_enabled(true);
        counters::SIMD_DISPATCHES.reset();
        std::env::set_var("STENCILMART_NO_SIMD", "1");
        dispatch();
        assert_eq!(counters::SIMD_DISPATCHES.get(), 0);
        assert_eq!(counters::SIMD_ISA_LEVEL.get(), SimdIsa::Scalar.ordinal());
        std::env::remove_var("STENCILMART_NO_SIMD");
        let isa = dispatch();
        assert_eq!(
            counters::SIMD_DISPATCHES.get(),
            u64::from(isa > SimdIsa::Scalar)
        );
        assert_eq!(counters::SIMD_ISA_LEVEL.get(), isa.ordinal());
    }
}

//! Naive reference kernels kept as correctness oracles and benchmark
//! baselines.
//!
//! These are the original (pre-blocking) implementations of the matmul
//! variants and the direct convolutions, verbatim in algorithm: triple
//! loops, no packing, no tiling, and the historical `== 0.0` skip branch.
//! The optimized paths in [`crate::gemm`] and [`crate::nn::conv`] are
//! property-tested against them, and `BENCH_ml_kernels.json` reports
//! speedups relative to them.

/// `C = A·B` with `A: [m,k]`, `B: [k,n]` row-major (i-k-j loop order).
pub fn matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow) {
                *c += av * bv;
            }
        }
    }
    out
}

/// `C = Aᵀ·B` with `A` stored `[k,m]`, `B: [k,n]`.
pub fn matmul_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), k * m);
    assert_eq!(b.len(), k * n);
    let mut out = vec![0.0f32; m * n];
    for kk in 0..k {
        let arow = &a[kk * m..(kk + 1) * m];
        let brow = &b[kk * n..(kk + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut out[i * n..(i + 1) * n];
            for (c, &bv) in crow.iter_mut().zip(brow) {
                *c += av * bv;
            }
        }
    }
    out
}

/// `C = A·Bᵀ` with `A: [m,k]`, `B` stored `[n,k]` (dot-product form).
pub fn matmul_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Direct 2-D convolution forward: `x: [b, ic, h, w]`, `weights: [oc, ic,
/// k, k]`, `bias: [oc]` → `[b, oc, h-k+1, w-k+1]`. Stride 1, valid padding.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward(
    x: &[f32],
    b: usize,
    ic: usize,
    h: usize,
    w: usize,
    weights: &[f32],
    bias: &[f32],
    oc: usize,
    k: usize,
) -> Vec<f32> {
    let (oh, ow) = (h + 1 - k, w + 1 - k);
    let mut y = vec![0.0f32; b * oc * oh * ow];
    for bi in 0..b {
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[o];
                    for c in 0..ic {
                        for ky in 0..k {
                            let xrow = ((bi * ic + c) * h + oy + ky) * w + ox;
                            let wrow = ((o * ic + c) * k + ky) * k;
                            for kx in 0..k {
                                acc += weights[wrow + kx] * x[xrow + kx];
                            }
                        }
                    }
                    y[((bi * oc + o) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    y
}

/// Direct 2-D convolution backward. Returns `(gx, gw, gb)` for the output
/// gradient `g: [b, oc, oh, ow]` (gradients freshly computed, not
/// accumulated onto an existing buffer).
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward(
    x: &[f32],
    g: &[f32],
    b: usize,
    ic: usize,
    h: usize,
    w: usize,
    weights: &[f32],
    oc: usize,
    k: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let (oh, ow) = (h + 1 - k, w + 1 - k);
    let mut gx = vec![0.0f32; b * ic * h * w];
    let mut gw = vec![0.0f32; oc * ic * k * k];
    let mut gb = vec![0.0f32; oc];
    for bi in 0..b {
        for o in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let gv = g[((bi * oc + o) * oh + oy) * ow + ox];
                    if gv == 0.0 {
                        continue;
                    }
                    gb[o] += gv;
                    for c in 0..ic {
                        for ky in 0..k {
                            let xrow = ((bi * ic + c) * h + oy + ky) * w + ox;
                            let wrow = ((o * ic + c) * k + ky) * k;
                            for kx in 0..k {
                                gw[wrow + kx] += gv * x[xrow + kx];
                                gx[xrow + kx] += gv * weights[wrow + kx];
                            }
                        }
                    }
                }
            }
        }
    }
    (gx, gw, gb)
}

/// Direct 3-D convolution forward: `x: [b, ic, d, h, w]`, `weights: [oc,
/// ic, k, k, k]` → `[b, oc, d-k+1, h-k+1, w-k+1]`.
#[allow(clippy::too_many_arguments)]
pub fn conv3d_forward(
    x: &[f32],
    b: usize,
    ic: usize,
    d: usize,
    h: usize,
    w: usize,
    weights: &[f32],
    bias: &[f32],
    oc: usize,
    k: usize,
) -> Vec<f32> {
    let (od, oh, ow) = (d + 1 - k, h + 1 - k, w + 1 - k);
    let mut y = vec![0.0f32; b * oc * od * oh * ow];
    for bi in 0..b {
        for o in 0..oc {
            for oz in 0..od {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias[o];
                        for c in 0..ic {
                            for kz in 0..k {
                                for ky in 0..k {
                                    let xrow =
                                        (((bi * ic + c) * d + oz + kz) * h + oy + ky) * w + ox;
                                    let wrow = (((o * ic + c) * k + kz) * k + ky) * k;
                                    for kx in 0..k {
                                        acc += weights[wrow + kx] * x[xrow + kx];
                                    }
                                }
                            }
                        }
                        y[(((bi * oc + o) * od + oz) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
    }
    y
}

/// Direct 3-D convolution backward. Returns `(gx, gw, gb)`.
#[allow(clippy::too_many_arguments)]
pub fn conv3d_backward(
    x: &[f32],
    g: &[f32],
    b: usize,
    ic: usize,
    d: usize,
    h: usize,
    w: usize,
    weights: &[f32],
    oc: usize,
    k: usize,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let (od, oh, ow) = (d + 1 - k, h + 1 - k, w + 1 - k);
    let mut gx = vec![0.0f32; b * ic * d * h * w];
    let mut gw = vec![0.0f32; oc * ic * k * k * k];
    let mut gb = vec![0.0f32; oc];
    for bi in 0..b {
        for o in 0..oc {
            for oz in 0..od {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let gv = g[(((bi * oc + o) * od + oz) * oh + oy) * ow + ox];
                        if gv == 0.0 {
                            continue;
                        }
                        gb[o] += gv;
                        for c in 0..ic {
                            for kz in 0..k {
                                for ky in 0..k {
                                    let xrow =
                                        (((bi * ic + c) * d + oz + kz) * h + oy + ky) * w + ox;
                                    let wrow = (((o * ic + c) * k + kz) * k + ky) * k;
                                    for kx in 0..k {
                                        gw[wrow + kx] += gv * x[xrow + kx];
                                        gx[xrow + kx] += gv * weights[wrow + kx];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    (gx, gw, gb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = [1., 2., 3., 4., 5., 6.];
        let b = [7., 8., 9., 10., 11., 12.];
        assert_eq!(matmul(2, 3, 2, &a, &b), vec![58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_variants_agree_with_plain() {
        let (m, k, n) = (3, 4, 5);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.3 - 1.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.7).sin()).collect();
        let c = matmul(m, k, n, &a, &b);
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        assert_eq!(matmul_tn(m, k, n, &at, &b), c);
        let mut bt = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let c2 = matmul_nt(m, k, n, &a, &bt);
        for (x, y) in c2.iter().zip(&c) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn conv2d_identity_filter_selects_centres() {
        let x: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let mut w = vec![0.0f32; 9];
        w[4] = 1.0;
        let y = conv2d_forward(&x, 1, 1, 4, 4, &w, &[0.0], 1, 3);
        assert_eq!(y, vec![5.0, 6.0, 9.0, 10.0]);
    }
}

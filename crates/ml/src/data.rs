//! Dataset containers and splitting utilities: a dense feature matrix,
//! min-max normalization (the paper normalizes network inputs to `[0, 1]`
//! by dividing by each feature's maximum), and k-fold cross-validation
//! index generation.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major feature matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl FeatureMatrix {
    /// Create from row-major data.
    pub fn new(rows: usize, cols: usize, data: Vec<f32>) -> FeatureMatrix {
        assert_eq!(rows * cols, data.len(), "matrix shape mismatch");
        FeatureMatrix { rows, cols, data }
    }

    /// Build from an iterator of rows.
    pub fn from_rows<'a>(rows: impl IntoIterator<Item = &'a [f32]>) -> FeatureMatrix {
        let mut data = Vec::new();
        let mut cols = None;
        let mut n = 0;
        for r in rows {
            match cols {
                None => cols = Some(r.len()),
                Some(c) => assert_eq!(c, r.len(), "ragged rows"),
            }
            data.extend_from_slice(r);
            n += 1;
        }
        FeatureMatrix {
            rows: n,
            cols: cols.unwrap_or(0),
            data,
        }
    }

    /// Number of rows (samples).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One sample row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Value at `(row, col)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Select a subset of rows into a new matrix.
    pub fn select(&self, idx: &[usize]) -> FeatureMatrix {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &i in idx {
            data.extend_from_slice(self.row(i));
        }
        FeatureMatrix {
            rows: idx.len(),
            cols: self.cols,
            data,
        }
    }

    /// Per-column maxima of absolute values (used for max normalization).
    pub fn col_abs_max(&self) -> Vec<f32> {
        let mut m = vec![0.0f32; self.cols];
        for i in 0..self.rows {
            for (j, &v) in self.row(i).iter().enumerate() {
                m[j] = m[j].max(v.abs());
            }
        }
        m
    }
}

/// Max-normalizer: divides each feature by its (training-set) maximum
/// absolute value, mapping non-negative features into `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaxNormalizer {
    scale: Vec<f32>,
}

impl MaxNormalizer {
    /// Fit on a training matrix.
    pub fn fit(x: &FeatureMatrix) -> MaxNormalizer {
        let scale = x
            .col_abs_max()
            .into_iter()
            .map(|m| if m > 0.0 { m } else { 1.0 })
            .collect();
        MaxNormalizer { scale }
    }

    /// Apply to a matrix (any number of rows, same column count).
    pub fn transform(&self, x: &FeatureMatrix) -> FeatureMatrix {
        assert_eq!(x.cols(), self.scale.len(), "column mismatch");
        let mut data = Vec::with_capacity(x.data().len());
        for i in 0..x.rows() {
            for (j, &v) in x.row(i).iter().enumerate() {
                data.push(v / self.scale[j]);
            }
        }
        FeatureMatrix::new(x.rows(), x.cols(), data)
    }
}

/// K-fold cross-validation index splits (paper §V-A3 uses 5 folds).
#[derive(Debug, Clone)]
pub struct KFold {
    folds: Vec<Vec<usize>>,
}

impl KFold {
    /// Randomly partition `n` samples into `k` near-equal folds.
    pub fn new(n: usize, k: usize, seed: u64) -> KFold {
        assert!(k >= 2, "need at least 2 folds");
        assert!(n >= k, "need at least one sample per fold");
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
        let mut folds = vec![Vec::with_capacity(n / k + 1); k];
        for (i, v) in idx.into_iter().enumerate() {
            folds[i % k].push(v);
        }
        KFold { folds }
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.folds.len()
    }

    /// `(train_indices, test_indices)` for fold `i`.
    pub fn split(&self, i: usize) -> (Vec<usize>, Vec<usize>) {
        let test = self.folds[i].clone();
        let train = self
            .folds
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_accessors() {
        let m = FeatureMatrix::new(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.row(1), &[4., 5., 6.]);
        assert_eq!(m.at(0, 2), 3.0);
        let s = m.select(&[1, 0]);
        assert_eq!(s.row(0), &[4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn from_rows_rejects_ragged() {
        let r0: &[f32] = &[1., 2.];
        let r1: &[f32] = &[3.];
        FeatureMatrix::from_rows([r0, r1]);
    }

    #[test]
    fn normalizer_maps_to_unit_range() {
        let m = FeatureMatrix::new(3, 2, vec![2., 10., 4., 5., 1., 0.]);
        let norm = MaxNormalizer::fit(&m);
        let t = norm.transform(&m);
        assert!(t.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(t.at(1, 0), 1.0); // 4 / 4
                                     // Zero columns stay zero without dividing by zero.
        let zeros = FeatureMatrix::new(2, 1, vec![0., 0.]);
        let nz = MaxNormalizer::fit(&zeros).transform(&zeros);
        assert_eq!(nz.data(), &[0., 0.]);
    }

    #[test]
    fn kfold_partitions_everything_once() {
        let kf = KFold::new(23, 5, 42);
        assert_eq!(kf.k(), 5);
        let mut seen = [0usize; 23];
        for i in 0..5 {
            let (train, test) = kf.split(i);
            assert_eq!(train.len() + test.len(), 23);
            for &t in &test {
                seen[t] += 1;
            }
            // train and test are disjoint
            for &t in &test {
                assert!(!train.contains(&t));
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each sample tests exactly once"
        );
    }

    #[test]
    fn kfold_is_seeded() {
        let a = KFold::new(50, 5, 7);
        let b = KFold::new(50, 5, 7);
        let c = KFold::new(50, 5, 8);
        assert_eq!(a.split(0), b.split(0));
        assert_ne!(a.split(0), c.split(0));
    }
}

#![warn(missing_docs)]

//! From-scratch machine-learning substrate for StencilMART.
//!
//! The paper builds its networks on TensorFlow 1.15 and its tree models on
//! XGBoost 1.4.2; this crate provides equivalent, dependency-free Rust
//! implementations:
//!
//! * [`tensor`] — a dense `f32` tensor with the matmul variants needed for
//!   backprop.
//! * [`gemm`] — cache-blocked, register-tiled, optionally multithreaded
//!   `f32` matrix multiplication backing every matmul variant.
//! * [`mod@reference`] — the original naive kernels, kept as correctness
//!   oracles and benchmark baselines.
//! * [`nn`] — dense / 2-D / 3-D conv layers, ReLU, softmax-CE and MSE
//!   losses, Adam/SGD, sequential and two-branch containers, mini-batch
//!   training loops.
//! * [`gbdt`] — second-order gradient boosting: `GbdtRegressor`
//!   (squared error) and `GbdtClassifier` (softmax, one tree per class per
//!   round) over exact-greedy regression trees.
//! * [`data`] — feature matrices, max normalization, k-fold CV splits.
//! * [`metrics`] — accuracy, confusion, MAPE, Pearson, Kendall tau.
//! * [`par`] — scoped-thread parallel map for fold-/model-level
//!   parallelism.
//! * [`simd`] — runtime instruction-set dispatch (`STENCILMART_NO_SIMD`
//!   override, obs-reported) for the vectorized kernel paths.

pub mod data;
pub mod gbdt;
pub mod gemm;
pub mod metrics;
pub mod nn;
pub mod par;
pub mod reference;
pub mod simd;
pub mod tensor;

pub use data::{FeatureMatrix, KFold, MaxNormalizer};
pub use gbdt::{GbdtClassifier, GbdtConfig, GbdtRegressor};
pub use tensor::Tensor;

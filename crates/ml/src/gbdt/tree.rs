//! A single gradient-boosted regression tree with exact greedy split
//! search and XGBoost-style second-order gain.

use crate::data::FeatureMatrix;
use serde::{Deserialize, Serialize};
use stencilmart_obs::counters;

/// Tree growth hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum hessian sum in a child (XGBoost `min_child_weight`).
    pub min_child_weight: f32,
    /// L2 regularization on leaf values (XGBoost `lambda`).
    pub lambda: f32,
    /// Minimum gain to split (XGBoost `gamma`).
    pub gamma: f32,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 5,
            min_child_weight: 1.0,
            lambda: 1.0,
            gamma: 0.0,
        }
    }
}

/// A tree node: internal nodes split; leaves carry a value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
    Leaf {
        value: f32,
    },
}

/// Leaf membership of every fitted row: `rows` is the final in-place
/// permutation of the fitted subset and `spans` holds
/// `(start, end, leaf_value)` ranges into it — one per leaf that
/// received rows. Boosting loops use this to update predictions for the
/// fitted rows without re-traversing the tree; the values are exactly
/// the leaf values traversal would find.
#[derive(Debug, Clone)]
pub(crate) struct LeafSpans {
    pub(crate) rows: Vec<usize>,
    pub(crate) spans: Vec<(usize, usize, f32)>,
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fit a tree to gradient/hessian targets on the given sample subset.
    ///
    /// The optimal leaf value is `-G / (H + λ)` and the split gain is the
    /// standard second-order formula; features with no separating
    /// threshold are skipped.
    pub fn fit(
        x: &FeatureMatrix,
        grad: &[f32],
        hess: &[f32],
        indices: &[usize],
        cfg: &TreeConfig,
    ) -> RegressionTree {
        Self::fit_tracked(x, grad, hess, indices, cfg).0
    }

    /// [`RegressionTree::fit`] that also reports which leaf every fitted
    /// row ended in (see [`LeafSpans`]).
    pub(crate) fn fit_tracked(
        x: &FeatureMatrix,
        grad: &[f32],
        hess: &[f32],
        indices: &[usize],
        cfg: &TreeConfig,
    ) -> (RegressionTree, LeafSpans) {
        assert_eq!(x.rows(), grad.len());
        assert_eq!(grad.len(), hess.len());
        counters::TREES_FITTED.inc();
        let mut tree = RegressionTree { nodes: Vec::new() };
        let mut idx = indices.to_vec();
        // One sort scratch shared by every node of the tree.
        let mut order: Vec<usize> = Vec::with_capacity(idx.len());
        let mut spans: Vec<(usize, usize, f32)> = Vec::new();
        tree.build(x, grad, hess, &mut idx, 0, 0, cfg, &mut order, &mut spans);
        (tree, LeafSpans { rows: idx, spans })
    }

    fn leaf_value(grad_sum: f32, hess_sum: f32, lambda: f32) -> f32 {
        -grad_sum / (hess_sum + lambda)
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        x: &FeatureMatrix,
        grad: &[f32],
        hess: &[f32],
        idx: &mut [usize],
        base: usize,
        depth: usize,
        cfg: &TreeConfig,
        order: &mut Vec<usize>,
        spans: &mut Vec<(usize, usize, f32)>,
    ) -> usize {
        let len = idx.len();
        let g_sum: f32 = idx.iter().map(|&i| grad[i]).sum();
        let h_sum: f32 = idx.iter().map(|&i| hess[i]).sum();
        let make_leaf = |nodes: &mut Vec<Node>, spans: &mut Vec<(usize, usize, f32)>| {
            let value = Self::leaf_value(g_sum, h_sum, cfg.lambda);
            nodes.push(Node::Leaf { value });
            spans.push((base, base + len, value));
            nodes.len() - 1
        };
        if depth >= cfg.max_depth || len < 2 {
            return make_leaf(&mut self.nodes, spans);
        }

        // Exact greedy split search over all features, reusing the
        // caller's sort scratch across every node of the tree.
        let parent_score = g_sum * g_sum / (h_sum + cfg.lambda);
        let mut best: Option<(f32, usize, f32)> = None; // (gain, feature, threshold)
        for f in 0..x.cols() {
            order.clear();
            order.extend_from_slice(idx);
            order.sort_unstable_by(|&a, &b| x.at(a, f).total_cmp(&x.at(b, f)));
            let mut gl = 0.0f32;
            let mut hl = 0.0f32;
            for w in 0..order.len() - 1 {
                let i = order[w];
                gl += grad[i];
                hl += hess[i];
                let v = x.at(i, f);
                let v_next = x.at(order[w + 1], f);
                if v == v_next {
                    continue; // no threshold separates equal values
                }
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                    continue;
                }
                let gain = gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) - parent_score;
                if gain > cfg.gamma && best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, f, 0.5 * (v + v_next)));
                }
            }
        }

        let Some((_, feature, threshold)) = best else {
            return make_leaf(&mut self.nodes, spans);
        };
        // Partition in place.
        let mid = partition(idx, |&i| x.at(i, feature) <= threshold);
        if mid == 0 || mid == idx.len() {
            return make_leaf(&mut self.nodes, spans);
        }
        let node_id = self.nodes.len();
        self.nodes.push(Node::Split {
            feature,
            threshold,
            left: usize::MAX,
            right: usize::MAX,
        });
        let (l_idx, r_idx) = idx.split_at_mut(mid);
        let left = self.build(x, grad, hess, l_idx, base, depth + 1, cfg, order, spans);
        let right = self.build(
            x,
            grad,
            hess,
            r_idx,
            base + mid,
            depth + 1,
            cfg,
            order,
            spans,
        );
        if let Node::Split {
            left: l, right: r, ..
        } = &mut self.nodes[node_id]
        {
            *l = left;
            *r = right;
        }
        node_id
    }

    /// Predict one sample.
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (splits + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Highest feature index any split reads, or `None` for a pure-leaf
    /// tree. `predict_row` indexes rows up to this, so a deserialized
    /// model can be validated against the expected feature width before
    /// it is ever asked to predict.
    pub fn max_feature(&self) -> Option<usize> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Split { feature, .. } => Some(*feature),
                Node::Leaf { .. } => None,
            })
            .max()
    }

    /// Depth of the deepest leaf.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }
}

/// Stable-enough in-place partition: returns the number of elements
/// satisfying the predicate, which are moved to the front.
fn partition<T, F: Fn(&T) -> bool>(slice: &mut [T], pred: F) -> usize {
    let mut store = 0;
    for i in 0..slice.len() {
        if pred(&slice[i]) {
            slice.swap(store, i);
            store += 1;
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy_step() -> (FeatureMatrix, Vec<f32>, Vec<f32>) {
        // y = step at x = 0.5: perfect single split.
        let xs: Vec<f32> = (0..20).map(|i| i as f32 / 19.0).collect();
        let y: Vec<f32> = xs
            .iter()
            .map(|&v| if v <= 0.5 { -1.0 } else { 1.0 })
            .collect();
        let x = FeatureMatrix::new(20, 1, xs);
        // For squared loss with pred = 0: g = -y, h = 1.
        let g: Vec<f32> = y.iter().map(|v| -v).collect();
        let h = vec![1.0; 20];
        (x, g, h)
    }

    #[test]
    fn single_split_recovers_step() {
        let (x, g, h) = xy_step();
        let idx: Vec<usize> = (0..20).collect();
        let cfg = TreeConfig {
            max_depth: 1,
            lambda: 0.0,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&x, &g, &h, &idx, &cfg);
        assert_eq!(tree.depth(), 1);
        assert!((tree.predict_row(&[0.2]) - (-1.0)).abs() < 0.2);
        assert!((tree.predict_row(&[0.9]) - 1.0).abs() < 0.2);
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let (x, g, h) = xy_step();
        let idx: Vec<usize> = (0..20).collect();
        let cfg = TreeConfig {
            max_depth: 0,
            lambda: 0.0,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&x, &g, &h, &idx, &cfg);
        assert_eq!(tree.node_count(), 1);
        // Leaf value = -sum(g)/sum(h) = mean(y) = 0 for the balanced step.
        assert!(tree.predict_row(&[0.3]).abs() < 1e-6);
    }

    #[test]
    fn min_child_weight_blocks_tiny_splits() {
        let (x, g, h) = xy_step();
        let idx: Vec<usize> = (0..20).collect();
        let cfg = TreeConfig {
            max_depth: 3,
            min_child_weight: 100.0, // impossible
            lambda: 0.0,
            gamma: 0.0,
        };
        let tree = RegressionTree::fit(&x, &g, &h, &idx, &cfg);
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn constant_features_produce_leaf() {
        let x = FeatureMatrix::new(5, 2, vec![1.0; 10]);
        let g = vec![1.0, -1.0, 1.0, -1.0, 1.0];
        let h = vec![1.0; 5];
        let idx: Vec<usize> = (0..5).collect();
        let tree = RegressionTree::fit(&x, &g, &h, &idx, &TreeConfig::default());
        assert_eq!(tree.node_count(), 1, "no threshold separates equal values");
    }

    #[test]
    fn deeper_trees_fit_conjunction() {
        // y = AND(x0, x1) needs depth 2 and is greedily learnable (unlike
        // XOR, whose first greedy split has zero gain).
        let x = FeatureMatrix::new(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let y = [-1.0f32, -1.0, -1.0, 1.0];
        let g: Vec<f32> = y.iter().map(|v| -v).collect();
        let h = vec![1.0; 4];
        let idx: Vec<usize> = (0..4).collect();
        let cfg = TreeConfig {
            max_depth: 2,
            min_child_weight: 0.5,
            lambda: 0.0,
            gamma: 0.0,
        };
        let tree = RegressionTree::fit(&x, &g, &h, &idx, &cfg);
        for (i, &target) in y.iter().enumerate() {
            assert!((tree.predict_row(x.row(i)) - target).abs() < 0.3, "row {i}");
        }
    }
}

//! Legacy single-threaded GBDT reference, preserved verbatim-in-spirit
//! from before the level-wise parallel engine landed.
//!
//! This module keeps the original algorithmic shape — per-cell
//! row-major binning, depth-first node recursion, one histogram rebuild
//! per (node, feature) pair with a full row scan each, per-row tree
//! traversal for prediction updates, and a round-major softmax
//! classifier — so the `gbdt_train` bench can
//! measure the engine's algorithmic speedup (sibling subtraction,
//! single-pass row-major accumulation, leaf-span updates) against a
//! faithful baseline, the same way the naive GEMM/conv loops serve as
//! the oracle for the blocked kernels. It is not wired into any
//! production path.

use crate::data::FeatureMatrix;
use crate::gbdt::binned::BinnedMatrix;
use crate::gbdt::subsample_indices;
use crate::gbdt::tree::TreeConfig;
use crate::gbdt::GbdtConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A binned regression tree grown depth-first, rebuilding every node's
/// per-feature histogram from its rows (no sibling subtraction, no
/// batching).
pub struct SerialBinnedTree {
    nodes: Vec<SerialNode>,
}

enum SerialNode {
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
    Leaf {
        value: f32,
    },
}

impl SerialBinnedTree {
    /// Fit on gradient/hessian targets over the given sample subset.
    pub fn fit(
        bm: &BinnedMatrix,
        grad: &[f32],
        hess: &[f32],
        indices: &[usize],
        cfg: &TreeConfig,
    ) -> SerialBinnedTree {
        assert_eq!(bm.rows(), grad.len());
        assert_eq!(grad.len(), hess.len());
        let mut tree = SerialBinnedTree { nodes: Vec::new() };
        let mut idx = indices.to_vec();
        let mut hist: Vec<(f32, f32)> = Vec::new();
        tree.build(bm, grad, hess, &mut idx, 0, cfg, &mut hist);
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        bm: &BinnedMatrix,
        grad: &[f32],
        hess: &[f32],
        idx: &mut [usize],
        depth: usize,
        cfg: &TreeConfig,
        hist: &mut Vec<(f32, f32)>,
    ) -> usize {
        let g_sum: f32 = idx.iter().map(|&i| grad[i]).sum();
        let h_sum: f32 = idx.iter().map(|&i| hess[i]).sum();
        let make_leaf = |nodes: &mut Vec<SerialNode>| {
            nodes.push(SerialNode::Leaf {
                value: -g_sum / (h_sum + cfg.lambda),
            });
            nodes.len() - 1
        };
        if depth >= cfg.max_depth || idx.len() < 2 {
            return make_leaf(&mut self.nodes);
        }

        let parent_score = g_sum * g_sum / (h_sum + cfg.lambda);
        let mut best: Option<(f32, usize, usize)> = None; // (gain, feature, bin)
        for f in 0..bm.cols() {
            let nb = bm.n_bins(f);
            if nb < 2 {
                continue;
            }
            hist.clear();
            hist.resize(nb, (0.0, 0.0));
            for &i in idx.iter() {
                let b = bm.bin(i, f);
                hist[b].0 += grad[i];
                hist[b].1 += hess[i];
            }
            let mut gl = 0.0f32;
            let mut hl = 0.0f32;
            for (b, &(g, h)) in hist.iter().enumerate().take(nb - 1) {
                gl += g;
                hl += h;
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                    continue;
                }
                let gain = gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) - parent_score;
                if gain > cfg.gamma && best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, f, b));
                }
            }
        }

        let Some((_, feature, bin)) = best else {
            return make_leaf(&mut self.nodes);
        };
        let mid = partition(idx, |&i| bm.bin(i, feature) <= bin);
        if mid == 0 || mid == idx.len() {
            return make_leaf(&mut self.nodes);
        }
        let node_id = self.nodes.len();
        self.nodes.push(SerialNode::Split {
            feature,
            threshold: bm.cut_value(feature, bin),
            left: usize::MAX,
            right: usize::MAX,
        });
        let (l_idx, r_idx) = idx.split_at_mut(mid);
        let left = self.build(bm, grad, hess, l_idx, depth + 1, cfg, hist);
        let right = self.build(bm, grad, hess, r_idx, depth + 1, cfg, hist);
        if let SerialNode::Split {
            left: l, right: r, ..
        } = &mut self.nodes[node_id]
        {
            *l = left;
            *r = right;
        }
        node_id
    }

    /// Predict one raw-feature sample.
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                SerialNode::Leaf { value } => return *value,
                SerialNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

fn partition<T, F: Fn(&T) -> bool>(slice: &mut [T], pred: F) -> usize {
    let mut store = 0;
    for i in 0..slice.len() {
        if pred(&slice[i]) {
            slice.swap(store, i);
            store += 1;
        }
    }
    store
}

/// The pre-engine regressor loop: one tree per round, predictions
/// refreshed by traversing the new tree for every training row.
pub struct SerialGbdtRegressor {
    base: f32,
    eta: f32,
    trees: Vec<SerialBinnedTree>,
}

impl SerialGbdtRegressor {
    /// Fit on a feature matrix and scalar targets (binned path only:
    /// `cfg.bins` must be 2..=255).
    pub fn fit(x: &FeatureMatrix, y: &[f32], cfg: &GbdtConfig) -> SerialGbdtRegressor {
        assert_eq!(x.rows(), y.len(), "sample/target mismatch");
        assert!(x.rows() > 0, "empty training set");
        assert!(cfg.bins >= 2, "serial reference is binned-only");
        let bm = BinnedMatrix::new_row_major(x, cfg.bins);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let base = y.iter().sum::<f32>() / y.len() as f32;
        let mut pred = vec![base; y.len()];
        let mut trees = Vec::with_capacity(cfg.rounds);
        let hess = vec![1.0f32; y.len()];
        for _ in 0..cfg.rounds {
            let grad: Vec<f32> = pred.iter().zip(y).map(|(p, t)| p - t).collect();
            let idx = subsample_indices(y.len(), cfg.subsample, &mut rng);
            let tree = SerialBinnedTree::fit(&bm, &grad, &hess, &idx, &cfg.tree);
            for (i, p) in pred.iter_mut().enumerate() {
                *p += cfg.eta * tree.predict_row(x.row(i));
            }
            trees.push(tree);
        }
        SerialGbdtRegressor {
            base,
            eta: cfg.eta,
            trees,
        }
    }

    /// Predict one sample.
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        self.base + self.eta * self.trees.iter().map(|t| t.predict_row(row)).sum::<f32>()
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

/// The pre-engine classifier loop: round-major softmax, one tree per
/// class per round, classes coupled through shared logits (so classes
/// cannot train concurrently).
pub struct SerialGbdtClassifier {
    classes: usize,
    eta: f32,
    /// `rounds × classes` trees.
    trees: Vec<Vec<SerialBinnedTree>>,
}

impl SerialGbdtClassifier {
    /// Fit on a feature matrix and integer class labels in `0..classes`
    /// (binned path only: `cfg.bins` must be 2..=255).
    pub fn fit(
        x: &FeatureMatrix,
        labels: &[usize],
        classes: usize,
        cfg: &GbdtConfig,
    ) -> SerialGbdtClassifier {
        assert_eq!(x.rows(), labels.len(), "sample/label mismatch");
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        assert!(cfg.bins >= 2, "serial reference is binned-only");
        let n = labels.len();
        let bm = BinnedMatrix::new_row_major(x, cfg.bins);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut logits = vec![0.0f32; n * classes];
        let mut rounds = Vec::with_capacity(cfg.rounds);
        let mut grad = vec![0.0f32; n];
        let mut hess = vec![0.0f32; n];
        let mut probs = vec![0.0f32; classes];
        for _ in 0..cfg.rounds {
            let idx = subsample_indices(n, cfg.subsample, &mut rng);
            let mut round_trees = Vec::with_capacity(classes);
            let mut all_probs = vec![0.0f32; n * classes];
            for i in 0..n {
                let row = &logits[i * classes..(i + 1) * classes];
                let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for (k, &v) in row.iter().enumerate() {
                    probs[k] = (v - max).exp();
                    sum += probs[k];
                }
                for (k, p) in probs.iter().enumerate() {
                    all_probs[i * classes + k] = p / sum;
                }
            }
            for k in 0..classes {
                for i in 0..n {
                    let p = all_probs[i * classes + k];
                    let y = if labels[i] == k { 1.0 } else { 0.0 };
                    grad[i] = p - y;
                    hess[i] = (p * (1.0 - p)).max(1e-6);
                }
                let tree = SerialBinnedTree::fit(&bm, &grad, &hess, &idx, &cfg.tree);
                for i in 0..n {
                    logits[i * classes + k] += cfg.eta * tree.predict_row(x.row(i));
                }
                round_trees.push(tree);
            }
            rounds.push(round_trees);
        }
        SerialGbdtClassifier {
            classes,
            eta: cfg.eta,
            trees: rounds,
        }
    }

    /// Predicted class for one sample.
    pub fn predict_row(&self, row: &[f32]) -> usize {
        let mut scores = vec![0.0f32; self.classes];
        for round in &self.trees {
            for (k, tree) in round.iter().enumerate() {
                scores[k] += self.eta * tree.predict_row(row);
            }
        }
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_regressor_learns_step() {
        let n = 120;
        let xs: Vec<f32> = (0..n).map(|i| i as f32 / (n - 1) as f32).collect();
        let y: Vec<f32> = xs
            .iter()
            .map(|&v| if v > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let x = FeatureMatrix::new(n, 1, xs);
        let cfg = GbdtConfig {
            rounds: 40,
            ..GbdtConfig::default()
        };
        let model = SerialGbdtRegressor::fit(&x, &y, &cfg);
        assert_eq!(model.tree_count(), 40);
        assert!(model.predict_row(&[0.9]) > 0.8);
        assert!(model.predict_row(&[0.1]) < 0.2);
    }

    #[test]
    fn serial_classifier_learns_halves() {
        let n = 100;
        let xs: Vec<f32> = (0..n).map(|i| i as f32 / (n - 1) as f32).collect();
        let labels: Vec<usize> = xs.iter().map(|&v| usize::from(v > 0.5)).collect();
        let x = FeatureMatrix::new(n, 1, xs);
        let cfg = GbdtConfig {
            rounds: 20,
            eta: 0.3,
            ..GbdtConfig::default()
        };
        let model = SerialGbdtClassifier::fit(&x, &labels, 2, &cfg);
        let acc = (0..n)
            .filter(|&i| model.predict_row(x.row(i)) == labels[i])
            .count() as f64
            / n as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }
}

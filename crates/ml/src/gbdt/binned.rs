//! Histogram-based split finding (XGBoost `hist`-style): features are
//! quantile-binned once, and each tree node scans per-bin gradient
//! histograms instead of re-sorting samples. This makes boosting on
//! tens-of-thousands-of-row datasets fast enough for the full pipeline.

use crate::data::FeatureMatrix;
use crate::gbdt::tree::TreeConfig;
use serde::{Deserialize, Serialize};

/// Maximum number of bins per feature (fits in `u8`).
pub const MAX_BINS: usize = 255;

/// A feature matrix quantile-binned per column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedMatrix {
    rows: usize,
    cols: usize,
    /// Bin index per (row, col), row-major.
    bins: Vec<u8>,
    /// Per column: upper edge value of each bin except the last
    /// (`cuts[c][b]` separates bin `b` from `b+1`).
    cuts: Vec<Vec<f32>>,
}

impl BinnedMatrix {
    /// Bin a matrix into at most `n_bins` quantile bins per column.
    pub fn new(x: &FeatureMatrix, n_bins: usize) -> BinnedMatrix {
        assert!((2..=MAX_BINS).contains(&n_bins), "n_bins must be 2..=255");
        let rows = x.rows();
        let cols = x.cols();
        let mut cuts = Vec::with_capacity(cols);
        let mut col_vals: Vec<f32> = Vec::with_capacity(rows);
        for c in 0..cols {
            col_vals.clear();
            col_vals.extend((0..rows).map(|r| x.at(r, c)));
            col_vals.sort_unstable_by(f32::total_cmp);
            col_vals.dedup();
            let distinct = col_vals.len();
            let mut col_cuts = Vec::new();
            if distinct > 1 {
                let buckets = distinct.min(n_bins);
                for b in 1..buckets {
                    let lo = col_vals[b * distinct / buckets - 1];
                    let hi = col_vals[(b * distinct / buckets).min(distinct - 1)];
                    let cut = 0.5 * (lo + hi);
                    if col_cuts.last() != Some(&cut) {
                        col_cuts.push(cut);
                    }
                }
            }
            cuts.push(col_cuts);
        }
        let mut bins = vec![0u8; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                let v = x.at(r, c);
                // partition_point: number of cuts <= v gives the bin.
                let b = cuts[c].partition_point(|&cut| cut < v);
                bins[r * cols + c] = b as u8;
            }
        }
        BinnedMatrix {
            rows,
            cols,
            bins,
            cuts,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bin of `(row, col)`.
    #[inline]
    pub fn bin(&self, r: usize, c: usize) -> usize {
        self.bins[r * self.cols + c] as usize
    }

    /// Number of bins in a column.
    pub fn n_bins(&self, c: usize) -> usize {
        self.cuts[c].len() + 1
    }

    /// The real-valued threshold separating bins `b` and `b+1` of column
    /// `c`.
    pub fn cut_value(&self, c: usize, b: usize) -> f32 {
        self.cuts[c][b]
    }
}

/// A regression tree fitted on binned features but predicting from raw
/// feature rows (thresholds are translated back to feature values).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedTree {
    nodes: Vec<BinnedNode>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum BinnedNode {
    Split {
        feature: usize,
        /// Raw-value threshold (go left if `value <= threshold`).
        threshold: f32,
        left: usize,
        right: usize,
    },
    Leaf {
        value: f32,
    },
}

impl BinnedTree {
    /// Fit on gradient/hessian targets over the given sample subset.
    pub fn fit(
        bm: &BinnedMatrix,
        grad: &[f32],
        hess: &[f32],
        indices: &[usize],
        cfg: &TreeConfig,
    ) -> BinnedTree {
        assert_eq!(bm.rows(), grad.len());
        assert_eq!(grad.len(), hess.len());
        let mut tree = BinnedTree { nodes: Vec::new() };
        let mut idx = indices.to_vec();
        let max_bins = (0..bm.cols()).map(|c| bm.n_bins(c)).max().unwrap_or(1);
        let mut hist = vec![(0.0f32, 0.0f32); max_bins];
        tree.build(bm, grad, hess, &mut idx, 0, cfg, &mut hist);
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        bm: &BinnedMatrix,
        grad: &[f32],
        hess: &[f32],
        idx: &mut [usize],
        depth: usize,
        cfg: &TreeConfig,
        hist: &mut [(f32, f32)],
    ) -> usize {
        let g_sum: f32 = idx.iter().map(|&i| grad[i]).sum();
        let h_sum: f32 = idx.iter().map(|&i| hess[i]).sum();
        let leaf_val = -g_sum / (h_sum + cfg.lambda);
        if depth >= cfg.max_depth || idx.len() < 2 {
            self.nodes.push(BinnedNode::Leaf { value: leaf_val });
            return self.nodes.len() - 1;
        }
        let parent_score = g_sum * g_sum / (h_sum + cfg.lambda);
        let mut best: Option<(f32, usize, usize)> = None; // (gain, feature, bin)
        for f in 0..bm.cols() {
            let nb = bm.n_bins(f);
            if nb < 2 {
                continue;
            }
            for h in hist[..nb].iter_mut() {
                *h = (0.0, 0.0);
            }
            for &i in idx.iter() {
                let b = bm.bin(i, f);
                hist[b].0 += grad[i];
                hist[b].1 += hess[i];
            }
            let mut gl = 0.0f32;
            let mut hl = 0.0f32;
            for (b, &(hg, hh)) in hist[..nb - 1].iter().enumerate() {
                gl += hg;
                hl += hh;
                let gr = g_sum - gl;
                let hr = h_sum - hl;
                if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                    continue;
                }
                let gain = gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) - parent_score;
                if gain > cfg.gamma && best.is_none_or(|(bg, _, _)| gain > bg) {
                    best = Some((gain, f, b));
                }
            }
        }
        let Some((_, feature, bin)) = best else {
            self.nodes.push(BinnedNode::Leaf { value: leaf_val });
            return self.nodes.len() - 1;
        };
        let mid = partition(idx, |&i| bm.bin(i, feature) <= bin);
        if mid == 0 || mid == idx.len() {
            self.nodes.push(BinnedNode::Leaf { value: leaf_val });
            return self.nodes.len() - 1;
        }
        let node_id = self.nodes.len();
        self.nodes.push(BinnedNode::Split {
            feature,
            threshold: bm.cut_value(feature, bin),
            left: usize::MAX,
            right: usize::MAX,
        });
        let (l_idx, r_idx) = idx.split_at_mut(mid);
        let left = self.build(bm, grad, hess, l_idx, depth + 1, cfg, hist);
        let right = self.build(bm, grad, hess, r_idx, depth + 1, cfg, hist);
        if let BinnedNode::Split {
            left: l, right: r, ..
        } = &mut self.nodes[node_id]
        {
            *l = left;
            *r = right;
        }
        node_id
    }

    /// Predict one raw-feature sample.
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                BinnedNode::Leaf { value } => return *value,
                BinnedNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

fn partition<T, F: Fn(&T) -> bool>(slice: &mut [T], pred: F) -> usize {
    let mut store = 0;
    for i in 0..slice.len() {
        if pred(&slice[i]) {
            slice.swap(store, i);
            store += 1;
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_respects_order() {
        let x = FeatureMatrix::new(6, 1, vec![0., 1., 2., 3., 4., 5.]);
        let bm = BinnedMatrix::new(&x, 4);
        assert_eq!(bm.rows(), 6);
        // Bins must be monotone in the raw value.
        for r in 0..5 {
            assert!(bm.bin(r, 0) <= bm.bin(r + 1, 0));
        }
        assert!(bm.n_bins(0) >= 2);
    }

    #[test]
    fn constant_column_gets_one_bin() {
        let x = FeatureMatrix::new(4, 2, vec![7., 1., 7., 2., 7., 3., 7., 4.]);
        let bm = BinnedMatrix::new(&x, 8);
        assert_eq!(bm.n_bins(0), 1);
        assert!(bm.n_bins(1) >= 2);
    }

    #[test]
    fn binned_tree_learns_step() {
        let n = 50;
        let xs: Vec<f32> = (0..n).map(|i| i as f32 / (n - 1) as f32).collect();
        let y: Vec<f32> = xs
            .iter()
            .map(|&v| if v <= 0.5 { -1.0 } else { 1.0 })
            .collect();
        let x = FeatureMatrix::new(n, 1, xs);
        let bm = BinnedMatrix::new(&x, 16);
        let g: Vec<f32> = y.iter().map(|v| -v).collect();
        let h = vec![1.0; n];
        let idx: Vec<usize> = (0..n).collect();
        let cfg = TreeConfig {
            max_depth: 2,
            lambda: 0.0,
            ..TreeConfig::default()
        };
        let tree = BinnedTree::fit(&bm, &g, &h, &idx, &cfg);
        assert!(tree.predict_row(&[0.1]) < -0.8);
        assert!(tree.predict_row(&[0.95]) > 0.8);
    }

    #[test]
    fn binned_matches_exact_on_coarse_data() {
        // With few distinct values, binned and exact trees should make the
        // same split decisions.
        use crate::gbdt::tree::RegressionTree;
        let x = FeatureMatrix::new(8, 1, vec![0., 0., 1., 1., 2., 2., 3., 3.]);
        let y = [-2.0f32, -2.0, -1.0, -1.0, 1.0, 1.0, 2.0, 2.0];
        let g: Vec<f32> = y.iter().map(|v| -v).collect();
        let h = vec![1.0; 8];
        let idx: Vec<usize> = (0..8).collect();
        let cfg = TreeConfig {
            max_depth: 2,
            lambda: 0.0,
            min_child_weight: 1.0,
            gamma: 0.0,
        };
        let bm = BinnedMatrix::new(&x, 16);
        let bt = BinnedTree::fit(&bm, &g, &h, &idx, &cfg);
        let et = RegressionTree::fit(&x, &g, &h, &idx, &cfg);
        for probe in [0.0f32, 0.9, 1.5, 2.5, 3.0] {
            assert!(
                (bt.predict_row(&[probe]) - et.predict_row(&[probe])).abs() < 1e-5,
                "probe {probe}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "n_bins")]
    fn rejects_bad_bin_count() {
        let x = FeatureMatrix::new(2, 1, vec![0., 1.]);
        BinnedMatrix::new(&x, 1);
    }
}

//! Histogram-based split finding (XGBoost `hist`-style): features are
//! quantile-binned once, and each tree node scans per-bin gradient
//! histograms instead of re-sorting samples.
//!
//! Trees grow **level-wise** through a deterministic parallel engine:
//!
//! * Node histograms are accumulated over *fixed-size row blocks*
//!   (`ROW_BLOCK`, independent of the worker count) and the per-block
//!   partials are reduced in block order, so every float sum has one
//!   canonical association and the fitted tree is bit-identical for any
//!   `STENCILMART_THREADS` setting — the same pattern as the profiler
//!   work queue.
//! * Only the **smaller child** of each split is accumulated from rows;
//!   the larger sibling is derived as `parent − sibling`, halving
//!   histogram work below the root.
//! * Split search scans per-feature bin histograms across workers and
//!   reduces `(gain, feature, bin)` with a deterministic tie-break
//!   (lowest feature index, then lowest bin, wins equal gains).

use crate::data::FeatureMatrix;
use crate::gbdt::tree::{LeafSpans, TreeConfig};
use crate::par::par_map_if;
use crate::simd::{self, SimdIsa};
use serde::{Deserialize, Serialize};
use stencilmart_obs::counters;

/// Maximum number of bins per feature in the resident
/// [`BinnedMatrix`] (codes fit in `u8`).
pub const MAX_BINS: usize = 255;

/// Maximum number of bins per feature any storage backend may carry:
/// the widest supported code word is `u16`, whose 65536 values cover
/// bin indices `0..=65535`. Out-of-core stores may go past [`MAX_BINS`]
/// up to this limit by widening their code words.
pub const MAX_BINS_U16: usize = 65536;

/// Bin-code storage word: `u8` for ≤256-bin stores, `u16` for stores up
/// to [`MAX_BINS_U16`] bins. The grower's inner loops are generic over
/// this, so both widths run the identical accumulation sequence (the
/// word width changes only how a code is loaded, never which cell it
/// addresses or in what order).
pub trait BinCode: Copy + Send + Sync + 'static {
    /// Widen to a histogram cell / bin index.
    fn idx(self) -> usize;
    /// Narrow from a bin count (callers guarantee it fits the width).
    fn from_count(v: u32) -> Self;
}

impl BinCode for u8 {
    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
    #[inline(always)]
    fn from_count(v: u32) -> Self {
        v as u8
    }
}

impl BinCode for u16 {
    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
    #[inline(always)]
    fn from_count(v: u32) -> Self {
        v as u16
    }
}

/// Fixed row-block size for parallel histogram accumulation. This is a
/// property of the *algorithm*, not of the machine: block boundaries
/// (and therefore float reduction order) never depend on the worker
/// count, which is what keeps parallel fits bit-identical to serial.
const ROW_BLOCK: usize = 512;

/// Cap on partial-histogram blocks per node, bounding scratch memory
/// for very large nodes (the block size grows instead).
const MAX_BLOCKS_PER_NODE: usize = 8;

/// Minimum total cell updates (rows × cols) before a histogram batch
/// spawns workers; below this, thread-spawn overhead beats the row
/// work. Purely a scheduling threshold — it depends only on the batch
/// shape, never on the worker count, and both arms are bit-identical.
const PAR_HIST_MIN_WORK: usize = 1 << 15;

/// Minimum histogram cells scanned before split search spawns workers
/// (per-feature scans are tiny, so this only trips on wide levels).
const PAR_SPLIT_MIN_CELLS: usize = 1 << 17;

/// Storage abstraction the level-wise grower traverses: bin codes may
/// live in one resident row-major buffer ([`BinnedMatrix`]) or be
/// resolved shard-by-shard from disk
/// ([`crate::gbdt::stream::ShardedBins`]). Every method that touches
/// rows receives them in **ascending** order (the grower sorts its
/// subsample and stable partitions preserve order), and implementations
/// must perform the identical sequence of reads and float additions for
/// the same rows — that is what keeps streamed fits bit-identical to
/// in-RAM fits.
pub(crate) trait BinLike: Sync {
    /// Number of rows.
    fn rows(&self) -> usize;
    /// Number of columns.
    fn cols(&self) -> usize;
    /// Number of bins in a column.
    fn n_bins(&self, c: usize) -> usize;
    /// The real-valued threshold separating bins `b` and `b+1` of
    /// column `c`.
    fn cut_value(&self, c: usize, b: usize) -> f32;
    /// Accumulate `(grad, hess)` of the given ascending rows into
    /// `hist` cells, one per `(feature, bin)`.
    fn accumulate(
        &self,
        hist: &mut [Cell],
        grad: &[f32],
        hess: &[f32],
        rows: &[usize],
        layout: &HistLayout,
        isa: SimdIsa,
    );
    /// Write the bin code of `feature` for each of the ascending `rows`
    /// into `out` (cleared first), aligned with `rows`. Codes are
    /// widened to `u16` so one signature serves every storage width.
    fn feature_bins(&self, rows: &[usize], feature: usize, out: &mut Vec<u16>);

    /// Resolve bin codes for many `(start, end, feature)` requests over
    /// disjoint ascending ranges of `idx` in one batch, filling
    /// `out[k]` for request `k`. The writes are positional (no float
    /// arithmetic), so implementations may serve requests in any order;
    /// sharded backends use that freedom to resolve each backing shard
    /// once per batch instead of once per request.
    fn feature_bins_many(
        &self,
        idx: &[usize],
        reqs: &[(usize, usize, usize)],
        out: &mut [Vec<u16>],
    ) {
        for (&(start, end, feature), buf) in reqs.iter().zip(out.iter_mut()) {
            self.feature_bins(&idx[start..end], feature, buf);
        }
    }

    /// Accumulate one partial histogram per task — `tasks[t]` is a
    /// `(spec, start, end)` row-block of `idx` — returning the partials
    /// aligned with `tasks`. Every partial must receive exactly the
    /// additions of its ascending rows, in row order, starting from a
    /// zeroed buffer: that contract (not the execution schedule) is
    /// what keeps fits bit-identical across backends, worker counts,
    /// and cache sizes. The default maps over tasks; sharded backends
    /// override it with shard-major scheduling so each backing shard is
    /// resolved once per call.
    #[allow(clippy::too_many_arguments)]
    fn build_partials(
        &self,
        par: bool,
        grad: &[f32],
        hess: &[f32],
        idx: &[usize],
        tasks: &[(usize, usize, usize)],
        layout: &HistLayout,
        isa: SimdIsa,
    ) -> Vec<Vec<Cell>> {
        par_map_if(par, tasks, |&(_, lo, hi)| {
            let mut hist = vec![Cell::default(); layout.total];
            self.accumulate(&mut hist, grad, hess, &idx[lo..hi], layout, isa);
            hist
        })
    }
}

/// A feature matrix quantile-binned per column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedMatrix {
    rows: usize,
    cols: usize,
    /// Bin index per (row, col), row-major.
    bins: Vec<u8>,
    /// Per column: upper edge value of each bin except the last
    /// (`cuts[c][b]` separates bin `b` from `b+1`).
    cuts: Vec<Vec<f32>>,
}

impl BinnedMatrix {
    /// Bin a matrix into at most `n_bins` quantile bins per column.
    ///
    /// Binning runs column by column: each column's raw values are read
    /// once into a scratch buffer, the quantile cuts are derived from a
    /// sorted copy, and the bin indices are written straight into the
    /// row-major `bins` buffer — no per-cell column switching, so the
    /// cut vector under search stays in cache for the whole column.
    pub fn new(x: &FeatureMatrix, n_bins: usize) -> BinnedMatrix {
        assert!((2..=MAX_BINS).contains(&n_bins), "n_bins must be 2..=255");
        let rows = x.rows();
        let cols = x.cols();
        let mut cuts = Vec::with_capacity(cols);
        let mut bins = vec![0u8; rows * cols];
        let mut raw: Vec<f32> = Vec::with_capacity(rows);
        let mut col_vals: Vec<f32> = Vec::with_capacity(rows);
        let mut keys: Vec<u32> = Vec::with_capacity(rows);
        let mut key_tmp: Vec<u32> = Vec::with_capacity(rows);
        let mut pad: Vec<f32> = Vec::new();
        let isa = simd::dispatch();
        for c in 0..cols {
            raw.clear();
            raw.extend((0..rows).map(|r| x.at(r, c)));
            col_vals.clear();
            col_vals.extend_from_slice(&raw);
            let col_cuts = column_quantile_cuts(&mut col_vals, n_bins, &mut keys, &mut key_tmp);
            fill_column_bins(&raw, &col_cuts, c, cols, &mut bins, isa, &mut pad);
            cuts.push(col_cuts);
        }
        BinnedMatrix {
            rows,
            cols,
            bins,
            cuts,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bin of `(row, col)`.
    #[inline]
    pub fn bin(&self, r: usize, c: usize) -> usize {
        self.bins[r * self.cols + c] as usize
    }

    /// All column bins of one row (contiguous `u8` slice).
    #[inline]
    pub fn bin_row(&self, r: usize) -> &[u8] {
        &self.bins[r * self.cols..(r + 1) * self.cols]
    }

    /// Number of bins in a column.
    pub fn n_bins(&self, c: usize) -> usize {
        self.cuts[c].len() + 1
    }

    /// The real-valued threshold separating bins `b` and `b+1` of column
    /// `c`.
    pub fn cut_value(&self, c: usize, b: usize) -> f32 {
        self.cuts[c][b]
    }

    /// The pre-engine binning pass: identical cuts and bin assignments to
    /// [`BinnedMatrix::new`], but binning per cell in row-major order so
    /// every cell switches to a different column's cut vector (and the
    /// column sort pays full comparison cost). Kept for the
    /// `serial_ref` baseline so the training benchmark compares whole
    /// legacy pipelines, not just tree growth.
    pub(crate) fn new_row_major(x: &FeatureMatrix, n_bins: usize) -> BinnedMatrix {
        assert!((2..=MAX_BINS).contains(&n_bins), "n_bins must be 2..=255");
        let rows = x.rows();
        let cols = x.cols();
        let mut cuts = Vec::with_capacity(cols);
        for c in 0..cols {
            let mut col_vals: Vec<f32> = (0..rows).map(|r| x.at(r, c)).collect();
            col_vals.sort_unstable_by(f32::total_cmp);
            col_vals.dedup();
            let distinct = col_vals.len();
            let mut col_cuts = Vec::new();
            if distinct > 1 {
                let buckets = distinct.min(n_bins);
                for b in 1..buckets {
                    let lo = col_vals[b * distinct / buckets - 1];
                    let hi = col_vals[(b * distinct / buckets).min(distinct - 1)];
                    let cut = 0.5 * (lo + hi);
                    if col_cuts.last() != Some(&cut) {
                        col_cuts.push(cut);
                    }
                }
            }
            cuts.push(col_cuts);
        }
        let mut bins = vec![0u8; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                let v = x.at(r, c);
                let b = cuts[c].partition_point(|&cut| cut < v);
                bins[r * cols + c] = b as u8;
            }
        }
        BinnedMatrix {
            rows,
            cols,
            bins,
            cuts,
        }
    }
}

impl BinLike for BinnedMatrix {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn n_bins(&self, c: usize) -> usize {
        self.cuts[c].len() + 1
    }

    fn cut_value(&self, c: usize, b: usize) -> f32 {
        self.cuts[c][b]
    }

    fn accumulate(
        &self,
        hist: &mut [Cell],
        grad: &[f32],
        hess: &[f32],
        rows: &[usize],
        layout: &HistLayout,
        isa: SimdIsa,
    ) {
        accumulate_codes(
            hist, &self.bins, 0, self.cols, grad, hess, rows, layout, isa,
        );
    }

    fn feature_bins(&self, rows: &[usize], feature: usize, out: &mut Vec<u16>) {
        out.clear();
        out.extend(
            rows.iter()
                .map(|&i| u16::from(self.bins[i * self.cols + feature])),
        );
    }
}

/// Derive the quantile cut vector for one column from its raw values —
/// exactly the cuts [`BinnedMatrix::new`] derives, factored out so the
/// out-of-core dataset writer bins shards against bit-identical cuts.
/// `values` is sorted (IEEE total order) and deduplicated in place;
/// `keys`/`key_tmp` are reusable radix scratch.
pub fn column_quantile_cuts(
    values: &mut Vec<f32>,
    n_bins: usize,
    keys: &mut Vec<u32>,
    key_tmp: &mut Vec<u32>,
) -> Vec<f32> {
    assert!(
        (2..=MAX_BINS_U16).contains(&n_bins),
        "n_bins must be 2..=65536"
    );
    radix_sort_total(values, keys, key_tmp);
    values.dedup();
    let distinct = values.len();
    let mut col_cuts = Vec::new();
    if distinct > 1 {
        let buckets = distinct.min(n_bins);
        for b in 1..buckets {
            let lo = values[b * distinct / buckets - 1];
            let hi = values[(b * distinct / buckets).min(distinct - 1)];
            let cut = 0.5 * (lo + hi);
            if col_cuts.last() != Some(&cut) {
                col_cuts.push(cut);
            }
        }
    }
    col_cuts
}

/// Write the bin code (`#cuts < v`, what `partition_point` computes) of
/// every value in `raw` into `out[start + r * stride]` — the public
/// strided entry the out-of-core writer uses to bin one column of a
/// shard against global cuts (`stride == 1` for a contiguous columnar
/// buffer). Runtime-dispatches the same AVX2 path as
/// [`BinnedMatrix::new`]; both paths produce identical integer counts.
/// `pad_scratch` is a reusable buffer for the SIMD cut padding.
pub fn bin_column_into(
    raw: &[f32],
    cuts: &[f32],
    start: usize,
    stride: usize,
    out: &mut [u8],
    pad_scratch: &mut Vec<f32>,
) {
    fill_column_bins(raw, cuts, start, stride, out, simd::dispatch(), pad_scratch);
}

/// [`bin_column_into`] for `u16` code words — the same cuts, the same
/// branchless count, written into a wide code buffer. Out-of-core
/// stores built with more than 256 bins use this variant (a bin index
/// past 255 cannot fit a `u8`).
pub fn bin_column_into_u16(
    raw: &[f32],
    cuts: &[f32],
    start: usize,
    stride: usize,
    out: &mut [u16],
    pad_scratch: &mut Vec<f32>,
) {
    fill_column_bins(raw, cuts, start, stride, out, simd::dispatch(), pad_scratch);
}

/// Sort `vals` ascending by IEEE total order via a 4-pass LSD radix sort
/// on monotone-mapped `u32` keys. Produces the exact sequence
/// `sort_unstable_by(f32::total_cmp)` would (values comparing equal
/// under total order are bit-identical, so stability is moot) at a
/// fraction of the comparison cost on the tens-of-thousands-row columns
/// binning sees.
fn radix_sort_total(vals: &mut Vec<f32>, keys: &mut Vec<u32>, tmp: &mut Vec<u32>) {
    // Monotone bijection onto u32: flip all bits of negatives, set the
    // sign bit of non-negatives.
    keys.clear();
    keys.extend(vals.iter().map(|v| {
        let b = v.to_bits();
        if b & 0x8000_0000 != 0 {
            !b
        } else {
            b | 0x8000_0000
        }
    }));
    tmp.clear();
    tmp.resize(keys.len(), 0);
    for shift in [0u32, 8, 16, 24] {
        let mut counts = [0usize; 256];
        for &k in keys.iter() {
            counts[((k >> shift) & 0xFF) as usize] += 1;
        }
        // Skip passes where every key shares this byte.
        if counts.contains(&keys.len()) {
            continue;
        }
        let mut pos = [0usize; 256];
        let mut acc = 0usize;
        for (p, &c) in pos.iter_mut().zip(&counts) {
            *p = acc;
            acc += c;
        }
        for &k in keys.iter() {
            let d = ((k >> shift) & 0xFF) as usize;
            tmp[pos[d]] = k;
            pos[d] += 1;
        }
        std::mem::swap(keys, tmp);
    }
    vals.clear();
    vals.extend(keys.iter().map(|&k| {
        f32::from_bits(if k & 0x8000_0000 != 0 {
            k & 0x7FFF_FFFF
        } else {
            !k
        })
    }));
}

/// Write the bin index of every value in `raw` into
/// `bins[start + r * stride]`: `bin = #cuts < v` (what `partition_point`
/// computes over the sorted cut vector). The AVX2 path counts the same
/// predicate branchlessly — compare eight cuts at a time against the
/// broadcast value and popcount the sign mask — with the cut vector
/// padded to a lane multiple with `+inf`, which can never satisfy
/// `cut < v`. Both paths produce an integer count, so the binning is
/// exactly identical across dispatch tiers. `pad` is caller scratch for
/// the SIMD padding, reused across columns instead of reallocated per
/// column.
fn fill_column_bins<C: BinCode>(
    raw: &[f32],
    col_cuts: &[f32],
    start: usize,
    stride: usize,
    bins: &mut [C],
    isa: SimdIsa,
    pad: &mut Vec<f32>,
) {
    #[cfg(target_arch = "x86_64")]
    if isa >= SimdIsa::Avx2 && !col_cuts.is_empty() {
        pad.clear();
        pad.extend_from_slice(col_cuts);
        pad.resize(col_cuts.len().div_ceil(8) * 8, f32::INFINITY);
        // SAFETY: AVX2 was runtime-detected (isa ≥ Avx2); `pad` is a
        // non-empty multiple of 8 lanes and `bins` covers
        // `start + (raw.len() - 1) * stride`.
        unsafe { x86::fill_bins_avx2(raw, pad, start, stride, bins) };
        return;
    }
    let _ = (isa, pad);
    for (r, &v) in raw.iter().enumerate() {
        // partition_point: number of cuts < v gives the bin.
        bins[start + r * stride] = C::from_count(col_cuts.partition_point(|&cut| cut < v) as u32);
    }
}

/// One (grad, hess) histogram cell. Row counts are not stored: every
/// count the grower needs falls out of the in-place partitions, and an
/// 8-byte cell keeps the zero/reduce/subtract/scan passes — the fixed
/// per-node cost of the hist method — at two thirds of the traffic a
/// counted cell would pay.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Cell {
    pub(crate) g: f32,
    pub(crate) h: f32,
}

/// Flat per-node histogram layout: feature `f`'s bins live at
/// `offsets[f] .. offsets[f] + n_bins(f)`.
pub(crate) struct HistLayout {
    pub(crate) offsets: Vec<usize>,
    pub(crate) total: usize,
    /// Bin count of feature 0 (0 when there are no features): node
    /// gradient/hessian totals are read back from feature 0's bins,
    /// since every row lands in exactly one bin per feature.
    pub(crate) first_bins: usize,
}

impl HistLayout {
    pub(crate) fn new<B: BinLike + ?Sized>(bm: &B) -> HistLayout {
        let mut offsets = Vec::with_capacity(bm.cols());
        let mut total = 0;
        for c in 0..bm.cols() {
            offsets.push(total);
            total += bm.n_bins(c);
        }
        HistLayout {
            offsets,
            total,
            first_bins: if bm.cols() > 0 { bm.n_bins(0) } else { 0 },
        }
    }
}

/// A frontier node during level-wise growth.
struct LevelNode {
    id: usize,
    start: usize,
    end: usize,
    hist: Vec<Cell>,
    g_sum: f32,
    h_sum: f32,
}

/// A split committed at the current level, waiting for its children's
/// histograms (smaller child accumulated, larger derived).
struct PendingSplit {
    parent_hist: Vec<Cell>,
    left: (usize, usize, usize),  // (start, end, node id)
    right: (usize, usize, usize), // (start, end, node id)
    build_left: bool,
}

/// A regression tree fitted on binned features but predicting from raw
/// feature rows (thresholds are translated back to feature values).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedTree {
    nodes: Vec<BinnedNode>,
}

/// One node of a [`BinnedTree`], exposed crate-internally so the
/// streaming pipeline can traverse trees in bin space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum BinnedNode {
    /// Internal split on a raw feature value.
    Split {
        /// Feature index the split reads.
        feature: usize,
        /// Raw-value threshold (go left if `value <= threshold`).
        threshold: f32,
        /// Left child node index.
        left: usize,
        /// Right child node index.
        right: usize,
    },
    /// Terminal node.
    Leaf {
        /// Prediction contribution of the leaf.
        value: f32,
    },
}

impl BinnedTree {
    /// Fit on gradient/hessian targets over the given sample subset.
    pub fn fit(
        bm: &BinnedMatrix,
        grad: &[f32],
        hess: &[f32],
        indices: &[usize],
        cfg: &TreeConfig,
    ) -> BinnedTree {
        Self::fit_tracked(bm, grad, hess, indices, cfg, crate::par::worker_count() > 1).0
    }

    /// Fit and also report, for every fitted row, which leaf it ended in
    /// (as contiguous spans over the final row permutation) so boosting
    /// loops can update predictions without re-traversing the tree.
    ///
    /// `par` selects parallel execution of the histogram and split-search
    /// passes; the result is bit-identical either way because block
    /// boundaries and reduction order are fixed by the algorithm.
    pub(crate) fn fit_tracked<B: BinLike + ?Sized>(
        bm: &B,
        grad: &[f32],
        hess: &[f32],
        indices: &[usize],
        cfg: &TreeConfig,
        par: bool,
    ) -> (BinnedTree, LeafSpans) {
        assert_eq!(bm.rows(), grad.len());
        assert_eq!(grad.len(), hess.len());
        counters::TREES_FITTED.inc();
        let layout = HistLayout::new(bm);
        let mut idx = indices.to_vec();
        // Subsamples arrive shuffled; sorting makes the accumulation
        // passes walk `bin_row` in storage order (sequential, prefetch-
        // friendly) instead of jumping a cache line per row. The row
        // *set* is unchanged and the order is fixed by the data alone,
        // so results stay deterministic for any worker count.
        idx.sort_unstable();
        let mut part_scratch: Vec<usize> = Vec::with_capacity(idx.len());
        let mut nodes = vec![BinnedNode::Leaf { value: 0.0 }];
        let mut spans: Vec<(usize, usize, f32)> = Vec::new();

        let root_hist = build_histograms(par, bm, grad, hess, &idx, &[(0, idx.len())], &layout)
            .pop()
            .expect("root histogram");
        let (g0, h0) = node_sums(&root_hist, &layout, grad, hess, &idx);
        let mut frontier = vec![LevelNode {
            id: 0,
            start: 0,
            end: idx.len(),
            hist: root_hist,
            g_sum: g0,
            h_sum: h0,
        }];

        let mut depth = 0;
        while !frontier.is_empty() {
            if depth >= cfg.max_depth {
                for node in frontier.drain(..) {
                    finalize_leaf(&mut nodes, &mut spans, &node, cfg);
                }
                break;
            }
            let best = level_split_search(par, &frontier, bm, &layout, cfg);
            // Children committed at the last level become leaves without
            // ever being split-searched, so they only need gradient and
            // hessian totals — skip their histogram build + subtraction
            // (the deepest level is the widest, so this drops a large
            // share of all histogram work per tree).
            let children_are_leaves = depth + 1 >= cfg.max_depth;

            // Resolve every splitting node's split-feature bin codes in
            // one batch *before* any partition mutates `idx`: frontier
            // segments are disjoint, so the reads commute, and a sharded
            // backend serves the whole level with one sweep over its
            // shards instead of one load cycle per node.
            let reqs: Vec<(usize, usize, usize)> = frontier
                .iter()
                .zip(&best)
                .filter_map(|(node, b)| b.map(|(feature, _)| (node.start, node.end, feature)))
                .collect();
            let mut bin_bufs: Vec<Vec<u16>> = vec![Vec::new(); reqs.len()];
            bm.feature_bins_many(&idx, &reqs, &mut bin_bufs);
            let mut bin_bufs = bin_bufs.into_iter();

            // Commit splits in frontier order: partition rows, allocate
            // child ids, and queue the smaller child for accumulation.
            let mut pending: Vec<PendingSplit> = Vec::new();
            for (node, best) in frontier.drain(..).zip(best) {
                let Some((feature, bin)) = best else {
                    finalize_leaf(&mut nodes, &mut spans, &node, cfg);
                    continue;
                };
                let bin_buf = bin_bufs.next().expect("one resolved buffer per split");
                let seg = &mut idx[node.start..node.end];
                let mid = stable_partition_by_bins(seg, &mut part_scratch, &bin_buf, bin as u16);
                if mid == 0 || mid == seg.len() {
                    finalize_leaf(&mut nodes, &mut spans, &node, cfg);
                    continue;
                }
                let (left_id, right_id) = (nodes.len(), nodes.len() + 1);
                nodes.push(BinnedNode::Leaf { value: 0.0 });
                nodes.push(BinnedNode::Leaf { value: 0.0 });
                nodes[node.id] = BinnedNode::Split {
                    feature,
                    threshold: bm.cut_value(feature, bin),
                    left: left_id,
                    right: right_id,
                };
                let left = (node.start, node.start + mid, left_id);
                let right = (node.start + mid, node.end, right_id);
                if children_are_leaves {
                    // Direct serial row sums: a fixed scan order that is
                    // identical for any worker count.
                    let sums = |s: usize, e: usize| {
                        let mut g = 0.0f32;
                        let mut h = 0.0f32;
                        for &i in &idx[s..e] {
                            g += grad[i];
                            h += hess[i];
                        }
                        (g, h)
                    };
                    for (s, e, id) in [left, right] {
                        let (g, h) = sums(s, e);
                        let value = -g / (h + cfg.lambda);
                        nodes[id] = BinnedNode::Leaf { value };
                        spans.push((s, e, value));
                    }
                    continue;
                }
                pending.push(PendingSplit {
                    parent_hist: node.hist,
                    left,
                    right,
                    build_left: mid <= (node.end - node.start) - mid,
                });
            }

            // One batched parallel pass accumulates every smaller child.
            let specs: Vec<(usize, usize)> = pending
                .iter()
                .map(|p| {
                    let (s, e, _) = if p.build_left { p.left } else { p.right };
                    (s, e)
                })
                .collect();
            let built = build_histograms(par, bm, grad, hess, &idx, &specs, &layout);

            // Derive the larger sibling as parent − built and refill the
            // frontier (left child first, preserving a canonical order).
            for (p, built_hist) in pending.into_iter().zip(built) {
                let mut derived_hist = p.parent_hist;
                for (d, b) in derived_hist.iter_mut().zip(&built_hist) {
                    d.g -= b.g;
                    d.h -= b.h;
                }
                counters::HIST_SUBTRACTIONS.inc();
                let (built_node, derived_node) = if p.build_left {
                    (p.left, p.right)
                } else {
                    (p.right, p.left)
                };
                let push = |(s, e, id): (usize, usize, usize), hist: Vec<Cell>| {
                    let (g, h) = node_sums(&hist, &layout, grad, hess, &idx[s..e]);
                    LevelNode {
                        id,
                        start: s,
                        end: e,
                        hist,
                        g_sum: g,
                        h_sum: h,
                    }
                };
                let built_level = push(built_node, built_hist);
                let derived_level = push(derived_node, derived_hist);
                if p.build_left {
                    frontier.push(built_level);
                    frontier.push(derived_level);
                } else {
                    frontier.push(derived_level);
                    frontier.push(built_level);
                }
            }
            depth += 1;
        }

        (BinnedTree { nodes }, LeafSpans { rows: idx, spans })
    }

    /// Predict one raw-feature sample.
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                BinnedNode::Leaf { value } => return *value,
                BinnedNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node array (crate-internal: bin-space traversal).
    pub(crate) fn nodes(&self) -> &[BinnedNode] {
        &self.nodes
    }

    /// Highest feature index any split reads, or `None` for a pure-leaf
    /// tree (see [`crate::gbdt::tree::RegressionTree::max_feature`]).
    pub fn max_feature(&self) -> Option<usize> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                BinnedNode::Split { feature, .. } => Some(*feature),
                BinnedNode::Leaf { .. } => None,
            })
            .max()
    }
}

/// Turn a frontier node into a leaf, recording its row span.
fn finalize_leaf(
    nodes: &mut [BinnedNode],
    spans: &mut Vec<(usize, usize, f32)>,
    node: &LevelNode,
    cfg: &TreeConfig,
) {
    let value = -node.g_sum / (node.h_sum + cfg.lambda);
    nodes[node.id] = BinnedNode::Leaf { value };
    spans.push((node.start, node.end, value));
}

/// Node gradient/hessian totals, read back from feature 0's bins (every
/// row lands in exactly one bin per feature) or summed directly when the
/// matrix has no columns. Deterministic: bin contents have a canonical
/// reduction order and the bin scan order is fixed.
fn node_sums(
    hist: &[Cell],
    layout: &HistLayout,
    grad: &[f32],
    hess: &[f32],
    rows: &[usize],
) -> (f32, f32) {
    if layout.first_bins > 0 {
        let mut g = 0.0f32;
        let mut h = 0.0f32;
        for c in &hist[..layout.first_bins] {
            g += c.g;
            h += c.h;
        }
        (g, h)
    } else {
        let mut g = 0.0f32;
        let mut h = 0.0f32;
        for &i in rows {
            g += grad[i];
            h += hess[i];
        }
        (g, h)
    }
}

/// Accumulate `(grad, hess)` of the given rows into `hist` (one cell
/// per `(feature, bin)`): the inner loop of the hist method. `codes` is
/// a row-major bin-code buffer whose row 0 corresponds to global row
/// `row_base` — the whole matrix for [`BinnedMatrix`] (`row_base == 0`),
/// or one resident shard for the streaming store. Vector tiers use the
/// paired SSE2 cell update; the scalar path is the oracle. Updates hit
/// each cell in row order either way, so the two are bit-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn accumulate_codes<C: BinCode>(
    hist: &mut [Cell],
    codes: &[C],
    row_base: usize,
    cols: usize,
    grad: &[f32],
    hess: &[f32],
    rows: &[usize],
    layout: &HistLayout,
    isa: SimdIsa,
) {
    #[cfg(target_arch = "x86_64")]
    if isa > SimdIsa::Scalar {
        // SAFETY: SSE2 is part of the x86_64 baseline; `hist` covers
        // `layout.total` cells and every `offsets[f] + bin` stays below
        // it by construction of the layout.
        unsafe {
            x86::accumulate_codes_sse2(hist, codes, row_base, cols, grad, hess, rows, layout)
        };
        return;
    }
    let _ = isa;
    for &i in rows {
        let (g, h) = (grad[i], hess[i]);
        let base = (i - row_base) * cols;
        for (&off, &b) in layout.offsets.iter().zip(&codes[base..base + cols]) {
            let cell = &mut hist[off + b.idx()];
            cell.g += g;
            cell.h += h;
        }
    }
}

/// Explicit `core::arch` inner loops, selected by [`simd::dispatch`]
/// (see DESIGN.md §14 for why these stay bit-identical to the scalar
/// oracles).
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{BinCode, Cell, HistLayout};
    use core::arch::x86_64::*;

    /// Branchless bin search: `count = #cuts < v` via eight-wide
    /// compare + sign-mask popcount.
    ///
    /// # Safety
    /// Caller must have runtime-verified AVX2; `padded_cuts` must be a
    /// non-empty multiple of 8 lanes; `bins` must cover
    /// `start + (raw.len() - 1) * stride`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn fill_bins_avx2<C: BinCode>(
        raw: &[f32],
        padded_cuts: &[f32],
        start: usize,
        stride: usize,
        bins: &mut [C],
    ) {
        debug_assert_eq!(padded_cuts.len() % 8, 0);
        for (r, &v) in raw.iter().enumerate() {
            let vv = _mm256_set1_ps(v);
            let mut count = 0u32;
            let mut i = 0;
            while i < padded_cuts.len() {
                let cuts = _mm256_loadu_ps(padded_cuts.as_ptr().add(i));
                let lt = _mm256_cmp_ps::<_CMP_LT_OQ>(cuts, vv);
                count += (_mm256_movemask_ps(lt) as u32).count_ones();
                i += 8;
            }
            *bins.get_unchecked_mut(start + r * stride) = C::from_count(count);
        }
    }

    /// Paired `(g, h)` cell update: one 8-byte load, one lane-wise
    /// `addps`, one 8-byte store per `(feature, bin)` cell — half the
    /// memory operations of the two scalar `f32` adds, with the
    /// identical IEEE additions in the two live lanes.
    ///
    /// # Safety
    /// `hist` must cover `layout.total` cells, with every
    /// `offsets[f] + bin` in bounds (guaranteed by the layout/binning
    /// invariants); `codes` must cover `cols` bin codes for every row
    /// in `rows` relative to `row_base`; SSE2 is unconditionally
    /// available on x86_64.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn accumulate_codes_sse2<C: BinCode>(
        hist: &mut [Cell],
        codes: &[C],
        row_base: usize,
        cols: usize,
        grad: &[f32],
        hess: &[f32],
        rows: &[usize],
        layout: &HistLayout,
    ) {
        debug_assert!(hist.len() >= layout.total);
        let base = hist.as_mut_ptr();
        for &i in rows {
            let gh = _mm_set_ps(0.0, 0.0, hess[i], grad[i]);
            let row = &codes[(i - row_base) * cols..(i - row_base) * cols + cols];
            for (&off, &b) in layout.offsets.iter().zip(row) {
                let cell = base.add(off + b.idx()) as *mut __m128i;
                let cur = _mm_loadl_epi64(cell);
                let sum = _mm_add_ps(_mm_castsi128_ps(cur), gh);
                _mm_storel_epi64(cell, _mm_castps_si128(sum));
            }
        }
    }
}

/// Accumulate one histogram per spec (a `start..end` range of `idx`) in
/// a single batched pass: fixed-size row blocks are accumulated (in
/// parallel when `par`), then reduced per spec in block order.
fn build_histograms<B: BinLike + ?Sized>(
    par: bool,
    bm: &B,
    grad: &[f32],
    hess: &[f32],
    idx: &[usize],
    specs: &[(usize, usize)],
    layout: &HistLayout,
) -> Vec<Vec<Cell>> {
    // (spec, block start, block end); block boundaries depend only on
    // the node's row count, never on the worker count.
    let mut tasks: Vec<(usize, usize, usize)> = Vec::new();
    for (s, &(lo, hi)) in specs.iter().enumerate() {
        let len = hi - lo;
        if len == 0 {
            tasks.push((s, lo, hi));
            continue;
        }
        let block = ROW_BLOCK.max(len.div_ceil(MAX_BLOCKS_PER_NODE));
        let mut b = lo;
        while b < hi {
            let e = (b + block).min(hi);
            tasks.push((s, b, e));
            b = e;
        }
    }
    let work: usize = specs.iter().map(|&(lo, hi)| hi - lo).sum::<usize>() * bm.cols();
    let par = par && work >= PAR_HIST_MIN_WORK;
    // One tier decision per batch, shared by every worker: a batch
    // never mixes accumulation paths (they are bit-identical anyway —
    // the SSE2 path adds the same (g, h) pair to the same cell with one
    // paired lane-add instead of two scalar adds). The backend owns the
    // execution schedule (sharded stores run tasks shard-major); the
    // per-task contract in [`BinLike::build_partials`] pins the result.
    let isa = simd::dispatch();
    let partials = bm.build_partials(par, grad, hess, idx, &tasks, layout, isa);
    counters::HIST_BUILDS.add(specs.len() as u64);

    let mut out: Vec<Vec<Cell>> = Vec::with_capacity(specs.len());
    let mut cur: Option<(usize, Vec<Cell>)> = None;
    for (&(s, _, _), partial) in tasks.iter().zip(partials) {
        match &mut cur {
            Some((cs, acc)) if *cs == s => {
                for (a, b) in acc.iter_mut().zip(&partial) {
                    a.g += b.g;
                    a.h += b.h;
                }
            }
            _ => {
                if let Some((_, acc)) = cur.take() {
                    out.push(acc);
                }
                cur = Some((s, partial));
            }
        }
    }
    if let Some((_, acc)) = cur {
        out.push(acc);
    }
    out
}

/// Best split per frontier node: per-feature bin scans run as one flat
/// `(node, feature)` task list across workers; the per-node reduction
/// walks features in index order and only accepts a *strictly* greater
/// gain, so the lowest feature index (then lowest bin) wins ties.
fn level_split_search<B: BinLike + ?Sized>(
    par: bool,
    frontier: &[LevelNode],
    bm: &B,
    layout: &HistLayout,
    cfg: &TreeConfig,
) -> Vec<Option<(usize, usize)>> {
    let mut tasks: Vec<(usize, usize)> = Vec::new();
    let mut cells = 0usize;
    for (slot, node) in frontier.iter().enumerate() {
        if node.end - node.start < 2 {
            continue;
        }
        for f in 0..bm.cols() {
            if bm.n_bins(f) >= 2 {
                tasks.push((slot, f));
                cells += bm.n_bins(f);
            }
        }
    }
    let par = par && cells >= PAR_SPLIT_MIN_CELLS;
    let results = par_map_if(par, &tasks, |&(slot, f)| {
        let node = &frontier[slot];
        let parent_score = node.g_sum * node.g_sum / (node.h_sum + cfg.lambda);
        let nb = bm.n_bins(f);
        let off = layout.offsets[f];
        let mut gl = 0.0f32;
        let mut hl = 0.0f32;
        let mut best: Option<(f32, usize)> = None;
        for (b, cell) in node.hist[off..off + nb - 1].iter().enumerate() {
            gl += cell.g;
            hl += cell.h;
            let gr = node.g_sum - gl;
            let hr = node.h_sum - hl;
            if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                continue;
            }
            let gain = gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) - parent_score;
            if gain > cfg.gamma && best.is_none_or(|(bg, _)| gain > bg) {
                best = Some((gain, b));
            }
        }
        best
    });
    let mut out: Vec<Option<(f32, usize, usize)>> = vec![None; frontier.len()];
    for (&(slot, f), result) in tasks.iter().zip(results) {
        if let Some((gain, bin)) = result {
            // Tasks are ordered by (slot, feature), so a strict `>` keeps
            // the lowest feature index on equal gains.
            if out[slot].is_none_or(|(bg, _, _)| gain > bg) {
                out[slot] = Some((gain, f, bin));
            }
        }
    }
    out.into_iter()
        .map(|b| b.map(|(_, f, bin)| (f, bin)))
        .collect()
}

/// Order-preserving in-place partition (rows whose bin code is `<=
/// thresh` first), using a caller scratch buffer for the non-matching
/// side. `bins[k]` is the split feature's bin code of `seg[k]`
/// (resolved up front by [`BinLike::feature_bins`], so the partition
/// itself never touches the bin store). Keeping *both* children in
/// ascending row order is what keeps every accumulation pass below the
/// root walking the code rows sequentially.
fn stable_partition_by_bins(
    seg: &mut [usize],
    scratch: &mut Vec<usize>,
    bins: &[u16],
    thresh: u16,
) -> usize {
    scratch.clear();
    let mut store = 0;
    for k in 0..seg.len() {
        let i = seg[k];
        if bins[k] <= thresh {
            seg[store] = i;
            store += 1;
        } else {
            scratch.push(i);
        }
    }
    seg[store..].copy_from_slice(scratch);
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_respects_order() {
        let x = FeatureMatrix::new(6, 1, vec![0., 1., 2., 3., 4., 5.]);
        let bm = BinnedMatrix::new(&x, 4);
        assert_eq!(bm.rows(), 6);
        // Bins must be monotone in the raw value.
        for r in 0..5 {
            assert!(bm.bin(r, 0) <= bm.bin(r + 1, 0));
        }
        assert!(bm.n_bins(0) >= 2);
    }

    #[test]
    fn constant_column_gets_one_bin() {
        let x = FeatureMatrix::new(4, 2, vec![7., 1., 7., 2., 7., 3., 7., 4.]);
        let bm = BinnedMatrix::new(&x, 8);
        assert_eq!(bm.n_bins(0), 1);
        assert!(bm.n_bins(1) >= 2);
        assert_eq!(bm.bin_row(2), &[0, bm.bin(2, 1) as u8]);
    }

    #[test]
    fn binned_tree_learns_step() {
        let n = 50;
        let xs: Vec<f32> = (0..n).map(|i| i as f32 / (n - 1) as f32).collect();
        let y: Vec<f32> = xs
            .iter()
            .map(|&v| if v <= 0.5 { -1.0 } else { 1.0 })
            .collect();
        let x = FeatureMatrix::new(n, 1, xs);
        let bm = BinnedMatrix::new(&x, 16);
        let g: Vec<f32> = y.iter().map(|v| -v).collect();
        let h = vec![1.0; n];
        let idx: Vec<usize> = (0..n).collect();
        let cfg = TreeConfig {
            max_depth: 2,
            lambda: 0.0,
            ..TreeConfig::default()
        };
        let tree = BinnedTree::fit(&bm, &g, &h, &idx, &cfg);
        assert!(tree.predict_row(&[0.1]) < -0.8);
        assert!(tree.predict_row(&[0.95]) > 0.8);
    }

    #[test]
    fn binned_matches_exact_on_coarse_data() {
        // With few distinct values, binned and exact trees should make the
        // same split decisions.
        use crate::gbdt::tree::RegressionTree;
        let x = FeatureMatrix::new(8, 1, vec![0., 0., 1., 1., 2., 2., 3., 3.]);
        let y = [-2.0f32, -2.0, -1.0, -1.0, 1.0, 1.0, 2.0, 2.0];
        let g: Vec<f32> = y.iter().map(|v| -v).collect();
        let h = vec![1.0; 8];
        let idx: Vec<usize> = (0..8).collect();
        let cfg = TreeConfig {
            max_depth: 2,
            lambda: 0.0,
            min_child_weight: 1.0,
            gamma: 0.0,
        };
        let bm = BinnedMatrix::new(&x, 16);
        let bt = BinnedTree::fit(&bm, &g, &h, &idx, &cfg);
        let et = RegressionTree::fit(&x, &g, &h, &idx, &cfg);
        for probe in [0.0f32, 0.9, 1.5, 2.5, 3.0] {
            assert!(
                (bt.predict_row(&[probe]) - et.predict_row(&[probe])).abs() < 1e-5,
                "probe {probe}"
            );
        }
    }

    #[test]
    fn leaf_spans_agree_with_traversal() {
        let n = 60;
        let xs: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let x = FeatureMatrix::new(n, 1, xs.clone());
        let bm = BinnedMatrix::new(&x, 8);
        let g: Vec<f32> = xs.iter().map(|v| v * 2.0 - 0.3).collect();
        let h = vec![1.0; n];
        let idx: Vec<usize> = (0..n).filter(|i| i % 3 != 0).collect();
        let cfg = TreeConfig::default();
        let (tree, spans) = BinnedTree::fit_tracked(&bm, &g, &h, &idx, &cfg, false);
        // Every fitted row appears in exactly one span, and the span's
        // leaf value is exactly what traversal produces.
        let mut seen = vec![0usize; n];
        for &(s, e, v) in &spans.spans {
            for &i in &spans.rows[s..e] {
                seen[i] += 1;
                assert_eq!(tree.predict_row(x.row(i)).to_bits(), v.to_bits());
            }
        }
        for &i in &idx {
            assert_eq!(seen[i], 1, "row {i}");
        }
    }

    #[test]
    fn sibling_subtraction_is_counted() {
        let _guard = crate::par::test_env_lock();
        stencilmart_obs::set_enabled(true);
        let n = 64;
        let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let x = FeatureMatrix::new(n, 1, xs);
        let bm = BinnedMatrix::new(&x, 16);
        let g: Vec<f32> = (0..n).map(|i| if i < 20 { -1.0 } else { 1.0 }).collect();
        let h = vec![1.0; n];
        let idx: Vec<usize> = (0..n).collect();
        let before = (
            counters::HIST_BUILDS.get(),
            counters::HIST_SUBTRACTIONS.get(),
            counters::TREES_FITTED.get(),
        );
        let tree = BinnedTree::fit(&bm, &g, &h, &idx, &TreeConfig::default());
        assert!(tree.node_count() > 1);
        assert!(counters::HIST_BUILDS.get() > before.0, "root + children");
        assert!(counters::HIST_SUBTRACTIONS.get() > before.1, "siblings");
        assert_eq!(counters::TREES_FITTED.get(), before.2 + 1);
    }

    #[test]
    fn scratch_reuse_binning_matches_row_major_reference() {
        // The column-at-a-time pass with hoisted radix/pad scratch must
        // produce the identical cuts and bin codes as the legacy
        // per-cell reference for awkward shapes (ties, negatives,
        // constant columns, more bins than distinct values).
        let data: Vec<f32> = (0..37 * 5)
            .map(|i| match i % 5 {
                0 => ((i / 5) % 4) as f32 - 2.0,
                1 => -((i as f32) * 0.3).sin() * 100.0,
                2 => 7.5,
                3 => (i as f32).sqrt(),
                _ => ((i % 11) as f32) * 0.25,
            })
            .collect();
        let x = FeatureMatrix::new(37, 5, data);
        for n_bins in [2, 3, 16, 255] {
            assert_eq!(
                BinnedMatrix::new(&x, n_bins),
                BinnedMatrix::new_row_major(&x, n_bins),
                "n_bins = {n_bins}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "n_bins")]
    fn rejects_bad_bin_count() {
        let x = FeatureMatrix::new(2, 1, vec![0., 1.]);
        BinnedMatrix::new(&x, 1);
    }
}

//! Gradient-boosted decision trees: the *GBDT* classifier and
//! *GBRegressor* of the paper, built on second-order boosting in the style
//! of XGBoost.
//!
//! Training runs on the deterministic parallel engine in [`binned`]:
//! the classifier bins the feature matrix once, shares it across K
//! independent one-vs-rest boosters, and trains the boosters across
//! workers with per-class seed streams; within a booster (and in the
//! regressor) each tree parallelizes histogram accumulation and split
//! search. All parallelism is scheduling-only — fitted models are
//! bit-identical for every `STENCILMART_THREADS` setting.

pub mod binned;
pub mod serial_ref;
pub mod stream;
pub mod tree;

use crate::data::FeatureMatrix;
use crate::par::{par_map_if, par_map_indices, worker_count};
use binned::{BinnedMatrix, BinnedTree};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use stencilmart_obs::{self as obs, counters};
use tree::{LeafSpans, RegressionTree, TreeConfig};

/// Boosting hyperparameters shared by the regressor and classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Boosting rounds.
    pub rounds: usize,
    /// Shrinkage (learning rate).
    pub eta: f32,
    /// Row subsampling fraction per round.
    pub subsample: f32,
    /// Per-tree growth parameters.
    pub tree: TreeConfig,
    /// Histogram bins for split search (0 or 1 selects exact greedy;
    /// 2..=255 selects the fast `hist`-style path).
    pub bins: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            rounds: 100,
            eta: 0.1,
            subsample: 0.9,
            tree: TreeConfig::default(),
            bins: 32,
            seed: 0,
        }
    }
}

impl GbdtConfig {
    /// Exact-greedy variant of this configuration.
    pub fn exact(mut self) -> Self {
        self.bins = 0;
        self
    }
}

/// A tree fitted by either split-search strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum AnyTree {
    Exact(RegressionTree),
    Binned(BinnedTree),
}

impl AnyTree {
    fn predict_row(&self, row: &[f32]) -> f32 {
        match self {
            AnyTree::Exact(t) => t.predict_row(row),
            AnyTree::Binned(t) => t.predict_row(row),
        }
    }

    fn max_feature(&self) -> Option<usize> {
        match self {
            AnyTree::Exact(t) => t.max_feature(),
            AnyTree::Binned(t) => t.max_feature(),
        }
    }
}

/// Shared fitting context: pre-binned features when the hist path is on.
/// The classifier builds one context and shares it (read-only) across
/// all class boosters, so the matrix is binned exactly once.
struct FitContext<'a> {
    x: &'a FeatureMatrix,
    binned: Option<BinnedMatrix>,
}

impl<'a> FitContext<'a> {
    fn new(x: &'a FeatureMatrix, cfg: &GbdtConfig) -> FitContext<'a> {
        let binned = (cfg.bins >= 2).then(|| BinnedMatrix::new(x, cfg.bins));
        FitContext { x, binned }
    }

    /// Fit one tree; `par` enables intra-tree parallelism (histogram
    /// accumulation and split search) without affecting the result.
    fn fit_tree(
        &self,
        grad: &[f32],
        hess: &[f32],
        idx: &[usize],
        cfg: &TreeConfig,
        par: bool,
    ) -> (AnyTree, LeafSpans) {
        counters::GBDT_TREES_GROWN.inc();
        match &self.binned {
            Some(bm) => {
                let (t, spans) = BinnedTree::fit_tracked(bm, grad, hess, idx, cfg, par);
                (AnyTree::Binned(t), spans)
            }
            None => {
                let (t, spans) = RegressionTree::fit_tracked(self.x, grad, hess, idx, cfg);
                (AnyTree::Exact(t), spans)
            }
        }
    }
}

pub(crate) fn subsample_indices(n: usize, frac: f32, rng: &mut ChaCha8Rng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    if frac >= 1.0 {
        return idx;
    }
    idx.shuffle(rng);
    let keep = ((n as f32 * frac).round() as usize).clamp(1, n);
    idx.truncate(keep);
    idx
}

/// Seed for class `k`'s one-vs-rest sampling stream: a golden-ratio hash
/// step keeps the K streams decorrelated while class 0 retains the
/// user's seed unchanged.
fn class_seed(seed: u64, k: usize) -> u64 {
    seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Add a fitted tree's shrunken predictions into the running scores.
///
/// Rows the tree was fitted on are updated straight from the tracked
/// leaf spans, skipping re-traversal. This is bit-identical to
/// traversing: the tree's in-place partitions route every fitted row to
/// exactly the leaf traversal reaches (for binned trees because cuts
/// are strictly increasing, `bin ≤ split_bin ⟺ value ≤ cut_value`).
/// Rows left out by subsampling still traverse; `in_leaf` is caller
/// scratch marking which rows the spans covered.
fn apply_update(
    tree: &AnyTree,
    spans: &LeafSpans,
    x: &FeatureMatrix,
    scores: &mut [f32],
    eta: f32,
    in_leaf: &mut [bool],
) {
    in_leaf.fill(false);
    for &(start, end, value) in &spans.spans {
        for &i in &spans.rows[start..end] {
            scores[i] += eta * value;
            in_leaf[i] = true;
        }
    }
    for (i, covered) in in_leaf.iter().enumerate() {
        if !covered {
            scores[i] += eta * tree.predict_row(x.row(i));
        }
    }
}

/// Gradient-boosted regressor (squared-error objective).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtRegressor {
    base: f32,
    eta: f32,
    trees: Vec<AnyTree>,
}

impl GbdtRegressor {
    /// Fit on a feature matrix and scalar targets.
    pub fn fit(x: &FeatureMatrix, y: &[f32], cfg: &GbdtConfig) -> GbdtRegressor {
        assert_eq!(x.rows(), y.len(), "sample/target mismatch");
        assert!(x.rows() > 0, "empty training set");
        let _span = obs::span("gbdt_fit");
        let ctx = FitContext::new(x, cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let base = y.iter().sum::<f32>() / y.len() as f32;
        let mut pred = vec![base; y.len()];
        let mut trees = Vec::with_capacity(cfg.rounds);
        let hess = vec![1.0f32; y.len()];
        let mut grad = vec![0.0f32; y.len()];
        let mut in_leaf = vec![false; y.len()];
        let par = worker_count() > 1;
        for _ in 0..cfg.rounds {
            for (g, (p, t)) in grad.iter_mut().zip(pred.iter().zip(y)) {
                *g = p - t;
            }
            let idx = subsample_indices(y.len(), cfg.subsample, &mut rng);
            let (tree, spans) = ctx.fit_tree(&grad, &hess, &idx, &cfg.tree, par);
            apply_update(&tree, &spans, x, &mut pred, cfg.eta, &mut in_leaf);
            trees.push(tree);
        }
        GbdtRegressor {
            base,
            eta: cfg.eta,
            trees,
        }
    }

    /// Fit from an out-of-core sharded bin store. Bit-identical to
    /// [`GbdtRegressor::fit`] on the equivalent resident matrix for any
    /// shard count: the grower receives the same ascending row lists
    /// either way, and bin-space traversal routes subsample-skipped
    /// rows to exactly the leaf a raw-feature traversal reaches.
    /// Requires the hist path (`cfg.bins >= 2`) — the store *is* the
    /// binning.
    pub fn fit_streamed(bins: &stream::ShardedBins, y: &[f32], cfg: &GbdtConfig) -> GbdtRegressor {
        assert!(cfg.bins >= 2, "streamed fit requires the hist path");
        assert_eq!(bins.rows(), y.len(), "sample/target mismatch");
        assert!(bins.rows() > 0, "empty training set");
        let _span = obs::span("gbdt_fit");
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let base = y.iter().sum::<f32>() / y.len() as f32;
        let mut pred = vec![base; y.len()];
        let mut trees = Vec::with_capacity(cfg.rounds);
        let hess = vec![1.0f32; y.len()];
        let mut grad = vec![0.0f32; y.len()];
        let mut in_leaf = vec![false; y.len()];
        let par = worker_count() > 1;
        let loads0 = counters::SHARD_LOADS.get();
        let passes0 = counters::HIST_LEVEL_PASSES.get();
        for _ in 0..cfg.rounds {
            for (g, (p, t)) in grad.iter_mut().zip(pred.iter().zip(y)) {
                *g = p - t;
            }
            let idx = subsample_indices(y.len(), cfg.subsample, &mut rng);
            counters::GBDT_TREES_GROWN.inc();
            let (tree, spans) = BinnedTree::fit_tracked(bins, &grad, &hess, &idx, &cfg.tree, par);
            stream::apply_update_streamed(&tree, &spans, bins, &mut pred, cfg.eta, &mut in_leaf);
            trees.push(AnyTree::Binned(tree));
        }
        publish_loads_per_level(loads0, passes0);
        GbdtRegressor {
            base,
            eta: cfg.eta,
            trees,
        }
    }

    /// Predict one sample.
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        self.base + self.eta * self.trees.iter().map(|t| t.predict_row(row)).sum::<f32>()
    }

    /// Predict a batch (rows traverse across workers; output order and
    /// values are scheduling-independent).
    pub fn predict(&self, x: &FeatureMatrix) -> Vec<f32> {
        par_map_indices(x.rows(), |i| self.predict_row(x.row(i)))
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Highest feature index any tree reads, or `None` when every tree
    /// is a single leaf. A deserialized model is safe to call on rows
    /// wider than this.
    pub fn max_feature_index(&self) -> Option<usize> {
        self.trees.iter().filter_map(AnyTree::max_feature).max()
    }
}

/// Gradient-boosted multi-class classifier: K independent one-vs-rest
/// binary logistic boosters (class k learns `P(label == k)`), trained
/// across workers and combined by arg-max score.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtClassifier {
    classes: usize,
    eta: f32,
    /// `classes × rounds` trees: one independent booster per class.
    trees: Vec<Vec<AnyTree>>,
}

impl GbdtClassifier {
    /// Fit on a feature matrix and integer class labels in `0..classes`.
    ///
    /// The matrix is binned once and shared by every booster. Boosters
    /// train across workers with per-class seed streams (`class_seed`);
    /// when classes run in parallel, intra-tree parallelism is disabled
    /// to avoid oversubscription — either way the fitted model is
    /// bit-identical.
    pub fn fit(
        x: &FeatureMatrix,
        labels: &[usize],
        classes: usize,
        cfg: &GbdtConfig,
    ) -> GbdtClassifier {
        assert_eq!(x.rows(), labels.len(), "sample/label mismatch");
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        let _span = obs::span("gbdt_fit");
        let ctx = FitContext::new(x, cfg);
        let class_par = worker_count() > 1 && classes > 1;
        let tree_par = worker_count() > 1 && !class_par;
        let ks: Vec<usize> = (0..classes).collect();
        let boosters = par_map_if(class_par, &ks, |&k| {
            fit_one_vs_rest(&ctx, x, labels, k, cfg, tree_par)
        });
        GbdtClassifier {
            classes,
            eta: cfg.eta,
            trees: boosters,
        }
    }

    /// Fit from an out-of-core sharded bin store: K independent
    /// one-vs-rest boosters over the same store, with the same
    /// class-vs-tree parallelism policy as [`GbdtClassifier::fit`] —
    /// bit-identical to the resident fit for any shard count and any
    /// worker count.
    pub fn fit_streamed(
        bins: &stream::ShardedBins,
        labels: &[usize],
        classes: usize,
        cfg: &GbdtConfig,
    ) -> GbdtClassifier {
        assert!(cfg.bins >= 2, "streamed fit requires the hist path");
        assert_eq!(bins.rows(), labels.len(), "sample/label mismatch");
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        let _span = obs::span("gbdt_fit");
        let class_par = worker_count() > 1 && classes > 1;
        let tree_par = worker_count() > 1 && !class_par;
        let loads0 = counters::SHARD_LOADS.get();
        let passes0 = counters::HIST_LEVEL_PASSES.get();
        let ks: Vec<usize> = (0..classes).collect();
        let boosters = par_map_if(class_par, &ks, |&k| {
            fit_one_vs_rest_streamed(bins, labels, k, cfg, tree_par)
        });
        publish_loads_per_level(loads0, passes0);
        GbdtClassifier {
            classes,
            eta: cfg.eta,
            trees: boosters,
        }
    }

    /// Raw class scores for one sample.
    pub fn decision_row(&self, row: &[f32]) -> Vec<f32> {
        self.trees
            .iter()
            .map(|booster| self.eta * booster.iter().map(|t| t.predict_row(row)).sum::<f32>())
            .collect()
    }

    /// Predicted class for one sample.
    pub fn predict_row(&self, row: &[f32]) -> usize {
        self.decision_row(row)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)
            .unwrap_or(0)
    }

    /// Predict a batch of class labels (rows score across workers;
    /// output order and values are scheduling-independent).
    pub fn predict(&self, x: &FeatureMatrix) -> Vec<usize> {
        par_map_indices(x.rows(), |i| self.predict_row(x.row(i)))
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Highest feature index any tree of any booster reads, or `None`
    /// when every tree is a single leaf.
    pub fn max_feature_index(&self) -> Option<usize> {
        self.trees
            .iter()
            .flatten()
            .filter_map(AnyTree::max_feature)
            .max()
    }
}

/// Train class `k`'s binary logistic booster: `y = 1` for rows of class
/// `k`, scores start at 0, `grad = p − y`, `hess = p(1−p)` (floored for
/// stability). Fully independent of the other classes.
fn fit_one_vs_rest(
    ctx: &FitContext,
    x: &FeatureMatrix,
    labels: &[usize],
    k: usize,
    cfg: &GbdtConfig,
    tree_par: bool,
) -> Vec<AnyTree> {
    let n = labels.len();
    let mut rng = ChaCha8Rng::seed_from_u64(class_seed(cfg.seed, k));
    let mut score = vec![0.0f32; n];
    let mut grad = vec![0.0f32; n];
    let mut hess = vec![0.0f32; n];
    let mut in_leaf = vec![false; n];
    let mut trees = Vec::with_capacity(cfg.rounds);
    for _ in 0..cfg.rounds {
        for i in 0..n {
            let p = 1.0 / (1.0 + (-score[i]).exp());
            let y = if labels[i] == k { 1.0 } else { 0.0 };
            grad[i] = p - y;
            hess[i] = (p * (1.0 - p)).max(1e-6);
        }
        let idx = subsample_indices(n, cfg.subsample, &mut rng);
        let (tree, spans) = ctx.fit_tree(&grad, &hess, &idx, &cfg.tree, tree_par);
        apply_update(&tree, &spans, x, &mut score, cfg.eta, &mut in_leaf);
        trees.push(tree);
    }
    trees
}

/// Streamed counterpart of [`fit_one_vs_rest`]: same seed stream, same
/// gradient/hessian arithmetic, storage resolved shard-by-shard.
fn fit_one_vs_rest_streamed(
    bins: &stream::ShardedBins,
    labels: &[usize],
    k: usize,
    cfg: &GbdtConfig,
    tree_par: bool,
) -> Vec<AnyTree> {
    let n = labels.len();
    let mut rng = ChaCha8Rng::seed_from_u64(class_seed(cfg.seed, k));
    let mut score = vec![0.0f32; n];
    let mut grad = vec![0.0f32; n];
    let mut hess = vec![0.0f32; n];
    let mut in_leaf = vec![false; n];
    let mut trees = Vec::with_capacity(cfg.rounds);
    for _ in 0..cfg.rounds {
        for i in 0..n {
            let p = 1.0 / (1.0 + (-score[i]).exp());
            let y = if labels[i] == k { 1.0 } else { 0.0 };
            grad[i] = p - y;
            hess[i] = (p * (1.0 - p)).max(1e-6);
        }
        let idx = subsample_indices(n, cfg.subsample, &mut rng);
        counters::GBDT_TREES_GROWN.inc();
        let (tree, spans) = BinnedTree::fit_tracked(bins, &grad, &hess, &idx, &cfg.tree, tree_par);
        stream::apply_update_streamed(&tree, &spans, bins, &mut score, cfg.eta, &mut in_leaf);
        trees.push(AnyTree::Binned(tree));
    }
    trees
}

/// Publish the `shard_loads_per_level_milli` gauge from the counter
/// deltas of one streamed fit: `1000 × shard loads / histogram level
/// passes` since `(loads0, passes0)` were sampled. The figure the
/// shard-major schedule optimizes — O(shards) per pass instead of
/// O(shards × active nodes).
fn publish_loads_per_level(loads0: u64, passes0: u64) {
    let loads = counters::SHARD_LOADS.get().saturating_sub(loads0);
    let passes = counters::HIST_LEVEL_PASSES.get().saturating_sub(passes0);
    if let Some(milli) = (loads * 1000).checked_div(passes) {
        counters::SHARD_LOADS_PER_LEVEL.set(milli);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn regressor_fits_linear_function() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 300;
        let mut data = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            data.extend_from_slice(&[a, b]);
            y.push(3.0 * a - 2.0 * b + 1.0);
        }
        let x = FeatureMatrix::new(n, 2, data);
        let model = GbdtRegressor::fit(&x, &y, &GbdtConfig::default());
        let preds = model.predict(&x);
        let mse: f32 = preds
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f32>()
            / n as f32;
        assert!(mse < 0.05, "mse = {mse}");
        assert_eq!(model.tree_count(), 100);
    }

    #[test]
    fn regressor_base_is_mean_with_zero_rounds() {
        let x = FeatureMatrix::new(3, 1, vec![0., 1., 2.]);
        let y = [1.0f32, 2.0, 6.0];
        let cfg = GbdtConfig {
            rounds: 0,
            ..GbdtConfig::default()
        };
        let model = GbdtRegressor::fit(&x, &y, &cfg);
        assert!((model.predict_row(&[5.0]) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn classifier_learns_quadrants() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 400;
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            data.extend_from_slice(&[a, b]);
            labels.push(match (a > 0.0, b > 0.0) {
                (true, true) => 0usize,
                (true, false) => 1,
                (false, true) => 2,
                (false, false) => 3,
            });
        }
        let x = FeatureMatrix::new(n, 2, data);
        let cfg = GbdtConfig {
            rounds: 30,
            eta: 0.3,
            ..GbdtConfig::default()
        };
        let model = GbdtClassifier::fit(&x, &labels, 4, &cfg);
        let preds = model.predict(&x);
        let acc = preds.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / n as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn classifier_is_deterministic_per_seed() {
        let x = FeatureMatrix::new(6, 1, vec![0., 1., 2., 3., 4., 5.]);
        let labels = [0usize, 0, 0, 1, 1, 1];
        let cfg = GbdtConfig {
            rounds: 10,
            ..GbdtConfig::default()
        };
        let a = GbdtClassifier::fit(&x, &labels, 2, &cfg);
        let b = GbdtClassifier::fit(&x, &labels, 2, &cfg);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn classifier_rejects_bad_labels() {
        let x = FeatureMatrix::new(2, 1, vec![0., 1.]);
        GbdtClassifier::fit(&x, &[0, 5], 2, &GbdtConfig::default());
    }

    #[test]
    fn subsampling_keeps_learning() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 200;
        let mut data = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f32 = rng.gen_range(0.0..1.0);
            data.push(a);
            y.push(if a > 0.5 { 1.0 } else { 0.0 });
        }
        let x = FeatureMatrix::new(n, 1, data);
        let cfg = GbdtConfig {
            rounds: 40,
            subsample: 0.5,
            ..GbdtConfig::default()
        };
        let model = GbdtRegressor::fit(&x, &y, &cfg);
        assert!(model.predict_row(&[0.9]) > 0.8);
        assert!(model.predict_row(&[0.1]) < 0.2);
    }

    #[test]
    fn class_seeds_are_distinct_and_stable() {
        assert_eq!(class_seed(7, 0), 7, "class 0 keeps the user's seed");
        let seeds: Vec<u64> = (0..8).map(|k| class_seed(7, k)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn streamed_regressor_serializes_byte_equal_to_resident() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 120;
        let mut data = Vec::with_capacity(n * 3);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            let c: f32 = rng.gen_range(-1.0..1.0);
            data.extend_from_slice(&[a, b, c]);
            y.push(2.0 * a - b + 0.5 * c * c);
        }
        let x = FeatureMatrix::new(n, 3, data);
        let cfg = GbdtConfig {
            rounds: 12,
            subsample: 0.8,
            bins: 16,
            ..GbdtConfig::default()
        };
        let resident = GbdtRegressor::fit(&x, &y, &cfg);
        let expect = serde_json::to_string(&resident).unwrap();
        for shard_rows in [vec![120], vec![50, 50, 20], vec![15; 8]] {
            let sb = stream::sharded_from_matrix(&x, cfg.bins, &shard_rows);
            let streamed = GbdtRegressor::fit_streamed(&sb, &y, &cfg);
            assert_eq!(
                serde_json::to_string(&streamed).unwrap(),
                expect,
                "shards {shard_rows:?}"
            );
        }
    }

    #[test]
    fn streamed_classifier_serializes_byte_equal_to_resident() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let n = 90;
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            data.extend_from_slice(&[a, b]);
            labels.push(usize::from(a > 0.0) + 2 * usize::from(b > 0.0));
        }
        let x = FeatureMatrix::new(n, 2, data);
        let cfg = GbdtConfig {
            rounds: 6,
            subsample: 0.7,
            bins: 12,
            ..GbdtConfig::default()
        };
        let resident = GbdtClassifier::fit(&x, &labels, 4, &cfg);
        let expect = serde_json::to_string(&resident).unwrap();
        for shard_rows in [vec![90], vec![31, 31, 28]] {
            let sb = stream::sharded_from_matrix(&x, cfg.bins, &shard_rows);
            let streamed = GbdtClassifier::fit_streamed(&sb, &labels, 4, &cfg);
            assert_eq!(
                serde_json::to_string(&streamed).unwrap(),
                expect,
                "shards {shard_rows:?}"
            );
        }
    }

    #[test]
    fn exact_and_binned_paths_both_learn() {
        // The leaf-span update path must work for both tree engines.
        let n = 80;
        let xs: Vec<f32> = (0..n).map(|i| i as f32 / (n - 1) as f32).collect();
        let y: Vec<f32> = xs.iter().map(|&v| 2.0 * v - 0.5).collect();
        let x = FeatureMatrix::new(n, 1, xs);
        for cfg in [
            GbdtConfig {
                rounds: 30,
                ..GbdtConfig::default()
            },
            GbdtConfig {
                rounds: 30,
                ..GbdtConfig::default()
            }
            .exact(),
        ] {
            let model = GbdtRegressor::fit(&x, &y, &cfg);
            let mse: f32 = model
                .predict(&x)
                .iter()
                .zip(&y)
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f32>()
                / n as f32;
            assert!(mse < 0.05, "bins = {}, mse = {mse}", cfg.bins);
        }
    }
}

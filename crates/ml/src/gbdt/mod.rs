//! Gradient-boosted decision trees: the *GBDT* classifier and
//! *GBRegressor* of the paper, built on second-order boosting in the style
//! of XGBoost.

pub mod binned;
pub mod tree;

use crate::data::FeatureMatrix;
use binned::{BinnedMatrix, BinnedTree};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use stencilmart_obs::{self as obs, counters};
use tree::{RegressionTree, TreeConfig};

/// Boosting hyperparameters shared by the regressor and classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Boosting rounds.
    pub rounds: usize,
    /// Shrinkage (learning rate).
    pub eta: f32,
    /// Row subsampling fraction per round.
    pub subsample: f32,
    /// Per-tree growth parameters.
    pub tree: TreeConfig,
    /// Histogram bins for split search (0 or 1 selects exact greedy;
    /// 2..=255 selects the fast `hist`-style path).
    pub bins: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            rounds: 100,
            eta: 0.1,
            subsample: 0.9,
            tree: TreeConfig::default(),
            bins: 32,
            seed: 0,
        }
    }
}

impl GbdtConfig {
    /// Exact-greedy variant of this configuration.
    pub fn exact(mut self) -> Self {
        self.bins = 0;
        self
    }
}

/// A tree fitted by either split-search strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum AnyTree {
    Exact(RegressionTree),
    Binned(BinnedTree),
}

impl AnyTree {
    fn predict_row(&self, row: &[f32]) -> f32 {
        match self {
            AnyTree::Exact(t) => t.predict_row(row),
            AnyTree::Binned(t) => t.predict_row(row),
        }
    }
}

/// Shared fitting context: pre-binned features when the hist path is on.
struct FitContext<'a> {
    x: &'a FeatureMatrix,
    binned: Option<BinnedMatrix>,
}

impl<'a> FitContext<'a> {
    fn new(x: &'a FeatureMatrix, cfg: &GbdtConfig) -> FitContext<'a> {
        let binned = (cfg.bins >= 2).then(|| BinnedMatrix::new(x, cfg.bins));
        FitContext { x, binned }
    }

    fn fit_tree(&self, grad: &[f32], hess: &[f32], idx: &[usize], cfg: &TreeConfig) -> AnyTree {
        counters::GBDT_TREES_GROWN.inc();
        match &self.binned {
            Some(bm) => AnyTree::Binned(BinnedTree::fit(bm, grad, hess, idx, cfg)),
            None => AnyTree::Exact(RegressionTree::fit(self.x, grad, hess, idx, cfg)),
        }
    }
}

fn subsample_indices(n: usize, frac: f32, rng: &mut ChaCha8Rng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    if frac >= 1.0 {
        return idx;
    }
    idx.shuffle(rng);
    let keep = ((n as f32 * frac).round() as usize).clamp(1, n);
    idx.truncate(keep);
    idx
}

/// Gradient-boosted regressor (squared-error objective).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtRegressor {
    base: f32,
    eta: f32,
    trees: Vec<AnyTree>,
}

impl GbdtRegressor {
    /// Fit on a feature matrix and scalar targets.
    pub fn fit(x: &FeatureMatrix, y: &[f32], cfg: &GbdtConfig) -> GbdtRegressor {
        assert_eq!(x.rows(), y.len(), "sample/target mismatch");
        assert!(x.rows() > 0, "empty training set");
        let _span = obs::span("gbdt_fit");
        let ctx = FitContext::new(x, cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let base = y.iter().sum::<f32>() / y.len() as f32;
        let mut pred = vec![base; y.len()];
        let mut trees = Vec::with_capacity(cfg.rounds);
        let hess = vec![1.0f32; y.len()];
        for _ in 0..cfg.rounds {
            let grad: Vec<f32> = pred.iter().zip(y).map(|(p, t)| p - t).collect();
            let idx = subsample_indices(y.len(), cfg.subsample, &mut rng);
            let tree = ctx.fit_tree(&grad, &hess, &idx, &cfg.tree);
            for (i, p) in pred.iter_mut().enumerate() {
                *p += cfg.eta * tree.predict_row(x.row(i));
            }
            trees.push(tree);
        }
        GbdtRegressor {
            base,
            eta: cfg.eta,
            trees,
        }
    }

    /// Predict one sample.
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        self.base + self.eta * self.trees.iter().map(|t| t.predict_row(row)).sum::<f32>()
    }

    /// Predict a batch.
    pub fn predict(&self, x: &FeatureMatrix) -> Vec<f32> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

/// Gradient-boosted multi-class classifier (softmax objective, one tree
/// per class per round).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtClassifier {
    classes: usize,
    eta: f32,
    /// `rounds × classes` trees.
    trees: Vec<Vec<AnyTree>>,
}

impl GbdtClassifier {
    /// Fit on a feature matrix and integer class labels in `0..classes`.
    pub fn fit(
        x: &FeatureMatrix,
        labels: &[usize],
        classes: usize,
        cfg: &GbdtConfig,
    ) -> GbdtClassifier {
        assert_eq!(x.rows(), labels.len(), "sample/label mismatch");
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        let _span = obs::span("gbdt_fit");
        let n = labels.len();
        let ctx = FitContext::new(x, cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut logits = vec![0.0f32; n * classes];
        let mut rounds = Vec::with_capacity(cfg.rounds);
        let mut grad = vec![0.0f32; n];
        let mut hess = vec![0.0f32; n];
        let mut probs = vec![0.0f32; classes];
        for _ in 0..cfg.rounds {
            let idx = subsample_indices(n, cfg.subsample, &mut rng);
            let mut round_trees = Vec::with_capacity(classes);
            // Snapshot probabilities for this round.
            let mut all_probs = vec![0.0f32; n * classes];
            for i in 0..n {
                let row = &logits[i * classes..(i + 1) * classes];
                let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for (k, &v) in row.iter().enumerate() {
                    probs[k] = (v - max).exp();
                    sum += probs[k];
                }
                for (k, p) in probs.iter().enumerate() {
                    all_probs[i * classes + k] = p / sum;
                }
            }
            for k in 0..classes {
                for i in 0..n {
                    let p = all_probs[i * classes + k];
                    let y = if labels[i] == k { 1.0 } else { 0.0 };
                    grad[i] = p - y;
                    hess[i] = (p * (1.0 - p)).max(1e-6);
                }
                let tree = ctx.fit_tree(&grad, &hess, &idx, &cfg.tree);
                for i in 0..n {
                    logits[i * classes + k] += cfg.eta * tree.predict_row(x.row(i));
                }
                round_trees.push(tree);
            }
            rounds.push(round_trees);
        }
        GbdtClassifier {
            classes,
            eta: cfg.eta,
            trees: rounds,
        }
    }

    /// Raw class scores for one sample.
    pub fn decision_row(&self, row: &[f32]) -> Vec<f32> {
        let mut scores = vec![0.0f32; self.classes];
        for round in &self.trees {
            for (k, tree) in round.iter().enumerate() {
                scores[k] += self.eta * tree.predict_row(row);
            }
        }
        scores
    }

    /// Predicted class for one sample.
    pub fn predict_row(&self, row: &[f32]) -> usize {
        self.decision_row(row)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)
            .unwrap_or(0)
    }

    /// Predict a batch of class labels.
    pub fn predict(&self, x: &FeatureMatrix) -> Vec<usize> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn regressor_fits_linear_function() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 300;
        let mut data = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            data.extend_from_slice(&[a, b]);
            y.push(3.0 * a - 2.0 * b + 1.0);
        }
        let x = FeatureMatrix::new(n, 2, data);
        let model = GbdtRegressor::fit(&x, &y, &GbdtConfig::default());
        let preds = model.predict(&x);
        let mse: f32 = preds
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f32>()
            / n as f32;
        assert!(mse < 0.05, "mse = {mse}");
        assert_eq!(model.tree_count(), 100);
    }

    #[test]
    fn regressor_base_is_mean_with_zero_rounds() {
        let x = FeatureMatrix::new(3, 1, vec![0., 1., 2.]);
        let y = [1.0f32, 2.0, 6.0];
        let cfg = GbdtConfig {
            rounds: 0,
            ..GbdtConfig::default()
        };
        let model = GbdtRegressor::fit(&x, &y, &cfg);
        assert!((model.predict_row(&[5.0]) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn classifier_learns_quadrants() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 400;
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f32 = rng.gen_range(-1.0..1.0);
            let b: f32 = rng.gen_range(-1.0..1.0);
            data.extend_from_slice(&[a, b]);
            labels.push(match (a > 0.0, b > 0.0) {
                (true, true) => 0usize,
                (true, false) => 1,
                (false, true) => 2,
                (false, false) => 3,
            });
        }
        let x = FeatureMatrix::new(n, 2, data);
        let cfg = GbdtConfig {
            rounds: 30,
            eta: 0.3,
            ..GbdtConfig::default()
        };
        let model = GbdtClassifier::fit(&x, &labels, 4, &cfg);
        let preds = model.predict(&x);
        let acc = preds.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / n as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn classifier_is_deterministic_per_seed() {
        let x = FeatureMatrix::new(6, 1, vec![0., 1., 2., 3., 4., 5.]);
        let labels = [0usize, 0, 0, 1, 1, 1];
        let cfg = GbdtConfig {
            rounds: 10,
            ..GbdtConfig::default()
        };
        let a = GbdtClassifier::fit(&x, &labels, 2, &cfg);
        let b = GbdtClassifier::fit(&x, &labels, 2, &cfg);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn classifier_rejects_bad_labels() {
        let x = FeatureMatrix::new(2, 1, vec![0., 1.]);
        GbdtClassifier::fit(&x, &[0, 5], 2, &GbdtConfig::default());
    }

    #[test]
    fn subsampling_keeps_learning() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 200;
        let mut data = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f32 = rng.gen_range(0.0..1.0);
            data.push(a);
            y.push(if a > 0.5 { 1.0 } else { 0.0 });
        }
        let x = FeatureMatrix::new(n, 1, data);
        let cfg = GbdtConfig {
            rounds: 40,
            subsample: 0.5,
            ..GbdtConfig::default()
        };
        let model = GbdtRegressor::fit(&x, &y, &cfg);
        assert!(model.predict_row(&[0.9]) > 0.8);
        assert!(model.predict_row(&[0.1]) < 0.2);
    }
}

//! Out-of-core bin storage for the GBDT engine: the same level-wise
//! grower that runs over a resident [`BinnedMatrix`] also runs over
//! [`ShardedBins`], which resolves bin codes shard-by-shard through a
//! bounded cache backed by a caller-supplied loader (in practice the
//! on-disk columnar shard store in the `stencilmart` crate).
//!
//! Bit-identity with the in-RAM path is structural, not approximate:
//! the grower hands every storage backend the same ascending row lists,
//! and a shard run of an ascending list performs the identical sequence
//! of code reads and float additions the resident matrix would — shard
//! boundaries only decide *when* a backing buffer is resolved, never
//! the order of arithmetic. Score updates for rows the tree was not
//! fitted on traverse in *bin space*: cuts are strictly increasing, so
//! `value <= threshold ⟺ bin(value) <= bin(threshold)` and the bin-code
//! traversal reaches exactly the leaf a raw-feature traversal reaches.
//!
//! [`BinnedMatrix`]: crate::gbdt::binned::BinnedMatrix

use crate::gbdt::binned::{accumulate_codes, BinnedNode, BinnedTree, Cell, HistLayout};
use crate::gbdt::tree::LeafSpans;
use crate::simd::SimdIsa;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use stencilmart_obs::counters;

/// Loader callback resolving one shard's row-major bin codes
/// (`rows_in_shard * cols` bytes). Called outside the cache lock, so
/// loads for different shards overlap across workers.
pub type ShardLoader = Box<dyn Fn(usize) -> io::Result<Arc<Vec<u8>>> + Send + Sync>;

/// A sharded bin-code store the GBDT grower can train from without the
/// full code matrix ever being resident: shard `s` covers global rows
/// `offsets[s] .. offsets[s+1]`, and at most `capacity` shards of codes
/// are cached at once.
pub struct ShardedBins {
    /// Per-shard start row, plus the total row count as a sentinel
    /// (`len == shards + 1`).
    offsets: Vec<usize>,
    cols: usize,
    /// Global per-column quantile cuts (shared by every shard — shards
    /// are binned against the corpus-wide cut vectors).
    cuts: Vec<Vec<f32>>,
    cache: ShardCache,
}

/// One cached shard: `(shard id, codes, last-use tick)`.
type CacheEntry = (usize, Arc<Vec<u8>>, u64);

struct ShardCache {
    capacity: usize,
    /// Linear scan is fine at the few-entry capacities this cache
    /// runs at.
    entries: Mutex<Vec<CacheEntry>>,
    tick: AtomicU64,
    loader: ShardLoader,
}

impl ShardCache {
    fn get(&self, shard: usize) -> Arc<Vec<u8>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        {
            let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(e) = entries.iter_mut().find(|e| e.0 == shard) {
                e.2 = tick;
                counters::SHARD_CACHE_HITS.inc();
                return Arc::clone(&e.1);
            }
        }
        // Load outside the lock so concurrent workers stream different
        // shards in parallel; a rare duplicate load of the same shard
        // costs I/O but never correctness.
        counters::SHARD_LOADS.inc();
        let codes = (self.loader)(shard)
            .unwrap_or_else(|e| panic!("shard {shard} failed to load during training: {e}"));
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = entries.iter_mut().find(|e| e.0 == shard) {
            e.2 = tick;
            return Arc::clone(&e.1);
        }
        while entries.len() >= self.capacity.max(1) {
            let oldest = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.2)
                .map(|(i, _)| i)
                .expect("non-empty cache");
            entries.swap_remove(oldest);
            counters::SHARD_EVICTIONS.inc();
        }
        entries.push((shard, Arc::clone(&codes), tick));
        codes
    }
}

impl ShardedBins {
    /// Build a store over `shard_rows[s]` rows per shard, `cols`
    /// features binned against the global `cuts`, keeping at most
    /// `cache_shards` shards of codes resident.
    pub fn new(
        shard_rows: &[usize],
        cols: usize,
        cuts: Vec<Vec<f32>>,
        cache_shards: usize,
        loader: ShardLoader,
    ) -> ShardedBins {
        assert_eq!(cuts.len(), cols, "one cut vector per column");
        let mut offsets = Vec::with_capacity(shard_rows.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for &r in shard_rows {
            total += r;
            offsets.push(total);
        }
        ShardedBins {
            offsets,
            cols,
            cuts,
            cache: ShardCache {
                capacity: cache_shards.max(1),
                entries: Mutex::new(Vec::new()),
                tick: AtomicU64::new(0),
                loader,
            },
        }
    }

    /// Total rows across all shards.
    pub fn rows(&self) -> usize {
        *self.offsets.last().expect("sentinel offset")
    }

    /// Number of feature columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The global per-column cut vectors.
    pub fn cuts(&self) -> &[Vec<f32>] {
        &self.cuts
    }

    fn shard_of(&self, row: usize) -> usize {
        debug_assert!(row < self.rows());
        self.offsets.partition_point(|&o| o <= row) - 1
    }

    /// Invoke `f(shard base row, shard codes, run)` for each maximal run
    /// of `rows` (ascending) that falls inside a single shard.
    fn for_shard_runs(&self, rows: &[usize], mut f: impl FnMut(usize, &[u8], &[usize])) {
        let mut j = 0;
        while j < rows.len() {
            let s = self.shard_of(rows[j]);
            let hi = self.offsets[s + 1];
            let mut k = j + 1;
            while k < rows.len() && rows[k] < hi {
                k += 1;
            }
            let codes = self.cache.get(s);
            f(self.offsets[s], &codes, &rows[j..k]);
            j = k;
        }
    }
}

impl super::binned::BinLike for ShardedBins {
    fn rows(&self) -> usize {
        ShardedBins::rows(self)
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn n_bins(&self, c: usize) -> usize {
        self.cuts[c].len() + 1
    }

    fn cut_value(&self, c: usize, b: usize) -> f32 {
        self.cuts[c][b]
    }

    fn accumulate(
        &self,
        hist: &mut [Cell],
        grad: &[f32],
        hess: &[f32],
        rows: &[usize],
        layout: &HistLayout,
        isa: SimdIsa,
    ) {
        self.for_shard_runs(rows, |base, codes, run| {
            accumulate_codes(hist, codes, base, self.cols, grad, hess, run, layout, isa);
        });
    }

    fn feature_bins(&self, rows: &[usize], feature: usize, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(rows.len());
        self.for_shard_runs(rows, |base, codes, run| {
            out.extend(run.iter().map(|&i| codes[(i - base) * self.cols + feature]));
        });
    }
}

/// Translate each split node's raw-value threshold back into bin space:
/// `threshold` is by construction one of the column's cut values, and
/// cuts are strictly increasing, so `partition_point` recovers the
/// split bin exactly (`value <= cuts[b] ⟺ bin(value) <= b`).
fn node_split_bins(tree: &BinnedTree, cuts: &[Vec<f32>]) -> Vec<u8> {
    tree.nodes()
        .iter()
        .map(|n| match n {
            BinnedNode::Split {
                feature, threshold, ..
            } => cuts[*feature].partition_point(|&c| c < *threshold) as u8,
            BinnedNode::Leaf { .. } => 0,
        })
        .collect()
}

/// Traverse `tree` over one row of bin codes, using the precomputed
/// per-node split bins. Reaches exactly the leaf a raw-feature
/// traversal reaches (see [`node_split_bins`]).
fn predict_codes(tree: &BinnedTree, split_bins: &[u8], code_row: &[u8]) -> f32 {
    let nodes = tree.nodes();
    let mut cur = 0usize;
    loop {
        match &nodes[cur] {
            BinnedNode::Leaf { value } => return *value,
            BinnedNode::Split {
                feature,
                left,
                right,
                ..
            } => {
                cur = if code_row[*feature] <= split_bins[cur] {
                    *left
                } else {
                    *right
                };
            }
        }
    }
}

/// Streamed counterpart of the in-RAM score update: rows the tree was
/// fitted on update straight from the tracked leaf spans; rows left out
/// by subsampling traverse in bin space, shard run by shard run in
/// ascending row order — the identical float additions in the identical
/// order as the raw-feature traversal over a resident matrix.
pub(crate) fn apply_update_streamed(
    tree: &BinnedTree,
    spans: &LeafSpans,
    bins: &ShardedBins,
    scores: &mut [f32],
    eta: f32,
    in_leaf: &mut [bool],
) {
    in_leaf.fill(false);
    for &(start, end, value) in &spans.spans {
        for &i in &spans.rows[start..end] {
            scores[i] += eta * value;
            in_leaf[i] = true;
        }
    }
    let uncovered: Vec<usize> = in_leaf
        .iter()
        .enumerate()
        .filter_map(|(i, &covered)| (!covered).then_some(i))
        .collect();
    if uncovered.is_empty() {
        return;
    }
    let split_bins = node_split_bins(tree, &bins.cuts);
    bins.for_shard_runs(&uncovered, |base, codes, run| {
        for &i in run {
            let row = &codes[(i - base) * bins.cols..(i - base + 1) * bins.cols];
            scores[i] += eta * predict_codes(tree, &split_bins, row);
        }
    });
}

/// Test helper: a [`ShardedBins`] over an in-RAM matrix — the codes of
/// every shard are sliced out of a single row-major buffer, so the
/// streamed store can be compared cell-for-cell (and fitted models
/// byte-for-byte) against the resident one.
#[cfg(test)]
pub(crate) fn sharded_from_matrix(
    x: &crate::data::FeatureMatrix,
    n_bins: usize,
    shard_rows: &[usize],
) -> ShardedBins {
    use crate::gbdt::binned::BinnedMatrix;
    assert_eq!(shard_rows.iter().sum::<usize>(), x.rows());
    let bm = BinnedMatrix::new(x, n_bins);
    let cols = x.cols();
    let cuts: Vec<Vec<f32>> = (0..cols)
        .map(|c| (0..bm.n_bins(c) - 1).map(|b| bm.cut_value(c, b)).collect())
        .collect();
    let mut shards: Vec<Arc<Vec<u8>>> = Vec::new();
    let mut row = 0usize;
    for &r in shard_rows {
        let mut codes = Vec::with_capacity(r * cols);
        for i in row..row + r {
            codes.extend((0..cols).map(|c| bm.bin(i, c) as u8));
        }
        shards.push(Arc::new(codes));
        row += r;
    }
    ShardedBins::new(
        shard_rows,
        cols,
        cuts,
        2,
        Box::new(move |s| Ok(Arc::clone(&shards[s]))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::FeatureMatrix;
    use crate::gbdt::binned::{BinLike, BinnedMatrix};

    fn demo_matrix(rows: usize, cols: usize) -> FeatureMatrix {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i as f32) * 0.73).sin() * 5.0)
            .collect();
        FeatureMatrix::new(rows, cols, data)
    }

    #[test]
    fn sharded_feature_bins_match_resident() {
        let x = demo_matrix(30, 3);
        let bm = BinnedMatrix::new(&x, 8);
        let sb = sharded_from_matrix(&x, 8, &[7, 12, 11]);
        assert_eq!(ShardedBins::rows(&sb), 30);
        assert_eq!(sb.shards(), 3);
        let rows: Vec<usize> = (0..30).filter(|i| i % 2 == 0).collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for f in 0..3 {
            BinLike::feature_bins(&bm, &rows, f, &mut a);
            BinLike::feature_bins(&sb, &rows, f, &mut b);
            assert_eq!(a, b, "feature {f}");
        }
    }

    #[test]
    fn sharded_accumulate_is_bit_identical_to_resident() {
        let x = demo_matrix(40, 4);
        let bm = BinnedMatrix::new(&x, 16);
        let sb = sharded_from_matrix(&x, 16, &[13, 13, 14]);
        let layout = HistLayout::new(&bm);
        let grad: Vec<f32> = (0..40).map(|i| (i as f32 * 0.31).cos()).collect();
        let hess: Vec<f32> = (0..40)
            .map(|i| 1.0 + (i as f32 * 0.17).sin().abs())
            .collect();
        let rows: Vec<usize> = (0..40).collect();
        for isa in [crate::simd::dispatch(), SimdIsa::Scalar] {
            let mut ha = vec![Cell::default(); layout.total];
            let mut hb = vec![Cell::default(); layout.total];
            BinLike::accumulate(&bm, &mut ha, &grad, &hess, &rows, &layout, isa);
            BinLike::accumulate(&sb, &mut hb, &grad, &hess, &rows, &layout, isa);
            for (a, b) in ha.iter().zip(&hb) {
                assert_eq!(a.g.to_bits(), b.g.to_bits());
                assert_eq!(a.h.to_bits(), b.h.to_bits());
            }
        }
    }

    #[test]
    fn cache_is_bounded_and_evicts() {
        let _guard = crate::par::test_env_lock();
        stencilmart_obs::set_enabled(true);
        let x = demo_matrix(24, 2);
        let sb = sharded_from_matrix(&x, 8, &[4, 4, 4, 4, 4, 4]);
        let before = (
            counters::SHARD_LOADS.get(),
            counters::SHARD_EVICTIONS.get(),
            counters::SHARD_CACHE_HITS.get(),
        );
        let rows: Vec<usize> = (0..24).collect();
        let mut buf = Vec::new();
        BinLike::feature_bins(&sb, &rows, 0, &mut buf);
        BinLike::feature_bins(&sb, &rows, 1, &mut buf);
        assert!(
            counters::SHARD_LOADS.get() >= before.0 + 6,
            "cold pass loads every shard"
        );
        assert!(
            counters::SHARD_EVICTIONS.get() > before.1,
            "capacity 2 of 6 must evict"
        );
        // Re-walking the last cached shard hits.
        let tail: Vec<usize> = (20..24).collect();
        BinLike::feature_bins(&sb, &tail, 0, &mut buf);
        assert!(counters::SHARD_CACHE_HITS.get() > before.2);
    }

    #[test]
    fn bin_space_traversal_matches_raw_traversal() {
        let x = demo_matrix(60, 3);
        let bm = BinnedMatrix::new(&x, 12);
        let grad: Vec<f32> = (0..60).map(|i| (i as f32 * 0.41).sin()).collect();
        let hess = vec![1.0f32; 60];
        let idx: Vec<usize> = (0..60).collect();
        let cfg = crate::gbdt::tree::TreeConfig::default();
        let tree = BinnedTree::fit(&bm, &grad, &hess, &idx, &cfg);
        let cuts: Vec<Vec<f32>> = (0..3)
            .map(|c| (0..bm.n_bins(c) - 1).map(|b| bm.cut_value(c, b)).collect())
            .collect();
        let split_bins = node_split_bins(&tree, &cuts);
        for r in 0..60 {
            let codes: Vec<u8> = (0..3).map(|c| bm.bin(r, c) as u8).collect();
            assert_eq!(
                predict_codes(&tree, &split_bins, &codes).to_bits(),
                tree.predict_row(x.row(r)).to_bits(),
                "row {r}"
            );
        }
    }
}

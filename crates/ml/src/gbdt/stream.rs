//! Out-of-core bin storage for the GBDT engine: the same level-wise
//! grower that runs over a resident [`BinnedMatrix`] also runs over
//! [`ShardedBins`], which resolves bin codes shard-by-shard through a
//! bounded cache backed by a caller-supplied loader (in practice the
//! on-disk columnar shard store in the `stencilmart` crate).
//!
//! Bit-identity with the in-RAM path is structural, not approximate:
//! the grower hands every storage backend the same ascending row lists,
//! and a shard run of an ascending list performs the identical sequence
//! of code reads and float additions the resident matrix would — shard
//! boundaries only decide *when* a backing buffer is resolved, never
//! the order of arithmetic. Score updates for rows the tree was not
//! fitted on traverse in *bin space*: cuts are strictly increasing, so
//! `value <= threshold ⟺ bin(value) <= bin(threshold)` and the bin-code
//! traversal reaches exactly the leaf a raw-feature traversal reaches.
//!
//! Histogram batches run **shard-major** (see DESIGN.md §17): the
//! `build_partials` override walks shards ascending in the outer loop
//! and, per resident shard, accumulates that shard's run of every task
//! into the task's persistent partial. Because the grower's row lists
//! ascend, a task meets each shard in at most one contiguous run and
//! its runs arrive in ascending shard order — so each partial receives
//! exactly the additions of its rows, in row order, which is the
//! `build_partials` contract. Each shard is resolved once per level
//! instead of once per `(node, block)`, dropping loads per level from
//! O(shards × active nodes) to O(shards).
//!
//! [`BinnedMatrix`]: crate::gbdt::binned::BinnedMatrix

use crate::gbdt::binned::{accumulate_codes, BinnedNode, BinnedTree, Cell, HistLayout};
use crate::gbdt::tree::LeafSpans;
use crate::par::par_for_each_mut;
use crate::simd::SimdIsa;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use stencilmart_obs::counters;

/// Loader callback resolving one shard's stored CODES section bytes —
/// raw row-major `u8` codes for plain stores, or a codec frame /
/// little-endian `u16` words for compressed / wide stores (the paired
/// [`ShardDecoder`] interprets them). Called outside the cache lock, so
/// loads for different shards overlap across workers.
pub type ShardLoader = Box<dyn Fn(usize) -> io::Result<Arc<Vec<u8>>> + Send + Sync>;

/// Decoder turning one shard's cached section bytes into usable bin
/// codes. The cache stores the *encoded* bytes (so a compressed store
/// fits more shards per byte of budget) and decoding happens once per
/// shard resolution — amortized across a whole level by the shard-major
/// schedule. Stores without a codec or wide codes need no decoder; the
/// cached bytes are served as `u8` codes directly.
pub type ShardDecoder = Box<dyn Fn(usize, &[u8]) -> io::Result<ShardCodes> + Send + Sync>;

/// One shard's resolved bin codes, row-major, at whichever width the
/// backing store uses. Which variant a store produces never changes the
/// accumulation order — [`BinCode`](crate::gbdt::binned::BinCode) makes
/// the inner loops width-generic — so `u8` and `u16` stores of the same
/// data fit bit-identical trees.
pub enum ShardCodes {
    /// Raw `u8` codes shared with the cache entry (no decode step).
    Shared(Arc<Vec<u8>>),
    /// Decoded `u8` codes (codec stores at byte width).
    OwnedU8(Vec<u8>),
    /// Decoded `u16` codes (stores with more than 256 bins).
    U16(Vec<u16>),
}

impl ShardCodes {
    /// The code at flat row-major offset `at`, widened to `u16`.
    #[inline]
    pub fn bin(&self, at: usize) -> u16 {
        match self {
            ShardCodes::Shared(c) => u16::from(c[at]),
            ShardCodes::OwnedU8(c) => u16::from(c[at]),
            ShardCodes::U16(c) => c[at],
        }
    }

    /// Accumulate one ascending run through the width-generic kernel.
    #[allow(clippy::too_many_arguments)]
    fn accumulate(
        &self,
        hist: &mut [Cell],
        row_base: usize,
        cols: usize,
        grad: &[f32],
        hess: &[f32],
        rows: &[usize],
        layout: &HistLayout,
        isa: SimdIsa,
    ) {
        match self {
            ShardCodes::Shared(c) => {
                accumulate_codes(hist, c, row_base, cols, grad, hess, rows, layout, isa)
            }
            ShardCodes::OwnedU8(c) => {
                accumulate_codes(hist, c, row_base, cols, grad, hess, rows, layout, isa)
            }
            ShardCodes::U16(c) => {
                accumulate_codes(hist, c, row_base, cols, grad, hess, rows, layout, isa)
            }
        }
    }
}

/// A sharded bin-code store the GBDT grower can train from without the
/// full code matrix ever being resident: shard `s` covers global rows
/// `offsets[s] .. offsets[s+1]`, and at most `capacity` shards of
/// (encoded) codes are cached at once.
pub struct ShardedBins {
    /// Per-shard start row, plus the total row count as a sentinel
    /// (`len == shards + 1`).
    offsets: Vec<usize>,
    cols: usize,
    /// Global per-column quantile cuts (shared by every shard — shards
    /// are binned against the corpus-wide cut vectors).
    cuts: Vec<Vec<f32>>,
    cache: ShardCache,
    /// Interprets cached section bytes for codec / wide-code stores;
    /// `None` serves cached bytes directly as `u8` codes.
    decoder: Option<ShardDecoder>,
}

/// One cached shard: `(shard id, encoded bytes, last-use tick)`.
type CacheEntry = (usize, Arc<Vec<u8>>, u64);

struct ShardCache {
    capacity: usize,
    /// Linear scan is fine at the few-entry capacities this cache
    /// runs at.
    entries: Mutex<Vec<CacheEntry>>,
    tick: AtomicU64,
    hits: AtomicU64,
    lookups: AtomicU64,
    loader: ShardLoader,
}

impl ShardCache {
    /// Record one lookup and republish the cache's lifetime hit rate
    /// (per-mille) to the `shard_cache_hit_rate_pm` gauge.
    fn note_lookup(&self, hit: bool) {
        let hits = self.hits.fetch_add(hit as u64, Ordering::Relaxed) + hit as u64;
        let lookups = self.lookups.fetch_add(1, Ordering::Relaxed) + 1;
        counters::SHARD_CACHE_HIT_RATE_PM.set(hits * 1000 / lookups);
    }

    fn get(&self, shard: usize) -> Arc<Vec<u8>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        {
            let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(e) = entries.iter_mut().find(|e| e.0 == shard) {
                e.2 = tick;
                counters::SHARD_CACHE_HITS.inc();
                self.note_lookup(true);
                return Arc::clone(&e.1);
            }
        }
        // Load outside the lock so concurrent workers stream different
        // shards in parallel; a rare duplicate load of the same shard
        // costs I/O but never correctness.
        counters::SHARD_LOADS.inc();
        self.note_lookup(false);
        let codes = (self.loader)(shard)
            .unwrap_or_else(|e| panic!("shard {shard} failed to load during training: {e}"));
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = entries.iter_mut().find(|e| e.0 == shard) {
            e.2 = tick;
            return Arc::clone(&e.1);
        }
        while entries.len() >= self.capacity.max(1) {
            let oldest = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.2)
                .map(|(i, _)| i)
                .expect("non-empty cache");
            entries.swap_remove(oldest);
            counters::SHARD_EVICTIONS.inc();
        }
        entries.push((shard, Arc::clone(&codes), tick));
        codes
    }
}

impl ShardedBins {
    /// Build a store over `shard_rows[s]` rows per shard, `cols`
    /// features binned against the global `cuts`, keeping at most
    /// `cache_shards` shards of codes resident. The loader's bytes are
    /// served directly as `u8` codes; stores with a codec or wide code
    /// words attach an interpreter with [`ShardedBins::with_decoder`].
    pub fn new(
        shard_rows: &[usize],
        cols: usize,
        cuts: Vec<Vec<f32>>,
        cache_shards: usize,
        loader: ShardLoader,
    ) -> ShardedBins {
        assert_eq!(cuts.len(), cols, "one cut vector per column");
        let mut offsets = Vec::with_capacity(shard_rows.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for &r in shard_rows {
            total += r;
            offsets.push(total);
        }
        ShardedBins {
            offsets,
            cols,
            cuts,
            cache: ShardCache {
                capacity: cache_shards.max(1),
                entries: Mutex::new(Vec::new()),
                tick: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                lookups: AtomicU64::new(0),
                loader,
            },
            decoder: None,
        }
    }

    /// Attach a decoder that interprets the loader's cached bytes
    /// (codec frames, little-endian `u16` words, …) into [`ShardCodes`].
    pub fn with_decoder(mut self, decoder: ShardDecoder) -> ShardedBins {
        self.decoder = Some(decoder);
        self
    }

    /// Total rows across all shards.
    pub fn rows(&self) -> usize {
        *self.offsets.last().expect("sentinel offset")
    }

    /// Number of feature columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The global per-column cut vectors.
    pub fn cuts(&self) -> &[Vec<f32>] {
        &self.cuts
    }

    fn shard_of(&self, row: usize) -> usize {
        debug_assert!(row < self.rows());
        self.offsets.partition_point(|&o| o <= row) - 1
    }

    /// Fetch one shard through the cache and decode it for use.
    fn resolve(&self, shard: usize) -> ShardCodes {
        let bytes = self.cache.get(shard);
        match &self.decoder {
            None => ShardCodes::Shared(bytes),
            Some(d) => d(shard, &bytes)
                .unwrap_or_else(|e| panic!("shard {shard} failed to decode during training: {e}")),
        }
    }

    /// Maximal single-shard runs of the ascending `rows`, as
    /// `(shard, lo, hi)` index ranges into `rows`.
    fn runs_in(&self, rows: &[usize]) -> Vec<(usize, usize, usize)> {
        let mut runs = Vec::new();
        let mut j = 0;
        while j < rows.len() {
            let s = self.shard_of(rows[j]);
            let hi = self.offsets[s + 1];
            let mut k = j + 1;
            while k < rows.len() && rows[k] < hi {
                k += 1;
            }
            runs.push((s, j, k));
            j = k;
        }
        runs
    }

    /// Invoke `f(shard base row, shard codes, run)` for each maximal run
    /// of `rows` (ascending) that falls inside a single shard.
    fn for_shard_runs(&self, rows: &[usize], mut f: impl FnMut(usize, &ShardCodes, &[usize])) {
        for (s, lo, hi) in self.runs_in(rows) {
            let codes = self.resolve(s);
            f(self.offsets[s], &codes, &rows[lo..hi]);
        }
    }
}

impl super::binned::BinLike for ShardedBins {
    fn rows(&self) -> usize {
        ShardedBins::rows(self)
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn n_bins(&self, c: usize) -> usize {
        self.cuts[c].len() + 1
    }

    fn cut_value(&self, c: usize, b: usize) -> f32 {
        self.cuts[c][b]
    }

    fn accumulate(
        &self,
        hist: &mut [Cell],
        grad: &[f32],
        hess: &[f32],
        rows: &[usize],
        layout: &HistLayout,
        isa: SimdIsa,
    ) {
        self.for_shard_runs(rows, |base, codes, run| {
            codes.accumulate(hist, base, self.cols, grad, hess, run, layout, isa);
        });
    }

    fn feature_bins(&self, rows: &[usize], feature: usize, out: &mut Vec<u16>) {
        out.clear();
        out.reserve(rows.len());
        self.for_shard_runs(rows, |base, codes, run| {
            out.extend(
                run.iter()
                    .map(|&i| codes.bin((i - base) * self.cols + feature)),
            );
        });
    }

    /// Shard-major batch resolve: one descending sweep over the shards
    /// serves every request. Code writes are positional (no float
    /// arithmetic), so the sweep direction is free — walking shards
    /// *descending* starts on the LRU tail the ascending histogram pass
    /// just left resident and leaves the low shards cached for the next
    /// level's ascending pass (boustrophedon reuse).
    fn feature_bins_many(
        &self,
        idx: &[usize],
        reqs: &[(usize, usize, usize)],
        out: &mut [Vec<u16>],
    ) {
        let mut runs_by_shard: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); self.shards()];
        for (k, &(start, end, _)) in reqs.iter().enumerate() {
            out[k].clear();
            out[k].resize(end - start, 0);
            for (s, lo, hi) in self.runs_in(&idx[start..end]) {
                runs_by_shard[s].push((k, lo, hi));
            }
        }
        for s in (0..self.shards()).rev() {
            if runs_by_shard[s].is_empty() {
                continue;
            }
            let codes = self.resolve(s);
            let base = self.offsets[s];
            for &(k, lo, hi) in &runs_by_shard[s] {
                let (start, _, feature) = reqs[k];
                for r in lo..hi {
                    out[k][r] = codes.bin((idx[start + r] - base) * self.cols + feature);
                }
            }
        }
    }

    /// The tentpole schedule: shards ascending in the outer loop, tasks
    /// in the inner. A task's rows ascend, so it meets each shard in at
    /// most one maximal run and its runs arrive in ascending shard
    /// order — accumulating each run into the task's *persistent*
    /// partial (allocated zeroed once, never merged from fresh buffers)
    /// therefore replays exactly the float-addition sequence of the
    /// default row-major schedule, for any cache size or worker count.
    /// Each shard is resolved once per call instead of once per task.
    fn build_partials(
        &self,
        par: bool,
        grad: &[f32],
        hess: &[f32],
        idx: &[usize],
        tasks: &[(usize, usize, usize)],
        layout: &HistLayout,
        isa: SimdIsa,
    ) -> Vec<Vec<Cell>> {
        counters::HIST_LEVEL_PASSES.inc();
        let mut runs_by_shard: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); self.shards()];
        for (t, &(_, lo, hi)) in tasks.iter().enumerate() {
            for (s, rlo, rhi) in self.runs_in(&idx[lo..hi]) {
                runs_by_shard[s].push((t, lo + rlo, lo + rhi));
            }
        }
        let mut partials: Vec<Vec<Cell>> = tasks
            .iter()
            .map(|_| vec![Cell::default(); layout.total])
            .collect();
        for (s, runs) in runs_by_shard.iter().enumerate() {
            if runs.is_empty() {
                continue;
            }
            let codes = self.resolve(s);
            let base = self.offsets[s];
            // Runs within one shard belong to distinct tasks, so their
            // partials never alias: take them out, accumulate across
            // workers, and put them back.
            let mut work: Vec<(Vec<Cell>, usize, usize)> = runs
                .iter()
                .map(|&(t, lo, hi)| (std::mem::take(&mut partials[t]), lo, hi))
                .collect();
            par_for_each_mut(par, &mut work, |(hist, lo, hi)| {
                codes.accumulate(
                    hist,
                    base,
                    self.cols,
                    grad,
                    hess,
                    &idx[*lo..*hi],
                    layout,
                    isa,
                );
            });
            for (&(t, _, _), (hist, _, _)) in runs.iter().zip(work) {
                partials[t] = hist;
            }
        }
        partials
    }
}

/// Translate each split node's raw-value threshold back into bin space:
/// `threshold` is by construction one of the column's cut values, and
/// cuts are strictly increasing, so `partition_point` recovers the
/// split bin exactly (`value <= cuts[b] ⟺ bin(value) <= b`).
fn node_split_bins(tree: &BinnedTree, cuts: &[Vec<f32>]) -> Vec<u16> {
    tree.nodes()
        .iter()
        .map(|n| match n {
            BinnedNode::Split {
                feature, threshold, ..
            } => cuts[*feature].partition_point(|&c| c < *threshold) as u16,
            BinnedNode::Leaf { .. } => 0,
        })
        .collect()
}

/// Traverse `tree` over one row of bin codes (`code_at(f)` resolves the
/// row's code for feature `f`), using the precomputed per-node split
/// bins. Reaches exactly the leaf a raw-feature traversal reaches (see
/// [`node_split_bins`]).
fn predict_codes(tree: &BinnedTree, split_bins: &[u16], code_at: impl Fn(usize) -> u16) -> f32 {
    let nodes = tree.nodes();
    let mut cur = 0usize;
    loop {
        match &nodes[cur] {
            BinnedNode::Leaf { value } => return *value,
            BinnedNode::Split {
                feature,
                left,
                right,
                ..
            } => {
                cur = if code_at(*feature) <= split_bins[cur] {
                    *left
                } else {
                    *right
                };
            }
        }
    }
}

/// Streamed counterpart of the in-RAM score update: rows the tree was
/// fitted on update straight from the tracked leaf spans; rows left out
/// by subsampling traverse in bin space, shard run by shard run in
/// ascending row order — the identical float additions in the identical
/// order as the raw-feature traversal over a resident matrix.
pub(crate) fn apply_update_streamed(
    tree: &BinnedTree,
    spans: &LeafSpans,
    bins: &ShardedBins,
    scores: &mut [f32],
    eta: f32,
    in_leaf: &mut [bool],
) {
    in_leaf.fill(false);
    for &(start, end, value) in &spans.spans {
        for &i in &spans.rows[start..end] {
            scores[i] += eta * value;
            in_leaf[i] = true;
        }
    }
    let uncovered: Vec<usize> = in_leaf
        .iter()
        .enumerate()
        .filter_map(|(i, &covered)| (!covered).then_some(i))
        .collect();
    if uncovered.is_empty() {
        return;
    }
    let split_bins = node_split_bins(tree, &bins.cuts);
    bins.for_shard_runs(&uncovered, |base, codes, run| {
        for &i in run {
            let row = (i - base) * bins.cols;
            scores[i] += eta * predict_codes(tree, &split_bins, |f| codes.bin(row + f));
        }
    });
}

/// Test helper: a [`ShardedBins`] over an in-RAM matrix — the codes of
/// every shard are sliced out of a single row-major buffer, so the
/// streamed store can be compared cell-for-cell (and fitted models
/// byte-for-byte) against the resident one.
#[cfg(test)]
pub(crate) fn sharded_from_matrix(
    x: &crate::data::FeatureMatrix,
    n_bins: usize,
    shard_rows: &[usize],
) -> ShardedBins {
    use crate::gbdt::binned::BinnedMatrix;
    assert_eq!(shard_rows.iter().sum::<usize>(), x.rows());
    let bm = BinnedMatrix::new(x, n_bins);
    let cols = x.cols();
    let cuts: Vec<Vec<f32>> = (0..cols)
        .map(|c| (0..bm.n_bins(c) - 1).map(|b| bm.cut_value(c, b)).collect())
        .collect();
    let mut shards: Vec<Arc<Vec<u8>>> = Vec::new();
    let mut row = 0usize;
    for &r in shard_rows {
        let mut codes = Vec::with_capacity(r * cols);
        for i in row..row + r {
            codes.extend((0..cols).map(|c| bm.bin(i, c) as u8));
        }
        shards.push(Arc::new(codes));
        row += r;
    }
    ShardedBins::new(
        shard_rows,
        cols,
        cuts,
        2,
        Box::new(move |s| Ok(Arc::clone(&shards[s]))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::FeatureMatrix;
    use crate::gbdt::binned::{BinLike, BinnedMatrix};

    fn demo_matrix(rows: usize, cols: usize) -> FeatureMatrix {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i as f32) * 0.73).sin() * 5.0)
            .collect();
        FeatureMatrix::new(rows, cols, data)
    }

    /// A sharded store whose decoder widens every cached `u8` code into
    /// an owned `u16` buffer — the narrowest faithful model of a
    /// wide-code store, sharing its loader bytes with a plain `u8`
    /// store so the two can be compared bit-for-bit.
    fn widened_from_matrix(
        x: &FeatureMatrix,
        n_bins: usize,
        shard_rows: &[usize],
        cache_shards: usize,
    ) -> ShardedBins {
        let bm = BinnedMatrix::new(x, n_bins);
        let cols = x.cols();
        let cuts: Vec<Vec<f32>> = (0..cols)
            .map(|c| (0..bm.n_bins(c) - 1).map(|b| bm.cut_value(c, b)).collect())
            .collect();
        let mut shards: Vec<Arc<Vec<u8>>> = Vec::new();
        let mut row = 0usize;
        for &r in shard_rows {
            let mut codes = Vec::with_capacity(r * cols);
            for i in row..row + r {
                codes.extend((0..cols).map(|c| bm.bin(i, c) as u8));
            }
            shards.push(Arc::new(codes));
            row += r;
        }
        ShardedBins::new(
            shard_rows,
            cols,
            cuts,
            cache_shards,
            Box::new(move |s| Ok(Arc::clone(&shards[s]))),
        )
        .with_decoder(Box::new(|_, bytes| {
            Ok(ShardCodes::U16(
                bytes.iter().map(|&b| u16::from(b)).collect(),
            ))
        }))
    }

    #[test]
    fn sharded_feature_bins_match_resident() {
        let x = demo_matrix(30, 3);
        let bm = BinnedMatrix::new(&x, 8);
        let sb = sharded_from_matrix(&x, 8, &[7, 12, 11]);
        assert_eq!(ShardedBins::rows(&sb), 30);
        assert_eq!(sb.shards(), 3);
        let rows: Vec<usize> = (0..30).filter(|i| i % 2 == 0).collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for f in 0..3 {
            BinLike::feature_bins(&bm, &rows, f, &mut a);
            BinLike::feature_bins(&sb, &rows, f, &mut b);
            assert_eq!(a, b, "feature {f}");
        }
    }

    #[test]
    fn sharded_accumulate_is_bit_identical_to_resident() {
        let x = demo_matrix(40, 4);
        let bm = BinnedMatrix::new(&x, 16);
        let sb = sharded_from_matrix(&x, 16, &[13, 13, 14]);
        let wide = widened_from_matrix(&x, 16, &[13, 13, 14], 2);
        let layout = HistLayout::new(&bm);
        let grad: Vec<f32> = (0..40).map(|i| (i as f32 * 0.31).cos()).collect();
        let hess: Vec<f32> = (0..40)
            .map(|i| 1.0 + (i as f32 * 0.17).sin().abs())
            .collect();
        let rows: Vec<usize> = (0..40).collect();
        for isa in [crate::simd::dispatch(), SimdIsa::Scalar] {
            let mut ha = vec![Cell::default(); layout.total];
            let mut hb = vec![Cell::default(); layout.total];
            let mut hw = vec![Cell::default(); layout.total];
            BinLike::accumulate(&bm, &mut ha, &grad, &hess, &rows, &layout, isa);
            BinLike::accumulate(&sb, &mut hb, &grad, &hess, &rows, &layout, isa);
            BinLike::accumulate(&wide, &mut hw, &grad, &hess, &rows, &layout, isa);
            for (a, (b, w)) in ha.iter().zip(hb.iter().zip(&hw)) {
                assert_eq!(a.g.to_bits(), b.g.to_bits());
                assert_eq!(a.h.to_bits(), b.h.to_bits());
                assert_eq!(a.g.to_bits(), w.g.to_bits(), "u16 decode diverged");
                assert_eq!(a.h.to_bits(), w.h.to_bits(), "u16 decode diverged");
            }
        }
    }

    #[test]
    fn shard_major_partials_match_default_schedule() {
        // The override must reproduce the default (task-major) schedule
        // bit-for-bit: same tasks, same partials, any cache size /
        // parallelism — including tasks that straddle shard boundaries
        // and an empty task.
        let _guard = crate::par::test_env_lock();
        let x = demo_matrix(50, 3);
        let bm = BinnedMatrix::new(&x, 8);
        let layout = HistLayout::new(&bm);
        let grad: Vec<f32> = (0..50).map(|i| (i as f32 * 0.23).sin()).collect();
        let hess: Vec<f32> = (0..50)
            .map(|i| 1.0 + (i as f32 * 0.11).cos().abs())
            .collect();
        let idx: Vec<usize> = (0..50).collect();
        let tasks = [
            (0usize, 0usize, 9usize),
            (0, 9, 18),
            (1, 18, 18),
            (2, 18, 41),
            (3, 41, 50),
        ];
        let isa = crate::simd::dispatch();
        let expect = BinLike::build_partials(&bm, false, &grad, &hess, &idx, &tasks, &layout, isa);
        for cache in [1usize, 2, 5] {
            for par in [false, true] {
                let sb = widened_from_matrix(&x, 8, &[11, 13, 9, 17], cache);
                let got =
                    BinLike::build_partials(&sb, par, &grad, &hess, &idx, &tasks, &layout, isa);
                assert_eq!(expect.len(), got.len());
                for (e, g) in expect.iter().zip(&got) {
                    for (a, b) in e.iter().zip(g) {
                        assert_eq!(a.g.to_bits(), b.g.to_bits(), "cache {cache} par {par}");
                        assert_eq!(a.h.to_bits(), b.h.to_bits(), "cache {cache} par {par}");
                    }
                }
            }
        }
    }

    #[test]
    fn shard_major_pass_resolves_each_shard_once() {
        let _guard = crate::par::test_env_lock();
        stencilmart_obs::set_enabled(true);
        let x = demo_matrix(48, 2);
        let shard_rows = [8usize; 6];
        // Cache of 1: any schedule that revisits a shard must reload it.
        let mut sb = sharded_from_matrix(&x, 8, &shard_rows);
        sb.cache.capacity = 1;
        let layout = HistLayout::new(&sb);
        let grad = vec![1.0f32; 48];
        let hess = vec![1.0f32; 48];
        let idx: Vec<usize> = (0..48).collect();
        // 8 tasks of 6 rows each: every task straddles shard boundaries
        // under the old row-major schedule this costs ~2 loads per task.
        let tasks: Vec<(usize, usize, usize)> = (0..8).map(|t| (t, t * 6, (t + 1) * 6)).collect();
        let before = (
            counters::SHARD_LOADS.get(),
            counters::HIST_LEVEL_PASSES.get(),
        );
        let _ = BinLike::build_partials(
            &sb,
            false,
            &grad,
            &hess,
            &idx,
            &tasks,
            &layout,
            SimdIsa::Scalar,
        );
        assert_eq!(
            counters::SHARD_LOADS.get() - before.0,
            6,
            "one load per shard per pass"
        );
        assert_eq!(counters::HIST_LEVEL_PASSES.get() - before.1, 1);
    }

    #[test]
    fn batched_feature_bins_match_singles() {
        let x = demo_matrix(40, 3);
        let sb = sharded_from_matrix(&x, 8, &[15, 15, 10]);
        let idx: Vec<usize> = (0..40).filter(|i| i % 3 != 1).collect();
        let reqs = [(0usize, 10usize, 2usize), (10, 11, 0), (11, idx.len(), 1)];
        let mut batched: Vec<Vec<u16>> = vec![Vec::new(); reqs.len()];
        BinLike::feature_bins_many(&sb, &idx, &reqs, &mut batched);
        for (&(start, end, feature), got) in reqs.iter().zip(&batched) {
            let mut single = Vec::new();
            BinLike::feature_bins(&sb, &idx[start..end], feature, &mut single);
            assert_eq!(&single, got, "req ({start}, {end}, {feature})");
        }
    }

    #[test]
    fn cache_is_bounded_and_evicts() {
        let _guard = crate::par::test_env_lock();
        stencilmart_obs::set_enabled(true);
        let x = demo_matrix(24, 2);
        let sb = sharded_from_matrix(&x, 8, &[4, 4, 4, 4, 4, 4]);
        let before = (
            counters::SHARD_LOADS.get(),
            counters::SHARD_EVICTIONS.get(),
            counters::SHARD_CACHE_HITS.get(),
        );
        let rows: Vec<usize> = (0..24).collect();
        let mut buf = Vec::new();
        BinLike::feature_bins(&sb, &rows, 0, &mut buf);
        BinLike::feature_bins(&sb, &rows, 1, &mut buf);
        assert!(
            counters::SHARD_LOADS.get() >= before.0 + 6,
            "cold pass loads every shard"
        );
        assert!(
            counters::SHARD_EVICTIONS.get() > before.1,
            "capacity 2 of 6 must evict"
        );
        // Re-walking the last cached shard hits.
        let tail: Vec<usize> = (20..24).collect();
        BinLike::feature_bins(&sb, &tail, 0, &mut buf);
        assert!(counters::SHARD_CACHE_HITS.get() > before.2);
        let rate = counters::SHARD_CACHE_HIT_RATE_PM.get();
        assert!(rate > 0 && rate <= 1000, "hit-rate gauge in per-mille");
    }

    #[test]
    fn bin_space_traversal_matches_raw_traversal() {
        let x = demo_matrix(60, 3);
        let bm = BinnedMatrix::new(&x, 12);
        let grad: Vec<f32> = (0..60).map(|i| (i as f32 * 0.41).sin()).collect();
        let hess = vec![1.0f32; 60];
        let idx: Vec<usize> = (0..60).collect();
        let cfg = crate::gbdt::tree::TreeConfig::default();
        let tree = BinnedTree::fit(&bm, &grad, &hess, &idx, &cfg);
        let cuts: Vec<Vec<f32>> = (0..3)
            .map(|c| (0..bm.n_bins(c) - 1).map(|b| bm.cut_value(c, b)).collect())
            .collect();
        let split_bins = node_split_bins(&tree, &cuts);
        for r in 0..60 {
            let codes: Vec<u16> = (0..3).map(|c| bm.bin(r, c) as u16).collect();
            assert_eq!(
                predict_codes(&tree, &split_bins, |f| codes[f]).to_bits(),
                tree.predict_row(x.row(r)).to_bits(),
                "row {r}"
            );
        }
    }
}

//! Network containers: a sequential stack and the two-branch ConvMLP
//! topology (paper Fig. 8), where a CNN branch encodes the stencil tensor
//! and an MLP branch encodes parameter + hardware features before a joint
//! head.

use crate::nn::layer::Layer;
use crate::tensor::Tensor;

/// A trainable network.
pub trait Net: Send {
    /// Forward pass over a batch.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;
    /// Backward pass from the loss gradient.
    fn backward(&mut self, grad: &Tensor);
    /// Visit all `(parameters, gradients)` buffers.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));
    /// Zero all accumulated gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |_, g| g.fill(0.0));
    }
}

/// Count the trainable parameters of a network.
pub fn param_count(net: &mut dyn Net) -> usize {
    let mut n = 0usize;
    net.visit_params(&mut |p, _| n += p.len());
    n
}

/// Flatten every parameter buffer into one vector, in `visit_params`
/// order. Together with [`import_params`] this gives any `Net` a stable
/// serialization: the architecture is rebuilt from its spec and the
/// weights are overwritten wholesale.
pub fn export_params(net: &mut dyn Net) -> Vec<f32> {
    let mut out = Vec::new();
    net.visit_params(&mut |p, _| out.extend_from_slice(p));
    out
}

/// Overwrite every parameter buffer from a flat vector produced by
/// [`export_params`] on an identically shaped network. Errors (instead
/// of panicking) when the vector length disagrees with the network's
/// parameter count — the symptom of loading weights into the wrong
/// architecture.
pub fn import_params(net: &mut dyn Net, flat: &[f32]) -> Result<(), String> {
    let expected = param_count(net);
    if flat.len() != expected {
        return Err(format!(
            "parameter count mismatch: network has {expected} parameters, got {}",
            flat.len()
        ));
    }
    let mut pos = 0usize;
    net.visit_params(&mut |p, _| {
        p.copy_from_slice(&flat[pos..pos + p.len()]);
        pos += p.len();
    });
    Ok(())
}

/// A linear stack of layers.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Create an empty stack.
    pub fn new() -> Sequential {
        Sequential { layers: Vec::new() }
    }

    /// Append a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Sequential {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Net for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        // Feed the first layer straight from `x` so an empty stack is the
        // only case that pays for a clone of the input batch.
        let mut layers = self.layers.iter_mut();
        let Some(first) = layers.next() else {
            return x.clone();
        };
        let mut cur = first.forward(x, train);
        for l in layers {
            cur = l.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad: &Tensor) {
        let mut layers = self.layers.iter_mut().rev();
        let Some(last) = layers.next() else {
            return;
        };
        let mut cur = last.backward(grad);
        for l in layers {
            cur = l.backward(&cur);
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }
}

/// Two-branch network: columns `[0, split)` of each input row feed the
/// `conv` branch (reshaped to `conv_shape`, typically `[1, 9, 9]` or
/// `[1, 9, 9, 9]`); the remaining columns feed the `mlp` branch; branch
/// outputs are concatenated and passed through `head`.
pub struct TwoBranch {
    /// Column split point.
    split: usize,
    /// Per-row shape for the conv branch input (without batch dim).
    conv_shape: Vec<usize>,
    conv: Sequential,
    mlp: Sequential,
    head: Sequential,
    conv_out_shape: Vec<usize>,
}

impl TwoBranch {
    /// Assemble a two-branch network.
    pub fn new(
        split: usize,
        conv_shape: Vec<usize>,
        conv: Sequential,
        mlp: Sequential,
        head: Sequential,
    ) -> TwoBranch {
        assert_eq!(
            conv_shape.iter().product::<usize>(),
            split,
            "conv_shape must hold exactly the first `split` columns"
        );
        TwoBranch {
            split,
            conv_shape,
            conv,
            mlp,
            head,
            conv_out_shape: Vec::new(),
        }
    }
}

impl Net for TwoBranch {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (xa, xb) = x.split_cols(self.split);
        let mut shape = vec![xa.batch()];
        shape.extend_from_slice(&self.conv_shape);
        let a = self.conv.forward(&xa.reshape(&shape), train);
        self.conv_out_shape = a.shape().to_vec();
        let a2 = a.reshape(&[a.batch(), a.row_len()]);
        let b = self.mlp.forward(&xb, train);
        let joint = Tensor::concat_cols(&a2, &b);
        self.head.forward(&joint, train)
    }

    fn backward(&mut self, grad: &Tensor) {
        // Manually propagate through the head to recover the joint grad.
        let mut layers = self.head.layers.iter_mut().rev();
        let mut cur = match layers.next() {
            Some(last) => last.backward(grad),
            None => grad.clone(),
        };
        for l in layers {
            cur = l.backward(&cur);
        }
        let conv_w: usize = self.conv_out_shape[1..].iter().product();
        let (ga, gb) = cur.split_cols(conv_w);
        self.conv.backward(&ga.reshape(&self.conv_out_shape));
        self.mlp.backward(&gb);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.conv.visit_params(f);
        self.mlp.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::conv::Conv2d;
    use crate::nn::layer::{Dense, Relu};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sequential_chains_layers() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = Sequential::new()
            .push(Dense::new(4, 8, &mut rng))
            .push(Relu::new())
            .push(Dense::new(8, 2, &mut rng));
        assert_eq!(net.len(), 3);
        let x = Tensor::from_vec(&[3, 4], vec![0.1; 12]);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[3, 2]);
        net.backward(&y);
        let mut bufs = 0;
        net.visit_params(&mut |_, _| bufs += 1);
        assert_eq!(bufs, 4); // two dense layers × (w, b)
    }

    #[test]
    fn two_branch_routes_columns() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let conv = Sequential::new()
            .push(Conv2d::new(1, 2, 3, &mut rng))
            .push(Relu::new());
        let mlp = Sequential::new()
            .push(Dense::new(5, 4, &mut rng))
            .push(Relu::new());
        // conv out: 2×7×7 = 98; joint = 98 + 4 = 102
        let head = Sequential::new().push(Dense::new(102, 1, &mut rng));
        let mut net = TwoBranch::new(81, vec![1, 9, 9], conv, mlp, head);
        let x = Tensor::from_vec(&[2, 86], vec![0.5; 172]);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[2, 1]);
        net.backward(&y);
        let mut any_nonzero = false;
        net.visit_params(&mut |_, g| {
            if g.iter().any(|&v| v != 0.0) {
                any_nonzero = true;
            }
        });
        assert!(any_nonzero, "gradients must flow into both branches");
    }

    #[test]
    #[should_panic(expected = "conv_shape")]
    fn two_branch_checks_split() {
        let conv = Sequential::new();
        let mlp = Sequential::new();
        let head = Sequential::new();
        TwoBranch::new(80, vec![1, 9, 9], conv, mlp, head);
    }

    #[test]
    fn param_export_import_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut a = Sequential::new()
            .push(Dense::new(4, 8, &mut rng))
            .push(Relu::new())
            .push(Dense::new(8, 2, &mut rng));
        let mut rng2 = ChaCha8Rng::seed_from_u64(99);
        let mut b = Sequential::new()
            .push(Dense::new(4, 8, &mut rng2))
            .push(Relu::new())
            .push(Dense::new(8, 2, &mut rng2));
        let flat = export_params(&mut a);
        assert_eq!(flat.len(), param_count(&mut a));
        import_params(&mut b, &flat).expect("matching shapes");
        let x = Tensor::from_vec(&[2, 4], vec![0.3; 8]);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        assert_eq!(
            ya.data(),
            yb.data(),
            "imported weights must be bit-identical"
        );
    }

    #[test]
    fn import_params_rejects_wrong_length() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut net = Sequential::new().push(Dense::new(3, 2, &mut rng));
        let err = import_params(&mut net, &[0.0; 5]).unwrap_err();
        assert!(err.contains("parameter count mismatch"), "{err}");
    }

    #[test]
    fn training_reduces_loss_on_toy_problem() {
        // Tiny regression: learn y = sum(x) with a 2-layer MLP and plain
        // gradient descent.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut net = Sequential::new()
            .push(Dense::new(3, 16, &mut rng))
            .push(Relu::new())
            .push(Dense::new(16, 1, &mut rng));
        let x = Tensor::from_vec(
            &[8, 3],
            (0..24)
                .map(|i| ((i * 37 % 11) as f32 - 5.0) / 5.0)
                .collect(),
        );
        let targets: Vec<f32> = (0..8).map(|i| x.row(i).iter().sum()).collect();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..200 {
            let y = net.forward(&x, true);
            let mut grad = y.clone();
            let mut loss = 0.0;
            #[allow(clippy::needless_range_loop)]
            for i in 0..8 {
                let d = y.row(i)[0] - targets[i];
                loss += d * d / 8.0;
                grad.row_mut(i)[0] = 2.0 * d / 8.0;
            }
            net.zero_grads();
            net.backward(&grad);
            net.visit_params(&mut |p, g| {
                for (pv, gv) in p.iter_mut().zip(g.iter()) {
                    *pv -= 0.05 * gv;
                }
            });
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
        }
        assert!(
            last < 0.05 * first.unwrap(),
            "loss did not drop: {} -> {last}",
            first.unwrap()
        );
    }
}

//! Out-of-core mini-batch training: epochs stream bounded-size chunks
//! from a [`ChunkSource`] (in practice the on-disk shard store in the
//! `stencilmart` crate) instead of gathering from one resident tensor.
//! While the optimizer consumes one chunk, a background thread
//! prefetches ahead through a bounded channel whose depth comes from
//! `STENCILMART_PREFETCH` (default 2 — double buffering: one chunk
//! decoding behind the one being consumed), so disk latency overlaps
//! compute and peak memory stays at ~`depth + 1` chunks regardless of
//! corpus size.
//!
//! Epoch order is seeded and data-dependent only: the chunk visit order
//! and the within-chunk row order are both drawn from the one training
//! RNG, so a run is reproducible for a given source + config (prefetch
//! timing never affects which batch sees which rows). Unlike the GBDT
//! streaming path, bit-equality with the resident loops is *not* a
//! goal — SGD batch composition differs by construction once rows can
//! only be shuffled within a chunk.

use crate::nn::loss::{mse, softmax_cross_entropy};
use crate::nn::net::Net;
use crate::nn::optim::Adam;
use crate::nn::train::TrainConfig;
use crate::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io;
use stencilmart_obs::{self as obs, counters};

/// One streamed block of training data: `rows * cols` row-major
/// features plus whichever target kinds the source carries.
#[derive(Debug, Clone, Default)]
pub struct Chunk {
    /// Number of sample rows.
    pub rows: usize,
    /// Features per row.
    pub cols: usize,
    /// Row-major feature values (`rows * cols`).
    pub data: Vec<f32>,
    /// Class labels, one per row (empty when the source has none).
    pub labels: Vec<u32>,
    /// Regression targets, one per row (empty when the source has none).
    pub targets: Vec<f32>,
}

/// A source of training chunks, loadable in any order any number of
/// times. `Sync` because the prefetch thread calls [`ChunkSource::load`]
/// while the trainer owns the previous chunk.
pub trait ChunkSource: Sync {
    /// Number of chunks in the source.
    fn n_chunks(&self) -> usize;
    /// Load chunk `i` (0-based). Must return the same data every call.
    fn load(&self, i: usize) -> io::Result<Chunk>;
}

enum Objective {
    Classify,
    Regress,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn check_chunk(c: &Chunk, i: usize, objective: &Objective) -> io::Result<()> {
    if c.data.len() != c.rows * c.cols {
        return Err(invalid(format!(
            "chunk {i}: {} feature values for {}x{} shape",
            c.data.len(),
            c.rows,
            c.cols
        )));
    }
    match objective {
        Objective::Classify if c.labels.len() != c.rows => Err(invalid(format!(
            "chunk {i}: {} labels for {} rows",
            c.labels.len(),
            c.rows
        ))),
        Objective::Regress if c.targets.len() != c.rows => Err(invalid(format!(
            "chunk {i}: {} targets for {} rows",
            c.targets.len(),
            c.rows
        ))),
        _ => Ok(()),
    }
}

/// The streamed epoch loop shared by both objectives. Chunks arrive
/// through a bounded channel ([`obs::runtime::prefetch_depth`] deep)
/// fed by a scoped prefetch thread; if the trainer bails early (a
/// malformed chunk), dropping the receiver unblocks the producer's
/// pending `send` so the scope always joins. Depth only changes how
/// far the reader runs ahead, never which batch sees which rows —
/// epoch order is drawn from the training RNG before the channel
/// exists.
fn train_streamed(
    net: &mut dyn Net,
    source: &dyn ChunkSource,
    cfg: &TrainConfig,
    objective: Objective,
) -> io::Result<Vec<f32>> {
    let n_chunks = source.n_chunks();
    assert!(n_chunks > 0, "empty chunk source");
    let depth = obs::runtime::prefetch_depth();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut xb = Tensor::zeros(&[0]);
    let mut yb_labels: Vec<usize> = Vec::with_capacity(cfg.batch_size);
    let mut yb_targets: Vec<f32> = Vec::with_capacity(cfg.batch_size);
    let mut local: Vec<usize> = Vec::new();
    for _ in 0..cfg.epochs {
        let _epoch = obs::span("train_epoch");
        let mut order: Vec<usize> = (0..n_chunks).collect();
        order.shuffle(&mut rng);
        let (tx, rx) = std::sync::mpsc::sync_channel::<io::Result<Chunk>>(depth);
        let stats: io::Result<(f32, usize, u64)> = std::thread::scope(|s| {
            s.spawn(move || {
                for &c in &order {
                    if tx.send(source.load(c)).is_err() {
                        return; // trainer bailed; stop prefetching
                    }
                }
            });
            let rx = rx; // owned by the trainer arm: dropped on early exit
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            let mut samples = 0u64;
            for k in 0..n_chunks {
                let chunk = rx
                    .recv()
                    .map_err(|_| io::Error::other("prefetch thread terminated early"))??;
                check_chunk(&chunk, k, &objective)?;
                let Chunk {
                    rows,
                    cols,
                    data,
                    labels,
                    targets,
                } = chunk;
                if rows == 0 {
                    continue;
                }
                let xt = Tensor::from_vec(&[rows, cols], data);
                local.clear();
                local.extend(0..rows);
                local.shuffle(&mut rng);
                for b in local.chunks(cfg.batch_size) {
                    xt.gather_rows_into(b, &mut xb);
                    let (loss, grad) = match objective {
                        Objective::Classify => {
                            yb_labels.clear();
                            yb_labels.extend(b.iter().map(|&i| labels[i] as usize));
                            let logits = net.forward(&xb, true);
                            softmax_cross_entropy(&logits, &yb_labels)
                        }
                        Objective::Regress => {
                            yb_targets.clear();
                            yb_targets.extend(b.iter().map(|&i| targets[i]));
                            let out = net.forward(&xb, true);
                            mse(&out, &yb_targets)
                        }
                    };
                    net.zero_grads();
                    net.backward(&grad);
                    opt.step(net);
                    epoch_loss += loss;
                    batches += 1;
                }
                samples += rows as u64;
            }
            Ok((epoch_loss, batches, samples))
        });
        let (epoch_loss, batches, samples) = stats?;
        counters::EPOCHS_TRAINED.inc();
        counters::SAMPLES_TRAINED.add(samples);
        history.push(epoch_loss / batches.max(1) as f32);
    }
    Ok(history)
}

/// Streamed counterpart of [`crate::nn::train::train_classifier`]:
/// softmax cross-entropy + Adam over chunks. Returns the per-epoch mean
/// training loss, or the first loader/shape error encountered.
pub fn train_classifier_streamed(
    net: &mut dyn Net,
    source: &dyn ChunkSource,
    cfg: &TrainConfig,
) -> io::Result<Vec<f32>> {
    train_streamed(net, source, cfg, Objective::Classify)
}

/// Streamed counterpart of [`crate::nn::train::train_regressor`]: MSE +
/// Adam over chunks. Returns the per-epoch mean training loss, or the
/// first loader/shape error encountered.
pub fn train_regressor_streamed(
    net: &mut dyn Net,
    source: &dyn ChunkSource,
    cfg: &TrainConfig,
) -> io::Result<Vec<f32>> {
    train_streamed(net, source, cfg, Objective::Regress)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::layer::{Dense, Relu};
    use crate::nn::net::Sequential;
    use crate::nn::train::{predict_classes, predict_scalars};
    use rand::Rng;

    struct VecSource {
        chunks: Vec<Chunk>,
    }

    impl ChunkSource for VecSource {
        fn n_chunks(&self) -> usize {
            self.chunks.len()
        }
        fn load(&self, i: usize) -> io::Result<Chunk> {
            Ok(self.chunks[i].clone())
        }
    }

    fn classification_source(n_per_chunk: usize, chunks: usize, seed: u64) -> VecSource {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let chunks = (0..chunks)
            .map(|_| {
                let mut data = Vec::with_capacity(n_per_chunk * 2);
                let mut labels = Vec::with_capacity(n_per_chunk);
                for _ in 0..n_per_chunk {
                    let a: f32 = rng.gen_range(-1.0..1.0);
                    let b: f32 = rng.gen_range(-1.0..1.0);
                    data.extend_from_slice(&[a, b]);
                    labels.push(u32::from(a + b > 0.0));
                }
                Chunk {
                    rows: n_per_chunk,
                    cols: 2,
                    data,
                    labels,
                    targets: Vec::new(),
                }
            })
            .collect();
        VecSource { chunks }
    }

    #[test]
    fn streamed_classifier_learns_across_chunks() {
        let source = classification_source(40, 5, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut net = Sequential::new()
            .push(Dense::new(2, 16, &mut rng))
            .push(Relu::new())
            .push(Dense::new(16, 2, &mut rng));
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 16,
            lr: 5e-3,
            seed: 1,
        };
        let hist = train_classifier_streamed(&mut net, &source, &cfg).unwrap();
        assert_eq!(hist.len(), 40);
        assert!(hist.last().unwrap() < &0.2, "loss history: {hist:?}");
        // Check accuracy over every chunk.
        let mut correct = 0usize;
        let mut total = 0usize;
        for c in &source.chunks {
            let x = Tensor::from_vec(&[c.rows, c.cols], c.data.clone());
            let preds = predict_classes(&mut net, &x);
            correct += preds
                .iter()
                .zip(&c.labels)
                .filter(|(p, l)| **p == **l as usize)
                .count();
            total += c.rows;
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn streamed_regressor_learns_and_is_reproducible() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let chunks: Vec<Chunk> = (0..4)
            .map(|_| {
                let rows = 30;
                let mut data = Vec::with_capacity(rows);
                let mut targets = Vec::with_capacity(rows);
                for _ in 0..rows {
                    let v: f32 = rng.gen_range(-1.0..1.0);
                    data.push(v);
                    targets.push(2.0 * v + 0.25);
                }
                Chunk {
                    rows,
                    cols: 1,
                    data,
                    labels: Vec::new(),
                    targets,
                }
            })
            .collect();
        let source = VecSource { chunks };
        let cfg = TrainConfig {
            epochs: 60,
            batch_size: 16,
            lr: 5e-3,
            seed: 4,
        };
        let fit = |seed: u64| {
            let mut nrng = ChaCha8Rng::seed_from_u64(seed);
            let mut net = Sequential::new()
                .push(Dense::new(1, 16, &mut nrng))
                .push(Relu::new())
                .push(Dense::new(16, 1, &mut nrng));
            let hist = train_regressor_streamed(&mut net, &source, &cfg).unwrap();
            let probe = Tensor::from_vec(&[2, 1], vec![-0.5, 0.5]);
            (hist, predict_scalars(&mut net, &probe))
        };
        let (hist_a, preds_a) = fit(11);
        let (hist_b, preds_b) = fit(11);
        assert!(
            hist_a.last().unwrap() < &0.01,
            "final loss {:?}",
            hist_a.last()
        );
        // Same seeds → identical run, regardless of prefetch timing.
        assert_eq!(hist_a, hist_b);
        assert_eq!(preds_a, preds_b);
        assert!((preds_a[0] - -0.75).abs() < 0.2, "f(-0.5) ≈ {}", preds_a[0]);
    }

    /// Prefetch depth changes only how far the reader runs ahead —
    /// the same seed must give the exact same loss history and
    /// predictions at every channel depth.
    #[test]
    fn prefetch_depth_never_changes_results() {
        let _guard = crate::par::test_env_lock();
        let source = classification_source(24, 6, 5);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 8,
            lr: 5e-3,
            seed: 2,
        };
        let fit = || {
            let mut nrng = ChaCha8Rng::seed_from_u64(13);
            let mut net = Sequential::new()
                .push(Dense::new(2, 8, &mut nrng))
                .push(Relu::new())
                .push(Dense::new(8, 2, &mut nrng));
            let hist = train_classifier_streamed(&mut net, &source, &cfg).unwrap();
            let probe = Tensor::from_vec(&[2, 2], vec![-0.5, 0.75, 0.25, -1.0]);
            (hist, predict_classes(&mut net, &probe))
        };
        std::env::remove_var("STENCILMART_PREFETCH");
        let reference = fit();
        for depth in ["1", "4", "8"] {
            std::env::set_var("STENCILMART_PREFETCH", depth);
            assert_eq!(fit(), reference, "depth {depth} diverged");
        }
        std::env::remove_var("STENCILMART_PREFETCH");
    }

    #[test]
    fn malformed_chunk_is_a_structured_error() {
        let source = VecSource {
            chunks: vec![Chunk {
                rows: 3,
                cols: 2,
                data: vec![0.0; 5], // one value short
                labels: vec![0, 1, 0],
                targets: Vec::new(),
            }],
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = Sequential::new().push(Dense::new(2, 2, &mut rng));
        let err = train_classifier_streamed(&mut net, &source, &TrainConfig::default())
            .expect_err("shape mismatch must surface");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // A missing-label chunk errors too (and the scope still joins).
        let source = VecSource {
            chunks: vec![Chunk {
                rows: 2,
                cols: 2,
                data: vec![0.0; 4],
                labels: vec![0],
                targets: Vec::new(),
            }],
        };
        let err = train_classifier_streamed(&mut net, &source, &TrainConfig::default())
            .expect_err("label mismatch must surface");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn io_error_from_loader_propagates() {
        struct FailingSource;
        impl ChunkSource for FailingSource {
            fn n_chunks(&self) -> usize {
                2
            }
            fn load(&self, i: usize) -> io::Result<Chunk> {
                if i == 0 {
                    Ok(Chunk {
                        rows: 2,
                        cols: 1,
                        data: vec![0.1, 0.2],
                        labels: Vec::new(),
                        targets: vec![0.0, 0.0],
                    })
                } else {
                    Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated"))
                }
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut net = Sequential::new().push(Dense::new(1, 1, &mut rng));
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 2,
            lr: 1e-3,
            seed: 0,
        };
        let err = train_regressor_streamed(&mut net, &FailingSource, &cfg)
            .expect_err("loader error must surface");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}

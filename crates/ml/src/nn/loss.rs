//! Loss functions: softmax cross-entropy for classification and mean
//! squared error for regression. Each returns the scalar loss and the
//! gradient w.r.t. the network output, already averaged over the batch.

use crate::tensor::Tensor;

/// Numerically stable row-wise softmax.
pub fn softmax(logits: &Tensor) -> Tensor {
    let mut out = logits.clone();
    for i in 0..out.batch() {
        let row = out.row_mut(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Softmax cross-entropy against integer class labels.
///
/// Returns `(mean loss, d loss / d logits)`.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let b = logits.batch();
    assert_eq!(b, labels.len(), "batch/label mismatch");
    let probs = softmax(logits);
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let inv_b = 1.0 / b as f32;
    for (i, &label) in labels.iter().enumerate() {
        let p = probs.row(i)[label].max(1e-12);
        loss -= p.ln();
        let row = grad.row_mut(i);
        row[label] -= 1.0;
        for v in row.iter_mut() {
            *v *= inv_b;
        }
    }
    (loss * inv_b, grad)
}

/// Mean squared error against scalar targets (network output `[b, 1]`).
///
/// Returns `(mean loss, d loss / d output)`.
pub fn mse(output: &Tensor, targets: &[f32]) -> (f32, Tensor) {
    let b = output.batch();
    assert_eq!(b, targets.len(), "batch/target mismatch");
    assert_eq!(output.row_len(), 1, "mse expects scalar outputs");
    let mut grad = Tensor::zeros(output.shape());
    let mut loss = 0.0f32;
    let inv_b = 1.0 / b as f32;
    for (i, &target) in targets.iter().enumerate() {
        let d = output.row(i)[0] - target;
        loss += d * d * inv_b;
        grad.row_mut(i)[0] = 2.0 * d * inv_b;
    }
    (loss, grad)
}

/// Argmax prediction per row.
pub fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    (0..logits.batch())
        .map(|i| {
            logits
                .row(i)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(j, _)| j)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., -1., 0., 1.]);
        let p = softmax(&t);
        for i in 0..2 {
            let s: f32 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(p.data().iter().all(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(&[1, 3], vec![1., 2., 3.]);
        let b = Tensor::from_vec(&[1, 3], vec![101., 102., 103.]);
        let (pa, pb) = (softmax(&a), softmax(&b));
        for (x, y) in pa.data().iter().zip(pb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(&[1, 3], vec![20., 0., 0.]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
        let (loss_bad, _) = softmax_cross_entropy(&logits, &[2]);
        assert!(loss_bad > 10.0);
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let logits = Tensor::from_vec(&[2, 4], vec![0.5, -1.0, 2.0, 0.1, 1.0, 1.0, -0.5, 0.0]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (l1, _) = softmax_cross_entropy(&lp, &labels);
            let (l2, _) = softmax_cross_entropy(&lm, &labels);
            let num = (l1 - l2) / (2.0 * eps);
            assert!(
                (num - grad.data()[idx]).abs() < 1e-3,
                "idx {idx}: {num} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn mse_and_grad() {
        let out = Tensor::from_vec(&[2, 1], vec![1.0, 3.0]);
        let (loss, grad) = mse(&out, &[0.0, 3.0]);
        assert!((loss - 0.5).abs() < 1e-6);
        assert!((grad.data()[0] - 1.0).abs() < 1e-6);
        assert_eq!(grad.data()[1], 0.0);
    }

    #[test]
    fn argmax_picks_largest() {
        let t = Tensor::from_vec(&[2, 3], vec![0., 5., 1., 9., 2., 3.]);
        assert_eq!(argmax_rows(&t), vec![1, 0]);
    }
}

//! 2-D and 3-D convolution layers (direct, stride 1, valid padding).
//!
//! The paper's ConvNet/ConvMLP consume 9×9 (2-D) or 9×9×9 (3-D) binary
//! stencil tensors with 3×3(×3) filters, so a simple direct convolution is
//! both adequate and cache-friendly at these sizes.

use crate::nn::layer::Layer;
use crate::tensor::Tensor;
use rand::Rng;

/// 2-D convolution: input `[b, ic, h, w]` → output `[b, oc, h-k+1, w-k+1]`.
pub struct Conv2d {
    ic: usize,
    oc: usize,
    k: usize,
    w: Vec<f32>,  // [oc, ic, k, k]
    b: Vec<f32>,  // [oc]
    gw: Vec<f32>,
    gb: Vec<f32>,
    cache_x: Option<Tensor>,
}

impl Conv2d {
    /// Create with He-uniform initialization.
    pub fn new<R: Rng>(ic: usize, oc: usize, k: usize, rng: &mut R) -> Conv2d {
        let fan_in = (ic * k * k) as f32;
        let bound = (6.0 / fan_in).sqrt();
        Conv2d {
            ic,
            oc,
            k,
            w: (0..oc * ic * k * k)
                .map(|_| rng.gen_range(-bound..bound))
                .collect(),
            b: vec![0.0; oc],
            gw: vec![0.0; oc * ic * k * k],
            gb: vec![0.0; oc],
            cache_x: None,
        }
    }

    /// Output spatial size for an input of side `s`.
    pub fn out_side(&self, s: usize) -> usize {
        s + 1 - self.k
    }

    #[inline]
    fn widx(&self, o: usize, c: usize, ky: usize, kx: usize) -> usize {
        ((o * self.ic + c) * self.k + ky) * self.k + kx
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (b, ic, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(ic, self.ic, "channel mismatch");
        let (oh, ow) = (h + 1 - self.k, w + 1 - self.k);
        let mut y = Tensor::zeros(&[b, self.oc, oh, ow]);
        let xd = x.data();
        let yd = y.data_mut();
        for bi in 0..b {
            for o in 0..self.oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = self.b[o];
                        for c in 0..ic {
                            for ky in 0..self.k {
                                let xrow =
                                    ((bi * ic + c) * h + oy + ky) * w + ox;
                                let wrow = self.widx(o, c, ky, 0);
                                for kx in 0..self.k {
                                    acc += self.w[wrow + kx] * xd[xrow + kx];
                                }
                            }
                        }
                        yd[((bi * self.oc + o) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        if train {
            self.cache_x = Some(x.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("backward without forward");
        let (b, ic, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = (h + 1 - self.k, w + 1 - self.k);
        assert_eq!(grad_out.shape(), &[b, self.oc, oh, ow]);
        let mut gx = Tensor::zeros(x.shape());
        let xd = x.data();
        let gd = grad_out.data();
        let gxd = gx.data_mut();
        for bi in 0..b {
            for o in 0..self.oc {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = gd[((bi * self.oc + o) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        self.gb[o] += g;
                        for c in 0..ic {
                            for ky in 0..self.k {
                                let xrow = ((bi * ic + c) * h + oy + ky) * w + ox;
                                let wrow = self.widx(o, c, ky, 0);
                                for kx in 0..self.k {
                                    self.gw[wrow + kx] += g * xd[xrow + kx];
                                    gxd[xrow + kx] += g * self.w[wrow + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }
}

/// 3-D convolution: input `[b, ic, d, h, w]` → output with each spatial
/// side reduced by `k-1`.
pub struct Conv3d {
    ic: usize,
    oc: usize,
    k: usize,
    w: Vec<f32>, // [oc, ic, k, k, k]
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    cache_x: Option<Tensor>,
}

impl Conv3d {
    /// Create with He-uniform initialization.
    pub fn new<R: Rng>(ic: usize, oc: usize, k: usize, rng: &mut R) -> Conv3d {
        let fan_in = (ic * k * k * k) as f32;
        let bound = (6.0 / fan_in).sqrt();
        Conv3d {
            ic,
            oc,
            k,
            w: (0..oc * ic * k * k * k)
                .map(|_| rng.gen_range(-bound..bound))
                .collect(),
            b: vec![0.0; oc],
            gw: vec![0.0; oc * ic * k * k * k],
            gb: vec![0.0; oc],
            cache_x: None,
        }
    }

    #[inline]
    fn widx(&self, o: usize, c: usize, kz: usize, ky: usize, kx: usize) -> usize {
        (((o * self.ic + c) * self.k + kz) * self.k + ky) * self.k + kx
    }
}

impl Layer for Conv3d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let s = x.shape();
        let (b, ic, d, h, w) = (s[0], s[1], s[2], s[3], s[4]);
        assert_eq!(ic, self.ic, "channel mismatch");
        let (od, oh, ow) = (d + 1 - self.k, h + 1 - self.k, w + 1 - self.k);
        let mut y = Tensor::zeros(&[b, self.oc, od, oh, ow]);
        let xd = x.data();
        let yd = y.data_mut();
        for bi in 0..b {
            for o in 0..self.oc {
                for oz in 0..od {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = self.b[o];
                            for c in 0..ic {
                                for kz in 0..self.k {
                                    for ky in 0..self.k {
                                        let xrow = (((bi * ic + c) * d + oz + kz) * h
                                            + oy
                                            + ky)
                                            * w
                                            + ox;
                                        let wrow = self.widx(o, c, kz, ky, 0);
                                        for kx in 0..self.k {
                                            acc += self.w[wrow + kx] * xd[xrow + kx];
                                        }
                                    }
                                }
                            }
                            yd[(((bi * self.oc + o) * od + oz) * oh + oy) * ow + ox] = acc;
                        }
                    }
                }
            }
        }
        if train {
            self.cache_x = Some(x.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("backward without forward");
        let s = x.shape();
        let (b, ic, d, h, w) = (s[0], s[1], s[2], s[3], s[4]);
        let (od, oh, ow) = (d + 1 - self.k, h + 1 - self.k, w + 1 - self.k);
        let mut gx = Tensor::zeros(x.shape());
        let xd = x.data();
        let gd = grad_out.data();
        let gxd = gx.data_mut();
        for bi in 0..b {
            for o in 0..self.oc {
                for oz in 0..od {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let g =
                                gd[(((bi * self.oc + o) * od + oz) * oh + oy) * ow + ox];
                            if g == 0.0 {
                                continue;
                            }
                            self.gb[o] += g;
                            for c in 0..ic {
                                for kz in 0..self.k {
                                    for ky in 0..self.k {
                                        let xrow = (((bi * ic + c) * d + oz + kz) * h
                                            + oy
                                            + ky)
                                            * w
                                            + ox;
                                        let wrow = self.widx(o, c, kz, ky, 0);
                                        for kx in 0..self.k {
                                            self.gw[wrow + kx] += g * xd[xrow + kx];
                                            gxd[xrow + kx] += g * self.w[wrow + kx];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn conv2d_identity_filter() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 1, 3, &mut rng);
        c.w.fill(0.0);
        c.w[4] = 1.0; // centre tap
        let x = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|v| v as f32).collect());
        let y = c.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        // centre taps of each 3x3 window: positions (1,1),(1,2),(2,1),(2,2)
        assert_eq!(y.data(), &[5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn conv2d_gradcheck() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut c = Conv2d::new(2, 3, 3, &mut rng);
        let x = Tensor::from_vec(
            &[1, 2, 5, 5],
            (0..50).map(|v| (v as f32 * 0.13).sin()).collect(),
        );
        let y = c.forward(&x, true);
        let gx = c.backward(&y.clone());
        let eps = 1e-2f32;
        for idx in [0usize, 7, 23, 49] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = c.forward(&xp, false).data().iter().map(|v| v * v / 2.0).sum();
            let lm: f32 = c.forward(&xm, false).data().iter().map(|v| v * v / 2.0).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gx.data()[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "idx {idx}: numeric {num} vs analytic {}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn conv3d_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut c = Conv3d::new(1, 4, 3, &mut rng);
        let x = Tensor::zeros(&[2, 1, 9, 9, 9]);
        let y = c.forward(&x, false);
        assert_eq!(y.shape(), &[2, 4, 7, 7, 7]);
    }

    #[test]
    fn conv3d_gradcheck() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut c = Conv3d::new(1, 2, 2, &mut rng);
        let x = Tensor::from_vec(
            &[1, 1, 3, 3, 3],
            (0..27).map(|v| (v as f32 * 0.31).cos()).collect(),
        );
        let y = c.forward(&x, true);
        let gx = c.backward(&y.clone());
        let eps = 1e-2f32;
        for idx in [0usize, 13, 26] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = c.forward(&xp, false).data().iter().map(|v| v * v / 2.0).sum();
            let lm: f32 = c.forward(&xm, false).data().iter().map(|v| v * v / 2.0).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gx.data()[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "idx {idx}: numeric {num} vs analytic {}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn conv_params_are_visited() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut c = Conv2d::new(1, 2, 3, &mut rng);
        let mut count = 0;
        c.visit_params(&mut |p, g| {
            assert_eq!(p.len(), g.len());
            count += 1;
        });
        assert_eq!(count, 2); // weights + bias
    }
}

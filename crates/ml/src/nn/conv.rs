//! 2-D and 3-D convolution layers (stride 1, valid padding), lowered to
//! GEMM via im2col.
//!
//! The paper's ConvNet/ConvMLP consume 9×9 (2-D) or 9×9×9 (3-D) binary
//! stencil tensors with 3×3(×3) filters. The receptive fields of the
//! *whole batch* are unrolled into one column matrix `col` of shape
//! `[ic·k² , b·oh·ow]` (2-D) or `[ic·k³ , b·od·oh·ow]` (3-D) — item `bi`
//! owns the column block `bi·oh·ow ..` — so each pass is a single large
//! GEMM instead of `b` small ones:
//!
//! * forward:       `Y = W · col` (+ bias, scattered back per item),
//! * weight grad:   `gW += G · colᵀ`,
//! * input grad:    `gX = col2im(Wᵀ · G)`,
//!
//! where `G` is the output gradient gathered into the same `[oc, b·…]`
//! layout. All products run on the blocked kernels in [`crate::gemm`].
//! `col` is cached from the training forward so backward never re-unrolls
//! the input. The original direct loops live on in [`crate::reference`] as
//! the correctness oracle.

use crate::gemm;
use crate::nn::layer::Layer;
use crate::tensor::Tensor;
use rand::Rng;

/// Unroll one item `[ic, h, w]` into columns `col0 .. col0+oh·ow` of a
/// `col` matrix with `ld` columns per row.
#[allow(clippy::too_many_arguments)]
fn im2col2d(
    x: &[f32],
    ic: usize,
    h: usize,
    w: usize,
    k: usize,
    col: &mut [f32],
    ld: usize,
    col0: usize,
) {
    let (oh, ow) = (h + 1 - k, w + 1 - k);
    let mut r = 0;
    for c in 0..ic {
        for ky in 0..k {
            for kx in 0..k {
                for oy in 0..oh {
                    let src = (c * h + oy + ky) * w + kx;
                    let dst = r * ld + col0 + oy * ow;
                    col[dst..dst + ow].copy_from_slice(&x[src..src + ow]);
                }
                r += 1;
            }
        }
    }
}

/// Scatter-add columns `col0 .. col0+oh·ow` of `col` (with `ld` columns
/// per row) back into one item `[ic, h, w]`.
#[allow(clippy::too_many_arguments)]
fn col2im2d(
    col: &[f32],
    ic: usize,
    h: usize,
    w: usize,
    k: usize,
    x: &mut [f32],
    ld: usize,
    col0: usize,
) {
    let (oh, ow) = (h + 1 - k, w + 1 - k);
    let mut r = 0;
    for c in 0..ic {
        for ky in 0..k {
            for kx in 0..k {
                for oy in 0..oh {
                    let dst = (c * h + oy + ky) * w + kx;
                    let src = r * ld + col0 + oy * ow;
                    for i in 0..ow {
                        x[dst + i] += col[src + i];
                    }
                }
                r += 1;
            }
        }
    }
}

/// Unroll one item `[ic, d, h, w]` into columns `col0 ..` of `col`.
#[allow(clippy::too_many_arguments)]
fn im2col3d(
    x: &[f32],
    ic: usize,
    d: usize,
    h: usize,
    w: usize,
    k: usize,
    col: &mut [f32],
    ld: usize,
    col0: usize,
) {
    let (od, oh, ow) = (d + 1 - k, h + 1 - k, w + 1 - k);
    let mut r = 0;
    for c in 0..ic {
        for kz in 0..k {
            for ky in 0..k {
                for kx in 0..k {
                    for oz in 0..od {
                        for oy in 0..oh {
                            let src = ((c * d + oz + kz) * h + oy + ky) * w + kx;
                            let dst = r * ld + col0 + (oz * oh + oy) * ow;
                            col[dst..dst + ow].copy_from_slice(&x[src..src + ow]);
                        }
                    }
                    r += 1;
                }
            }
        }
    }
}

/// Scatter-add columns `col0 ..` of `col` back into one item `[ic, d, h, w]`.
#[allow(clippy::too_many_arguments)]
fn col2im3d(
    col: &[f32],
    ic: usize,
    d: usize,
    h: usize,
    w: usize,
    k: usize,
    x: &mut [f32],
    ld: usize,
    col0: usize,
) {
    let (od, oh, ow) = (d + 1 - k, h + 1 - k, w + 1 - k);
    let mut r = 0;
    for c in 0..ic {
        for kz in 0..k {
            for ky in 0..k {
                for kx in 0..k {
                    for oz in 0..od {
                        for oy in 0..oh {
                            let dst = ((c * d + oz + kz) * h + oy + ky) * w + kx;
                            let src = r * ld + col0 + (oz * oh + oy) * ow;
                            for i in 0..ow {
                                x[dst + i] += col[src + i];
                            }
                        }
                    }
                    r += 1;
                }
            }
        }
    }
}

/// Gather `grad: [b, oc, sp]` into `g: [oc, b·sp]` (item `bi` at column
/// `bi·sp`), the layout the backward GEMMs consume.
fn gather_grad(gd: &[f32], b: usize, oc: usize, sp: usize, g: &mut [f32]) {
    for bi in 0..b {
        for o in 0..oc {
            let src = &gd[(bi * oc + o) * sp..][..sp];
            g[o * b * sp + bi * sp..][..sp].copy_from_slice(src);
        }
    }
}

/// Scatter `yt: [oc, b·sp]` into `y: [b, oc, sp]`, adding the per-channel
/// bias on the way.
fn scatter_output(yt: &[f32], bias: &[f32], b: usize, oc: usize, sp: usize, yd: &mut [f32]) {
    for bi in 0..b {
        for (o, &bo) in bias.iter().enumerate() {
            let src = &yt[o * b * sp + bi * sp..][..sp];
            let dst = &mut yd[(bi * oc + o) * sp..][..sp];
            for (d, s) in dst.iter_mut().zip(src) {
                *d = s + bo;
            }
        }
    }
}

/// 2-D convolution: input `[b, ic, h, w]` → output `[b, oc, h-k+1, w-k+1]`.
pub struct Conv2d {
    ic: usize,
    oc: usize,
    k: usize,
    w: Vec<f32>, // [oc, ic, k, k]
    b: Vec<f32>, // [oc]
    gw: Vec<f32>,
    gb: Vec<f32>,
    /// Input shape and batched `col` matrix from the training forward.
    cache: Option<(Vec<usize>, Vec<f32>)>,
}

impl Conv2d {
    /// Create with He-uniform initialization.
    pub fn new<R: Rng>(ic: usize, oc: usize, k: usize, rng: &mut R) -> Conv2d {
        let fan_in = (ic * k * k) as f32;
        let bound = (6.0 / fan_in).sqrt();
        Conv2d {
            ic,
            oc,
            k,
            w: (0..oc * ic * k * k)
                .map(|_| rng.gen_range(-bound..bound))
                .collect(),
            b: vec![0.0; oc],
            gw: vec![0.0; oc * ic * k * k],
            gb: vec![0.0; oc],
            cache: None,
        }
    }

    /// Output spatial size for an input of side `s`.
    pub fn out_side(&self, s: usize) -> usize {
        s + 1 - self.k
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (b, ic, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(ic, self.ic, "channel mismatch");
        let (oh, ow) = (h + 1 - self.k, w + 1 - self.k);
        let (ohow, kk) = (oh * ow, ic * self.k * self.k);
        let (item, bsp) = (ic * h * w, b * ohow);
        let xd = x.data();
        let mut col = vec![0.0f32; kk * bsp];
        for bi in 0..b {
            im2col2d(
                &xd[bi * item..][..item],
                ic,
                h,
                w,
                self.k,
                &mut col,
                bsp,
                bi * ohow,
            );
        }
        let mut yt = vec![0.0f32; self.oc * bsp];
        gemm::gemm(self.oc, kk, bsp, &self.w, &col, &mut yt, false);
        let mut y = Tensor::zeros(&[b, self.oc, oh, ow]);
        scatter_output(&yt, &self.b, b, self.oc, ohow, y.data_mut());
        if train {
            self.cache = Some((x.shape().to_vec(), col));
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (shape, col) = self.cache.take().expect("backward without forward");
        let (b, ic, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = (h + 1 - self.k, w + 1 - self.k);
        assert_eq!(grad_out.shape(), &[b, self.oc, oh, ow]);
        let (ohow, kk) = (oh * ow, ic * self.k * self.k);
        let (item, bsp) = (ic * h * w, b * ohow);
        let mut g = vec![0.0f32; self.oc * bsp];
        gather_grad(grad_out.data(), b, self.oc, ohow, &mut g);
        // gW += G · colᵀ  (col stored [kk, b·ohow] is Bᵀ for gemm_nt).
        gemm::gemm_nt(self.oc, bsp, kk, &g, &col, &mut self.gw, true);
        for (o, gbo) in self.gb.iter_mut().enumerate() {
            *gbo += g[o * bsp..(o + 1) * bsp].iter().sum::<f32>();
        }
        // gX = col2im(Wᵀ · G)  (W stored [oc, kk] is Aᵀ for gemm_tn).
        let mut gcol = vec![0.0f32; kk * bsp];
        gemm::gemm_tn(kk, self.oc, bsp, &self.w, &g, &mut gcol, false);
        let mut gx = Tensor::zeros(&shape);
        let gxd = gx.data_mut();
        for bi in 0..b {
            col2im2d(
                &gcol,
                ic,
                h,
                w,
                self.k,
                &mut gxd[bi * item..][..item],
                bsp,
                bi * ohow,
            );
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }
}

/// 3-D convolution: input `[b, ic, d, h, w]` → output with each spatial
/// side reduced by `k-1`.
pub struct Conv3d {
    ic: usize,
    oc: usize,
    k: usize,
    w: Vec<f32>, // [oc, ic, k, k, k]
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    cache: Option<(Vec<usize>, Vec<f32>)>,
}

impl Conv3d {
    /// Create with He-uniform initialization.
    pub fn new<R: Rng>(ic: usize, oc: usize, k: usize, rng: &mut R) -> Conv3d {
        let fan_in = (ic * k * k * k) as f32;
        let bound = (6.0 / fan_in).sqrt();
        Conv3d {
            ic,
            oc,
            k,
            w: (0..oc * ic * k * k * k)
                .map(|_| rng.gen_range(-bound..bound))
                .collect(),
            b: vec![0.0; oc],
            gw: vec![0.0; oc * ic * k * k * k],
            gb: vec![0.0; oc],
            cache: None,
        }
    }
}

impl Layer for Conv3d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let s = x.shape();
        let (b, ic, d, h, w) = (s[0], s[1], s[2], s[3], s[4]);
        assert_eq!(ic, self.ic, "channel mismatch");
        let (od, oh, ow) = (d + 1 - self.k, h + 1 - self.k, w + 1 - self.k);
        let (out_sp, kk) = (od * oh * ow, ic * self.k * self.k * self.k);
        let (item, bsp) = (ic * d * h * w, b * out_sp);
        let xd = x.data();
        let mut col = vec![0.0f32; kk * bsp];
        for bi in 0..b {
            im2col3d(
                &xd[bi * item..][..item],
                ic,
                d,
                h,
                w,
                self.k,
                &mut col,
                bsp,
                bi * out_sp,
            );
        }
        let mut yt = vec![0.0f32; self.oc * bsp];
        gemm::gemm(self.oc, kk, bsp, &self.w, &col, &mut yt, false);
        let mut y = Tensor::zeros(&[b, self.oc, od, oh, ow]);
        scatter_output(&yt, &self.b, b, self.oc, out_sp, y.data_mut());
        if train {
            self.cache = Some((x.shape().to_vec(), col));
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (shape, col) = self.cache.take().expect("backward without forward");
        let (b, ic, d, h, w) = (shape[0], shape[1], shape[2], shape[3], shape[4]);
        let (od, oh, ow) = (d + 1 - self.k, h + 1 - self.k, w + 1 - self.k);
        assert_eq!(grad_out.shape(), &[b, self.oc, od, oh, ow]);
        let (out_sp, kk) = (od * oh * ow, ic * self.k * self.k * self.k);
        let (item, bsp) = (ic * d * h * w, b * out_sp);
        let mut g = vec![0.0f32; self.oc * bsp];
        gather_grad(grad_out.data(), b, self.oc, out_sp, &mut g);
        gemm::gemm_nt(self.oc, bsp, kk, &g, &col, &mut self.gw, true);
        for (o, gbo) in self.gb.iter_mut().enumerate() {
            *gbo += g[o * bsp..(o + 1) * bsp].iter().sum::<f32>();
        }
        let mut gcol = vec![0.0f32; kk * bsp];
        gemm::gemm_tn(kk, self.oc, bsp, &self.w, &g, &mut gcol, false);
        let mut gx = Tensor::zeros(&shape);
        let gxd = gx.data_mut();
        for bi in 0..b {
            col2im3d(
                &gcol,
                ic,
                d,
                h,
                w,
                self.k,
                &mut gxd[bi * item..][..item],
                bsp,
                bi * out_sp,
            );
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn conv2d_identity_filter() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 1, 3, &mut rng);
        c.w.fill(0.0);
        c.w[4] = 1.0; // centre tap
        let x = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|v| v as f32).collect());
        let y = c.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        // centre taps of each 3x3 window: positions (1,1),(1,2),(2,1),(2,2)
        assert_eq!(y.data(), &[5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn conv2d_gradcheck() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut c = Conv2d::new(2, 3, 3, &mut rng);
        let x = Tensor::from_vec(
            &[1, 2, 5, 5],
            (0..50).map(|v| (v as f32 * 0.13).sin()).collect(),
        );
        let y = c.forward(&x, true);
        let gx = c.backward(&y.clone());
        let eps = 1e-2f32;
        for idx in [0usize, 7, 23, 49] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = c
                .forward(&xp, false)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            let lm: f32 = c
                .forward(&xm, false)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gx.data()[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "idx {idx}: numeric {num} vs analytic {}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn conv2d_multi_item_batch_matches_per_item() {
        // A 2-item batch must produce exactly the single-item outputs —
        // guards the batched-col column bookkeeping.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut c = Conv2d::new(2, 3, 3, &mut rng);
        let data: Vec<f32> = (0..2 * 2 * 6 * 6)
            .map(|v| (v as f32 * 0.17).sin())
            .collect();
        let both = Tensor::from_vec(&[2, 2, 6, 6], data.clone());
        let y = c.forward(&both, false);
        for bi in 0..2 {
            let one = Tensor::from_vec(&[1, 2, 6, 6], data[bi * 72..][..72].to_vec());
            let y1 = c.forward(&one, false);
            assert_eq!(y1.data(), y.row(bi), "item {bi}");
        }
    }

    #[test]
    fn conv3d_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut c = Conv3d::new(1, 4, 3, &mut rng);
        let x = Tensor::zeros(&[2, 1, 9, 9, 9]);
        let y = c.forward(&x, false);
        assert_eq!(y.shape(), &[2, 4, 7, 7, 7]);
    }

    #[test]
    fn conv3d_gradcheck() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut c = Conv3d::new(1, 2, 2, &mut rng);
        let x = Tensor::from_vec(
            &[1, 1, 3, 3, 3],
            (0..27).map(|v| (v as f32 * 0.31).cos()).collect(),
        );
        let y = c.forward(&x, true);
        let gx = c.backward(&y.clone());
        let eps = 1e-2f32;
        for idx in [0usize, 13, 26] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = c
                .forward(&xp, false)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            let lm: f32 = c
                .forward(&xm, false)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gx.data()[idx]).abs() < 0.05 * (1.0 + num.abs()),
                "idx {idx}: numeric {num} vs analytic {}",
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn conv_params_are_visited() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut c = Conv2d::new(1, 2, 3, &mut rng);
        let mut count = 0;
        c.visit_params(&mut |p, g| {
            assert_eq!(p.len(), g.len());
            count += 1;
        });
        assert_eq!(count, 2); // weights + bias
    }

    #[test]
    fn im2col_col2im_are_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> — the defining property of the
        // scatter/gather pair the backward pass relies on.
        let (ic, h, w, k) = (2, 5, 4, 3);
        let (oh, ow) = (h + 1 - k, w + 1 - k);
        let rows = ic * k * k;
        let x: Vec<f32> = (0..ic * h * w).map(|i| (i as f32 * 0.37).sin()).collect();
        let y: Vec<f32> = (0..rows * oh * ow)
            .map(|i| (i as f32 * 0.73).cos())
            .collect();
        let mut col = vec![0.0; rows * oh * ow];
        im2col2d(&x, ic, h, w, k, &mut col, oh * ow, 0);
        let mut back = vec![0.0; ic * h * w];
        col2im2d(&y, ic, h, w, k, &mut back, oh * ow, 0);
        let lhs: f32 = col.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(&back).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "{lhs} vs {rhs}"
        );
    }
}

//! Optimizers: Adam (the paper trains all its networks with the "Adam
//! stochastic optimizer") and plain SGD for comparison.

use crate::nn::net::Net;

/// Adam optimizer with per-parameter first/second moment estimates.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    step: u64,
    moments: Vec<(Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Create with the paper's defaults (β₁ = 0.9, β₂ = 0.999).
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            moments: Vec::new(),
        }
    }

    /// Apply one update step from the accumulated gradients.
    pub fn step(&mut self, net: &mut dyn Net) {
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let moments = &mut self.moments;
        let mut idx = 0usize;
        net.visit_params(&mut |p, g| {
            if moments.len() <= idx {
                moments.push((vec![0.0; p.len()], vec![0.0; p.len()]));
            }
            let (m, v) = &mut moments[idx];
            assert_eq!(m.len(), p.len(), "parameter buffer changed size");
            for i in 0..p.len() {
                m[i] = b1 * m[i] + (1.0 - b1) * g[i];
                v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
                let mh = m[i] / bc1;
                let vh = v[i] / bc2;
                p[i] -= lr * mh / (vh.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

/// Plain stochastic gradient descent.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Create with the given learning rate.
    pub fn new(lr: f32) -> Sgd {
        Sgd { lr }
    }

    /// Apply one update step.
    pub fn step(&self, net: &mut dyn Net) {
        let lr = self.lr;
        net.visit_params(&mut |p, g| {
            for (pv, gv) in p.iter_mut().zip(g.iter()) {
                *pv -= lr * gv;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::layer::Dense;
    use crate::nn::net::{Net, Sequential};
    use crate::tensor::Tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn quadratic_loss(net: &mut Sequential, x: &Tensor, target: f32) -> f32 {
        let y = net.forward(x, false);
        (y.data()[0] - target).powi(2)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = Sequential::new().push(Dense::new(2, 1, &mut rng));
        let x = Tensor::from_vec(&[1, 2], vec![1.0, -0.5]);
        let mut opt = Adam::new(0.05);
        for _ in 0..300 {
            let y = net.forward(&x, true);
            let d = y.data()[0] - 3.0;
            let grad = Tensor::from_vec(&[1, 1], vec![2.0 * d]);
            net.zero_grads();
            net.backward(&grad);
            opt.step(&mut net);
        }
        assert!(quadratic_loss(&mut net, &x, 3.0) < 1e-4);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = Sequential::new().push(Dense::new(2, 1, &mut rng));
        let x = Tensor::from_vec(&[1, 2], vec![1.0, -0.5]);
        let opt = Sgd::new(0.1);
        for _ in 0..300 {
            let y = net.forward(&x, true);
            let d = y.data()[0] - 3.0;
            let grad = Tensor::from_vec(&[1, 1], vec![2.0 * d]);
            net.zero_grads();
            net.backward(&grad);
            opt.step(&mut net);
        }
        assert!(quadratic_loss(&mut net, &x, 3.0) < 1e-4);
    }

    #[test]
    fn adam_is_robust_where_sgd_diverges() {
        // With a feature of scale 100, SGD at Adam's learning rate
        // explodes, while Adam's per-parameter normalization converges.
        let run = |use_adam: bool| -> f32 {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let mut net = Sequential::new().push(Dense::new(2, 1, &mut rng));
            let x = Tensor::from_vec(&[1, 2], vec![100.0, 0.01]);
            let mut adam = Adam::new(0.02);
            let sgd = Sgd::new(0.02);
            for _ in 0..150 {
                let y = net.forward(&x, true);
                let d = y.data()[0] - 1.0;
                if !d.is_finite() {
                    return f32::INFINITY;
                }
                let grad = Tensor::from_vec(&[1, 1], vec![2.0 * d]);
                net.zero_grads();
                net.backward(&grad);
                if use_adam {
                    adam.step(&mut net);
                } else {
                    sgd.step(&mut net);
                }
            }
            quadratic_loss(&mut net, &x, 1.0)
        };
        let adam_loss = run(true);
        let sgd_loss = run(false);
        assert!(adam_loss < 1e-2, "adam loss {adam_loss}");
        assert!(
            !sgd_loss.is_finite() || sgd_loss > 1e3,
            "sgd unexpectedly converged: {sgd_loss}"
        );
    }
}

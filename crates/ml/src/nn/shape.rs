//! Shape-adapter layers: `Reshape` turns flat batch rows into spatial
//! tensors for convolution layers, and `Flatten` turns spatial outputs
//! back into rows for dense layers. Both are parameter-free and invert
//! themselves in `backward`.

use crate::nn::layer::Layer;
use crate::tensor::Tensor;

/// Reshape each batch row to a fixed per-row shape.
pub struct Reshape {
    row_shape: Vec<usize>,
    in_shape: Vec<usize>,
}

impl Reshape {
    /// Create a reshape to `row_shape` (per row, excluding the batch
    /// dimension), e.g. `[1, 9, 9]` for a 2-D conv input.
    pub fn new(row_shape: Vec<usize>) -> Reshape {
        Reshape {
            row_shape,
            in_shape: Vec::new(),
        }
    }
}

impl Layer for Reshape {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.in_shape = x.shape().to_vec();
        }
        let mut shape = vec![x.batch()];
        shape.extend_from_slice(&self.row_shape);
        x.reshape(&shape)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.reshape(&self.in_shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}
}

/// Flatten each batch row to 2-D `[batch, row_len]`.
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Create a flatten layer.
    pub fn new() -> Flatten {
        Flatten {
            in_shape: Vec::new(),
        }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.in_shape = x.shape().to_vec();
        }
        x.reshape(&[x.batch(), x.row_len()])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.reshape(&self.in_shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_roundtrips_in_backward() {
        let mut r = Reshape::new(vec![1, 3, 3]);
        let x = Tensor::from_vec(&[2, 9], (0..18).map(|v| v as f32).collect());
        let y = r.forward(&x, true);
        assert_eq!(y.shape(), &[2, 1, 3, 3]);
        let g = r.backward(&y);
        assert_eq!(g.shape(), &[2, 9]);
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn flatten_roundtrips_in_backward() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(&[2, 2, 3], (0..12).map(|v| v as f32).collect());
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 6]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), &[2, 2, 3]);
    }

    #[test]
    fn shape_layers_have_no_params() {
        let mut count = 0;
        Reshape::new(vec![1]).visit_params(&mut |_, _| count += 1);
        Flatten::new().visit_params(&mut |_, _| count += 1);
        assert_eq!(count, 0);
    }
}

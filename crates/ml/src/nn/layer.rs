//! The layer abstraction plus the dense (fully connected) and ReLU layers.

use crate::tensor::Tensor;
use rand::Rng;

/// A differentiable layer. Layers cache whatever they need during
//  `forward` so that `backward` can run without re-supplying inputs.
pub trait Layer: Send {
    /// Forward pass. `train` enables training-only behaviour.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;
    /// Backward pass: consume `d(loss)/d(output)`, accumulate parameter
    /// gradients, and return `d(loss)/d(input)`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;
    /// Visit `(parameters, gradients)` buffers for the optimizer.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));
    /// Zero accumulated gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |_, g| g.fill(0.0));
    }
}

/// Fully connected layer: `y = x·W + b`.
pub struct Dense {
    w: Tensor,
    b: Vec<f32>,
    gw: Tensor,
    gb: Vec<f32>,
    cache_x: Option<Tensor>,
}

impl Dense {
    /// Create with He-uniform initialization (suits the ReLU stacks used
    /// throughout).
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Dense {
        let bound = (6.0 / in_dim as f32).sqrt();
        let data = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Dense {
            w: Tensor::from_vec(&[in_dim, out_dim], data),
            b: vec![0.0; out_dim],
            gw: Tensor::zeros(&[in_dim, out_dim]),
            gb: vec![0.0; out_dim],
            cache_x: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.shape()[0]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.shape()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let x2 = x.reshape(&[x.batch(), x.row_len()]);
        let mut y = Tensor::matmul(&x2, &self.w);
        for i in 0..y.batch() {
            for (v, b) in y.row_mut(i).iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        if train {
            self.cache_x = Some(x2);
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .take()
            .expect("backward without a training forward");
        // dW += X^T · dY ; db += column sums of dY ; dX = dY · W^T
        Tensor::matmul_tn_acc(&x, grad_out, &mut self.gw);
        for i in 0..grad_out.batch() {
            for (j, g) in grad_out.row(i).iter().enumerate() {
                self.gb[j] += g;
            }
        }
        Tensor::matmul_nt(grad_out, &self.w)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.w.data_mut(), self.gw.data_mut());
        f(&mut self.b, &mut self.gb);
    }
}

/// Rectified linear unit.
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Create a ReLU layer.
    pub fn new() -> Relu {
        Relu { mask: Vec::new() }
    }
}

impl Default for Relu {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut y = x.clone();
        if train {
            self.mask.clear();
            self.mask.reserve(x.len());
        }
        for v in y.data_mut() {
            let pos = *v > 0.0;
            if train {
                self.mask.push(pos);
            }
            if !pos {
                *v = 0.0;
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(self.mask.len(), grad_out.len(), "mask/grad size mismatch");
        let mut g = grad_out.clone();
        for (v, &keep) in g.data_mut().iter_mut().zip(&self.mask) {
            if !keep {
                *v = 0.0;
            }
        }
        g
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut d = Dense::new(3, 2, &mut rng);
        // Set known weights.
        d.w.data_mut().copy_from_slice(&[1., 0., 0., 1., 1., 1.]);
        d.b.copy_from_slice(&[0.5, -0.5]);
        let x = Tensor::from_vec(&[1, 3], vec![1., 2., 3.]);
        let y = d.forward(&x, false);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[1. + 3. + 0.5, 2. + 3. - 0.5]);
    }

    #[test]
    fn dense_gradcheck() {
        // Numerical gradient check on a tiny dense layer.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut d = Dense::new(4, 3, &mut rng);
        let x = Tensor::from_vec(&[2, 4], (0..8).map(|i| i as f32 * 0.1 - 0.3).collect());
        // loss = sum(y^2)/2; dL/dy = y
        let y = d.forward(&x, true);
        let gx = d.backward(&y.clone());
        let eps = 1e-3f32;
        // Check input gradient numerically.
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = d
                .forward(&xp, false)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            let lm: f32 = d
                .forward(&xm, false)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gx.data()[idx]).abs() < 1e-2,
                "idx {idx}: numeric {num} vs analytic {}",
                gx.data()[idx]
            );
        }
        // Check weight gradient numerically for a few entries.
        let mut analytic = Vec::new();
        d.visit_params(&mut |_, g| analytic.push(g.to_vec()));
        for widx in [0usize, 5, 11] {
            let orig = {
                let mut val = 0.0;
                let mut i = 0;
                d.visit_params(&mut |p, _| {
                    if i == 0 {
                        val = p[widx];
                    }
                    i += 1;
                });
                val
            };
            fn set_w(d: &mut Dense, widx: usize, v: f32) {
                let mut i = 0;
                d.visit_params(&mut |p, _| {
                    if i == 0 {
                        p[widx] = v;
                    }
                    i += 1;
                });
            }
            set_w(&mut d, widx, orig + eps);
            let lp: f32 = d
                .forward(&x, false)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            set_w(&mut d, widx, orig - eps);
            let lm: f32 = d
                .forward(&x, false)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            set_w(&mut d, widx, orig);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - analytic[0][widx]).abs() < 1e-2,
                "w[{widx}]: numeric {num} vs analytic {}",
                analytic[0][widx]
            );
        }
    }

    #[test]
    fn relu_masks_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(&[1, 4], vec![-1., 2., -3., 4.]);
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0., 2., 0., 4.]);
        let g = r.backward(&Tensor::from_vec(&[1, 4], vec![1., 1., 1., 1.]));
        assert_eq!(g.data(), &[0., 1., 0., 1.]);
    }

    #[test]
    fn zero_grads_clears() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::from_vec(&[1, 2], vec![1., 1.]);
        let y = d.forward(&x, true);
        d.backward(&y);
        d.zero_grads();
        d.visit_params(&mut |_, g| assert!(g.iter().all(|&v| v == 0.0)));
    }
}

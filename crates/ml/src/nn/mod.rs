//! From-scratch neural-network stack: layers, containers, losses,
//! optimizers, and training loops.
//!
//! Mirrors the network families of the paper: *ConvNet*/*FcNet*
//! classifiers (§IV-D) and *MLP*/*ConvMLP* regressors (§IV-E) are all
//! assembled from these pieces in `stencilmart::models`.

pub mod conv;
pub mod layer;
pub mod loss;
pub mod net;
pub mod optim;
pub mod shape;
pub mod stream;
pub mod train;

pub use conv::{Conv2d, Conv3d};
pub use layer::{Dense, Layer, Relu};
pub use loss::{argmax_rows, mse, softmax, softmax_cross_entropy};
pub use net::{export_params, import_params, param_count, Net, Sequential, TwoBranch};
pub use optim::{Adam, Sgd};
pub use shape::{Flatten, Reshape};
pub use stream::{train_classifier_streamed, train_regressor_streamed, Chunk, ChunkSource};
pub use train::{predict_classes, predict_scalars, train_classifier, train_regressor, TrainConfig};

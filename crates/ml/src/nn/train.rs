//! Mini-batch training loops for classification and regression nets.

use crate::nn::loss::{argmax_rows, mse, softmax_cross_entropy};
use crate::nn::net::Net;
use crate::nn::optim::Adam;
use crate::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stencilmart_obs::{self as obs, counters};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of full passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 50,
            lr: 1e-3,
            seed: 0,
        }
    }
}

/// Train a classifier with softmax cross-entropy + Adam. Returns the
/// per-epoch mean training loss.
pub fn train_classifier(
    net: &mut dyn Net,
    x: &Tensor,
    labels: &[usize],
    cfg: &TrainConfig,
) -> Vec<f32> {
    assert_eq!(x.batch(), labels.len(), "sample/label mismatch");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..x.batch()).collect();
    let mut history = Vec::with_capacity(cfg.epochs);
    // Mini-batch scratch reused across every batch of every epoch.
    let mut xb = Tensor::zeros(&[0]);
    let mut yb: Vec<usize> = Vec::with_capacity(cfg.batch_size);
    for _ in 0..cfg.epochs {
        let _epoch = obs::span("train_epoch");
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(cfg.batch_size) {
            x.gather_rows_into(chunk, &mut xb);
            yb.clear();
            yb.extend(chunk.iter().map(|&i| labels[i]));
            let logits = net.forward(&xb, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &yb);
            net.zero_grads();
            net.backward(&grad);
            opt.step(net);
            epoch_loss += loss;
            batches += 1;
        }
        counters::EPOCHS_TRAINED.inc();
        counters::SAMPLES_TRAINED.add(x.batch() as u64);
        history.push(epoch_loss / batches.max(1) as f32);
    }
    history
}

/// Train a regressor with MSE + Adam. Returns the per-epoch mean training
/// loss.
pub fn train_regressor(
    net: &mut dyn Net,
    x: &Tensor,
    targets: &[f32],
    cfg: &TrainConfig,
) -> Vec<f32> {
    assert_eq!(x.batch(), targets.len(), "sample/target mismatch");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..x.batch()).collect();
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut xb = Tensor::zeros(&[0]);
    let mut yb: Vec<f32> = Vec::with_capacity(cfg.batch_size);
    for _ in 0..cfg.epochs {
        let _epoch = obs::span("train_epoch");
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(cfg.batch_size) {
            x.gather_rows_into(chunk, &mut xb);
            yb.clear();
            yb.extend(chunk.iter().map(|&i| targets[i]));
            let out = net.forward(&xb, true);
            let (loss, grad) = mse(&out, &yb);
            net.zero_grads();
            net.backward(&grad);
            opt.step(net);
            epoch_loss += loss;
            batches += 1;
        }
        counters::EPOCHS_TRAINED.inc();
        counters::SAMPLES_TRAINED.add(x.batch() as u64);
        history.push(epoch_loss / batches.max(1) as f32);
    }
    history
}

/// Predict class labels for a batch.
pub fn predict_classes(net: &mut dyn Net, x: &Tensor) -> Vec<usize> {
    argmax_rows(&net.forward(x, false))
}

/// Predict scalar outputs for a batch.
pub fn predict_scalars(net: &mut dyn Net, x: &Tensor) -> Vec<f32> {
    let y = net.forward(x, false);
    (0..y.batch()).map(|i| y.row(i)[0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::layer::{Dense, Relu};
    use crate::nn::net::Sequential;
    use rand::Rng;

    #[test]
    fn classifier_learns_linearly_separable_data() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 200;
        let mut rows = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f32 = rng.gen_range(-1.0..1.0);
            let y: f32 = rng.gen_range(-1.0..1.0);
            rows.extend_from_slice(&[x, y]);
            labels.push(usize::from(x + y > 0.0));
        }
        let x = Tensor::from_vec(&[n, 2], rows);
        let mut net = Sequential::new()
            .push(Dense::new(2, 16, &mut rng))
            .push(Relu::new())
            .push(Dense::new(16, 2, &mut rng));
        let hist = train_classifier(
            &mut net,
            &x,
            &labels,
            &TrainConfig {
                epochs: 40,
                batch_size: 32,
                lr: 5e-3,
                seed: 1,
            },
        );
        assert!(hist.last().unwrap() < &0.2, "loss history: {hist:?}");
        let preds = predict_classes(&mut net, &x);
        let acc = preds.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / n as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn regressor_learns_quadratic() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 200;
        let mut rows = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f32 = rng.gen_range(-1.0..1.0);
            rows.push(x);
            targets.push(x * x);
        }
        let x = Tensor::from_vec(&[n, 1], rows);
        let mut net = Sequential::new()
            .push(Dense::new(1, 32, &mut rng))
            .push(Relu::new())
            .push(Dense::new(32, 1, &mut rng));
        let hist = train_regressor(
            &mut net,
            &x,
            &targets,
            &TrainConfig {
                epochs: 80,
                batch_size: 32,
                lr: 5e-3,
                seed: 2,
            },
        );
        assert!(
            hist.last().unwrap() < &0.01,
            "final loss {}",
            hist.last().unwrap()
        );
    }

    #[test]
    fn loss_history_length_matches_epochs() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = Sequential::new().push(Dense::new(2, 2, &mut rng));
        let x = Tensor::from_vec(&[4, 2], vec![0.0; 8]);
        let hist = train_classifier(
            &mut net,
            &x,
            &[0, 1, 0, 1],
            &TrainConfig {
                epochs: 7,
                batch_size: 2,
                lr: 1e-3,
                seed: 0,
            },
        );
        assert_eq!(hist.len(), 7);
    }
}

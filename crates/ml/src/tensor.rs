//! A minimal dense `f32` tensor with row-major storage — the numeric core
//! of the from-scratch neural-network stack. The matmul variants dispatch
//! to the blocked, register-tiled kernels in [`crate::gemm`].

use crate::gemm;
use serde::{Deserialize, Serialize};

/// A dense row-major tensor of `f32` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Create from existing data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} does not match {} elements",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Shape of the tensor.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable flat data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterpret with a new shape of identical element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "reshape {shape:?} incompatible with {} elements",
            self.data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// First dimension (conventionally the batch size).
    #[inline]
    pub fn batch(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Elements per batch row.
    #[inline]
    pub fn row_len(&self) -> usize {
        if self.shape.is_empty() {
            0
        } else {
            self.shape[1..].iter().product()
        }
    }

    /// One batch row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        let w = self.row_len();
        &self.data[i * w..(i + 1) * w]
    }

    /// One batch row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let w = self.row_len();
        &mut self.data[i * w..(i + 1) * w]
    }

    /// Build a batch tensor by stacking equal-length rows.
    pub fn stack_rows(rows: &[&[f32]], row_shape: &[usize]) -> Tensor {
        let w: usize = row_shape.iter().product();
        let mut data = Vec::with_capacity(rows.len() * w);
        for r in rows {
            assert_eq!(r.len(), w, "row length mismatch");
            data.extend_from_slice(r);
        }
        let mut shape = vec![rows.len()];
        shape.extend_from_slice(row_shape);
        Tensor { shape, data }
    }

    /// Gather the batch rows selected by `idx` into `out`, reshaping and
    /// resizing it as needed. The scratch-reusing counterpart of
    /// [`Tensor::stack_rows`] for mini-batch loops: one tensor survives
    /// across iterations instead of an allocation per batch.
    pub fn gather_rows_into(&self, idx: &[usize], out: &mut Tensor) {
        let w = self.row_len();
        out.shape.clear();
        out.shape.push(idx.len());
        out.shape.extend_from_slice(&self.shape[1..]);
        out.data.resize(idx.len() * w, 0.0);
        for (o, &i) in idx.iter().enumerate() {
            out.data[o * w..(o + 1) * w].copy_from_slice(self.row(i));
        }
    }

    /// Split each row into two column blocks `(left, right)` at `at`.
    pub fn split_cols(&self, at: usize) -> (Tensor, Tensor) {
        let w = self.row_len();
        assert!(at <= w, "split point {at} beyond row length {w}");
        let b = self.batch();
        let mut left = Tensor::zeros(&[b, at]);
        let mut right = Tensor::zeros(&[b, w - at]);
        for i in 0..b {
            left.row_mut(i).copy_from_slice(&self.row(i)[..at]);
            right.row_mut(i).copy_from_slice(&self.row(i)[at..]);
        }
        (left, right)
    }

    /// Concatenate two batch tensors along columns.
    pub fn concat_cols(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.batch(), b.batch(), "batch mismatch");
        let (wa, wb) = (a.row_len(), b.row_len());
        let mut out = Tensor::zeros(&[a.batch(), wa + wb]);
        for i in 0..a.batch() {
            out.row_mut(i)[..wa].copy_from_slice(a.row(i));
            out.row_mut(i)[wa..].copy_from_slice(b.row(i));
        }
        out
    }

    /// `C = A · B` for 2-D tensors `[m, k] × [k, n]`.
    pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(b.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (a.shape[0], a.shape[1]);
        let (k2, n) = (b.shape[0], b.shape[1]);
        assert_eq!(k, k2, "inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        gemm::gemm(m, k, n, &a.data, &b.data, &mut out, false);
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// `C = Aᵀ · B` for 2-D tensors `[k, m]ᵀ × [k, n]`.
    pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.shape.len(), 2);
        assert_eq!(b.shape.len(), 2);
        let (k, m) = (a.shape[0], a.shape[1]);
        let (k2, n) = (b.shape[0], b.shape[1]);
        assert_eq!(k, k2, "inner dimensions differ");
        let mut out = vec![0.0f32; m * n];
        gemm::gemm_tn(m, k, n, &a.data, &b.data, &mut out, false);
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// `C += Aᵀ · B` accumulated into an existing `[m, n]` tensor; used by
    /// backward passes that sum weight gradients over a batch without an
    /// intermediate allocation.
    pub fn matmul_tn_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) {
        assert_eq!(a.shape.len(), 2);
        assert_eq!(b.shape.len(), 2);
        let (k, m) = (a.shape[0], a.shape[1]);
        let (k2, n) = (b.shape[0], b.shape[1]);
        assert_eq!(k, k2, "inner dimensions differ");
        assert_eq!(out.shape(), &[m, n], "accumulator shape mismatch");
        gemm::gemm_tn(m, k, n, &a.data, &b.data, &mut out.data, true);
    }

    /// `C = A · Bᵀ` for 2-D tensors `[m, k] × [n, k]ᵀ`.
    pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.shape.len(), 2);
        assert_eq!(b.shape.len(), 2);
        let (m, k) = (a.shape[0], a.shape[1]);
        let (n, k2) = (b.shape[0], b.shape[1]);
        assert_eq!(k, k2, "inner dimensions differ");
        let mut out = vec![0.0f32; m * n];
        gemm::gemm_nt(m, k, n, &a.data, &b.data, &mut out, false);
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scale all elements in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.batch(), 2);
        assert_eq!(t.row_len(), 12);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_len() {
        Tensor::from_vec(&[2, 2], vec![1.0; 5]);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = Tensor::matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transposed_variants_agree() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = Tensor::matmul(&a, &b);
        // A^T stored as [3,2] -> matmul_tn([3,2] holding A^T, b) == c
        let at = Tensor::from_vec(&[3, 2], vec![1., 4., 2., 5., 3., 6.]);
        assert_eq!(Tensor::matmul_tn(&at, &b), c);
        // B^T stored as [2,3] -> matmul_nt(a, bt) == c
        let bt = Tensor::from_vec(&[2, 3], vec![7., 9., 11., 8., 10., 12.]);
        assert_eq!(Tensor::matmul_nt(&a, &bt), c);
    }

    #[test]
    fn split_and_concat_roundtrip() {
        let t = Tensor::from_vec(&[2, 4], vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let (l, r) = t.split_cols(3);
        assert_eq!(l.shape(), &[2, 3]);
        assert_eq!(r.shape(), &[2, 1]);
        let back = Tensor::concat_cols(&l, &r);
        assert_eq!(back, t);
    }

    #[test]
    fn gather_rows_into_reuses_scratch() {
        let x = Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let mut out = Tensor::zeros(&[0]);
        x.gather_rows_into(&[2, 0], &mut out);
        assert_eq!(out.shape(), &[2, 2]);
        assert_eq!(out.data(), &[5., 6., 1., 2.]);
        // Shorter final batch shrinks the scratch in place.
        x.gather_rows_into(&[1], &mut out);
        assert_eq!(out.shape(), &[1, 2]);
        assert_eq!(out.data(), &[3., 4.]);
    }

    #[test]
    fn stack_rows_builds_batches() {
        let r0 = [1.0f32, 2.0];
        let r1 = [3.0f32, 4.0];
        let t = Tensor::stack_rows(&[&r0, &r1], &[2]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(&[2], vec![0.5, 0.5]);
        a.add_assign(&b);
        a.scale(2.0);
        assert_eq!(a.data(), &[3.0, 5.0]);
    }
}

//! Cache-blocked, register-tiled `f32` matrix multiplication.
//!
//! Classic three-level blocking in the BLIS style: the operands are cut
//! into `MC × KC` panels of A and `KC × NC` panels of B, each packed into
//! contiguous micro-panel storage, and an `MR × NR` register-tile
//! micro-kernel runs over the packed data with unit stride. Packing makes
//! the inner loop layout-independent, so the transposed variants
//! ([`gemm_tn`], [`gemm_nt`]) cost the same as the plain one — transposition
//! is absorbed at packing time.
//!
//! All entry points take an `accumulate` flag: `false` computes `C = op(A)
//! · op(B)`, `true` computes `C += op(A) · op(B)` (used by the convolution
//! weight-gradient, which sums over batch items).
//!
//! Large multiplies are row-partitioned across threads with
//! [`crate::par::par_map_chunked`]; small ones stay sequential (see
//! [`PAR_FLOP_THRESHOLD`]). The worker count honors the
//! `STENCILMART_THREADS` environment variable.

use crate::par;
use stencilmart_obs::counters;

/// Rows per register tile.
pub const MR: usize = 8;
/// Columns per register tile (two AVX2 lanes, one AVX-512 lane).
pub const NR: usize = 16;

/// Rows of A per cache panel (multiple of `MR`; sized for L2 residency of
/// the packed A panel: MC·KC·4 B = 64 KiB).
const MC: usize = 64;
/// Shared dimension per cache panel.
const KC: usize = 256;
/// Columns of B per cache panel (multiple of `NR`; packed B panel is
/// KC·NC·4 B = 512 KiB, L3-resident).
const NC: usize = 512;

/// Minimum `2·m·k·n` flop count before threads are spawned. Below this the
/// spawn/join overhead outweighs the work.
pub const PAR_FLOP_THRESHOLD: usize = 1 << 23;

/// How the left operand is stored.
#[derive(Clone, Copy)]
enum Lhs<'a> {
    /// `A` is `[m, k]` row-major: `a[i][p] = data[i*k + p]`.
    RowMajor(&'a [f32]),
    /// `A` is stored transposed as `[k, m]`: `a[i][p] = data[p*m + i]`.
    Transposed(&'a [f32]),
}

/// How the right operand is stored.
#[derive(Clone, Copy)]
enum Rhs<'a> {
    /// `B` is `[k, n]` row-major: `b[p][j] = data[p*n + j]`.
    RowMajor(&'a [f32]),
    /// `B` is stored transposed as `[n, k]`: `b[p][j] = data[j*k + p]`.
    Transposed(&'a [f32]),
}

/// `C = A·B` (or `C += A·B`) with `A: [m,k]`, `B: [k,n]`, `C: [m,n]`, all
/// row-major.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], accumulate: bool) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    gemm_dispatch(m, k, n, Lhs::RowMajor(a), Rhs::RowMajor(b), c, accumulate);
}

/// `C = Aᵀ·B` (or `+=`) with `A` stored `[k,m]`, `B: [k,n]`, `C: [m,n]`.
pub fn gemm_tn(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    gemm_dispatch(m, k, n, Lhs::Transposed(a), Rhs::RowMajor(b), c, accumulate);
}

/// `C = A·Bᵀ` (or `+=`) with `A: [m,k]`, `B` stored `[n,k]`, `C: [m,n]`.
pub fn gemm_nt(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    gemm_dispatch(m, k, n, Lhs::RowMajor(a), Rhs::Transposed(b), c, accumulate);
}

fn gemm_dispatch(
    m: usize,
    k: usize,
    n: usize,
    lhs: Lhs<'_>,
    rhs: Rhs<'_>,
    c: &mut [f32],
    accumulate: bool,
) {
    assert_eq!(c.len(), m * n, "output buffer is {} not {}", c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    // One relaxed RMW per entry-point call (not per tile) keeps the
    // accounting cost invisible against the O(m·k·n) compute.
    counters::GEMM_CALLS.inc();
    counters::GEMM_FLOPS.add((2 * m * k * n) as u64);
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    if !accumulate {
        c.fill(0.0);
    }
    let workers = par::worker_count();
    if workers > 1 && 2 * m * k * n >= PAR_FLOP_THRESHOLD && m >= 2 * MR {
        // Row-partition C: each worker owns a contiguous MR-aligned block
        // of rows and computes them into a private buffer; the stitch back
        // into C is O(m·n), negligible against the O(m·k·n) compute.
        let rows_per = (m.div_ceil(workers)).div_ceil(MR) * MR;
        let blocks: Vec<(usize, usize)> = (0..m)
            .step_by(rows_per)
            .map(|r0| (r0, rows_per.min(m - r0)))
            .collect();
        let parts = par::par_map_chunked(&blocks, 1, |&(r0, rows)| {
            let mut part = vec![0.0f32; rows * n];
            gemm_serial(r0, rows, k, n, lhs, rhs, &mut part);
            part
        });
        for ((r0, rows), part) in blocks.iter().zip(parts) {
            for (local, row) in (*r0..r0 + rows).enumerate() {
                let dst = &mut c[row * n..(row + 1) * n];
                let src = &part[local * n..(local + 1) * n];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
        }
    } else {
        gemm_serial(0, m, k, n, lhs, rhs, c);
    }
}

/// Serial blocked GEMM over logical rows `row0 .. row0+rows`, accumulating
/// into a buffer whose first row corresponds to global row `row0` (the
/// full `C` when `row0 == 0`, a worker's private block otherwise).
fn gemm_serial(
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    lhs: Lhs<'_>,
    rhs: Rhs<'_>,
    c: &mut [f32],
) {
    gemm_blocked(row0, rows, k, n, lhs, rhs, c, row0);
}

/// The panel loop nest. `c` holds rows `c_row0 ..` of the output with
/// leading dimension `n`; the block of logical rows computed is
/// `row0 .. row0+rows`.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    lhs: Lhs<'_>,
    rhs: Rhs<'_>,
    c: &mut [f32],
    c_row0: usize,
) {
    let mut apack = vec![0.0f32; MC.div_ceil(MR) * MR * KC];
    let mut bpack = vec![0.0f32; NC.div_ceil(NR) * NR * KC];
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(rhs, k, n, pc, kc, jc, nc, &mut bpack);
            let mut ic = 0;
            while ic < rows {
                let mc = MC.min(rows - ic);
                pack_a(lhs, k, row0 + ic, mc, pc, kc, &mut apack);
                macro_tile(mc, kc, nc, &apack, &bpack, c, (row0 + ic) - c_row0, jc, n);
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Pack `mc` rows × `kc` depth of A into MR-row micro-panels: panel `s`
/// holds rows `s·MR .. s·MR+MR` laid out depth-major so the micro-kernel
/// reads `MR` values per depth step with unit stride. Tail rows are
/// zero-padded.
fn pack_a(lhs: Lhs<'_>, k: usize, i0: usize, mc: usize, p0: usize, kc: usize, out: &mut [f32]) {
    let strips = mc.div_ceil(MR);
    out[..strips * kc * MR].fill(0.0);
    for s in 0..strips {
        let base = s * kc * MR;
        let rows = MR.min(mc - s * MR);
        match lhs {
            Lhs::RowMajor(a) => {
                for r in 0..rows {
                    let src = &a[(i0 + s * MR + r) * k + p0..][..kc];
                    for (p, &v) in src.iter().enumerate() {
                        out[base + p * MR + r] = v;
                    }
                }
            }
            Lhs::Transposed(a) => {
                // `a` is [k, m]; row i of A is column i of the storage, so
                // consecutive r are adjacent — copy a row of storage per p.
                let m_stride = a.len() / k;
                for p in 0..kc {
                    let src = &a[(p0 + p) * m_stride + i0 + s * MR..][..rows];
                    out[base + p * MR..base + p * MR + rows].copy_from_slice(src);
                }
            }
        }
    }
}

/// Pack `kc` depth × `nc` columns of B into NR-column micro-panels, each
/// laid out depth-major (`NR` contiguous values per depth step). Tail
/// columns are zero-padded.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    rhs: Rhs<'_>,
    k: usize,
    n: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    out: &mut [f32],
) {
    let strips = nc.div_ceil(NR);
    out[..strips * kc * NR].fill(0.0);
    for s in 0..strips {
        let base = s * kc * NR;
        let cols = NR.min(nc - s * NR);
        match rhs {
            Rhs::RowMajor(b) => {
                for p in 0..kc {
                    let src = &b[(p0 + p) * n + j0 + s * NR..][..cols];
                    out[base + p * NR..base + p * NR + cols].copy_from_slice(src);
                }
            }
            Rhs::Transposed(b) => {
                // `b` is [n, k]; column j of B is row j of the storage.
                for j in 0..cols {
                    let src = &b[(j0 + s * NR + j) * k + p0..][..kc];
                    for (p, &v) in src.iter().enumerate() {
                        out[base + p * NR + j] = v;
                    }
                }
            }
        }
    }
}

/// Run the micro-kernel over every `MR × NR` tile of an `mc × nc` block,
/// accumulating into `c` at logical offset (`ci0`, `j0`).
#[allow(clippy::too_many_arguments)]
fn macro_tile(
    mc: usize,
    kc: usize,
    nc: usize,
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    ci0: usize,
    j0: usize,
    ldc: usize,
) {
    let mstrips = mc.div_ceil(MR);
    let nstrips = nc.div_ceil(NR);
    for js in 0..nstrips {
        let bp = &bpack[js * kc * NR..(js + 1) * kc * NR];
        let cols = NR.min(nc - js * NR);
        for is in 0..mstrips {
            let ap = &apack[is * kc * MR..(is + 1) * kc * MR];
            let rows = MR.min(mc - is * MR);
            let mut acc = [[0.0f32; NR]; MR];
            microkernel(kc, ap, bp, &mut acc);
            for (r, acc_row) in acc.iter().enumerate().take(rows) {
                let crow = (ci0 + is * MR + r) * ldc + j0 + js * NR;
                let dst = &mut c[crow..crow + cols];
                for (d, &v) in dst.iter_mut().zip(acc_row.iter()) {
                    *d += v;
                }
            }
        }
    }
}

/// Fused multiply-add when the target guarantees hardware FMA; plain
/// mul+add otherwise (`mul_add` without the feature lowers to a libm call,
/// which would be ruinous in the hot loop).
#[inline(always)]
fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// The register tile: `MR × NR` accumulators updated across the packed
/// depth. Each row's accumulator is a separate named array so LLVM keeps
/// four independent `NR`-wide FMA chains in vector registers; a single
/// `[[f32; NR]; MR]` tempts the SLP vectorizer into vectorizing across the
/// rows instead (broadcast + gather/scatter, an order of magnitude slower).
#[inline(always)]
fn microkernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    const { assert!(MR == 8) };
    let [mut c0, mut c1, mut c2, mut c3, mut c4, mut c5, mut c6, mut c7] = *acc;
    for p in 0..kc {
        let a: &[f32; MR] = ap[p * MR..p * MR + MR].try_into().unwrap();
        let b: &[f32; NR] = bp[p * NR..p * NR + NR].try_into().unwrap();
        macro_rules! row {
            ($c:ident, $i:expr) => {
                for j in 0..NR {
                    $c[j] = fmadd(a[$i], b[j], $c[j]);
                }
            };
        }
        row!(c0, 0);
        row!(c1, 1);
        row!(c2, 2);
        row!(c3, 3);
        row!(c4, 4);
        row!(c5, 5);
        row!(c6, 6);
        row!(c7, 7);
    }
    *acc = [c0, c1, c2, c3, c4, c5, c6, c7];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn lcg_fill(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u32 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn assert_close(actual: &[f32], expect: &[f32], what: &str) {
        assert_eq!(actual.len(), expect.len());
        for (i, (a, e)) in actual.iter().zip(expect).enumerate() {
            let tol = 1e-4f32.max(e.abs() * 1e-4);
            assert!((a - e).abs() <= tol, "{what}[{i}]: {a} vs {e}");
        }
    }

    #[test]
    fn matches_reference_across_shapes() {
        // Shapes straddling every blocking boundary: unit dims, sub-tile,
        // exact-tile, and just past MC/KC/NC edges.
        let shapes = [
            (1, 1, 1),
            (1, 7, 19),
            (3, 1, 5),
            (4, 16, 16),
            (5, 17, 33),
            (MR, KC, NR),
            (MC + 3, KC + 5, NR + 1),
            (2 * MR + 1, 3, 2 * NR + 7),
        ];
        for &(m, k, n) in &shapes {
            let a = lcg_fill(m as u64 * 31 + k as u64, m * k);
            let b = lcg_fill(n as u64 * 17 + 7, k * n);
            let expect = reference::matmul(m, k, n, &a, &b);
            let mut c = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c, false);
            assert_close(&c, &expect, "gemm");
        }
    }

    #[test]
    fn transposed_variants_match_reference() {
        let (m, k, n) = (37, 29, 51);
        let a = lcg_fill(1, m * k);
        let b = lcg_fill(2, k * n);
        let expect = reference::matmul(m, k, n, &a, &b);

        // A stored [k, m].
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_tn(m, k, n, &at, &b, &mut c, false);
        assert_close(&c, &expect, "gemm_tn");

        // B stored [n, k].
        let mut bt = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut c2 = vec![0.0; m * n];
        gemm_nt(m, k, n, &a, &bt, &mut c2, false);
        assert_close(&c2, &expect, "gemm_nt");
    }

    #[test]
    fn accumulate_adds_onto_existing_output() {
        let (m, k, n) = (9, 11, 13);
        let a = lcg_fill(3, m * k);
        let b = lcg_fill(4, k * n);
        let product = reference::matmul(m, k, n, &a, &b);
        let mut c: Vec<f32> = (0..m * n).map(|i| i as f32 * 0.25).collect();
        let expect: Vec<f32> = c.iter().zip(&product).map(|(x, y)| x + y).collect();
        gemm(m, k, n, &a, &b, &mut c, true);
        assert_close(&c, &expect, "gemm+=");
    }

    #[test]
    fn zero_k_clears_or_keeps_output() {
        let mut c = vec![5.0f32; 6];
        gemm(2, 0, 3, &[], &[], &mut c, true);
        assert_eq!(c, vec![5.0; 6]);
        gemm(2, 0, 3, &[], &[], &mut c, false);
        assert_eq!(c, vec![0.0; 6]);
    }

    #[test]
    fn threaded_path_matches_serial() {
        // Force the parallel branch: exceed the flop threshold and pin the
        // worker count above 1 regardless of the host's core count.
        let _guard = par::test_env_lock();
        std::env::set_var("STENCILMART_THREADS", "3");
        let (m, k, n) = (256, 128, 160);
        assert!(2 * m * k * n >= PAR_FLOP_THRESHOLD);
        let a = lcg_fill(5, m * k);
        let b = lcg_fill(6, k * n);
        let expect = reference::matmul(m, k, n, &a, &b);
        let mut c = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c, false);
        std::env::remove_var("STENCILMART_THREADS");
        assert_close(&c, &expect, "gemm-par");
    }
}

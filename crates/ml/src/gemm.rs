//! Cache-blocked, register-tiled `f32` matrix multiplication.
//!
//! Classic three-level blocking in the BLIS style: the operands are cut
//! into `MC × KC` panels of A and `KC × NC` panels of B, each packed into
//! contiguous micro-panel storage, and an `MR × NR` register-tile
//! micro-kernel runs over the packed data with unit stride. Packing makes
//! the inner loop layout-independent, so the transposed variants
//! ([`gemm_tn`], [`gemm_nt`]) cost the same as the plain one — transposition
//! is absorbed at packing time.
//!
//! All entry points take an `accumulate` flag: `false` computes `C = op(A)
//! · op(B)`, `true` computes `C += op(A) · op(B)` (used by the convolution
//! weight-gradient, which sums over batch items).
//!
//! Large multiplies are row-partitioned across threads with
//! [`crate::par::par_map_chunked`]; small ones stay sequential (see
//! [`PAR_FLOP_THRESHOLD`]). The worker count honors the
//! `STENCILMART_THREADS` environment variable.
//!
//! The micro-kernel is dispatched at runtime through [`crate::simd`]:
//! an AVX-512F or AVX2+FMA `core::arch` kernel when the host supports
//! it, the portable scalar kernel otherwise (or always, under
//! `STENCILMART_NO_SIMD=1`). Every kernel keeps each output element's
//! FMA chain in identical depth order, so results are bit-identical
//! across tiers (DESIGN.md §14). Shapes below [`DIRECT_FLOP_THRESHOLD`]
//! with a row-major right operand skip packing entirely and run the
//! register tile over the operands in place — at those sizes the
//! packing copies cost more than they save.

use crate::par;
use crate::simd::{self, SimdIsa};
use stencilmart_obs::counters;

/// Rows per register tile.
pub const MR: usize = 8;
/// Columns per register tile (two AVX2 lanes, one AVX-512 lane).
pub const NR: usize = 16;

/// Rows of A per cache panel (multiple of `MR`; sized for L2 residency of
/// the packed A panel: MC·KC·4 B = 64 KiB).
const MC: usize = 64;
/// Shared dimension per cache panel.
const KC: usize = 256;
/// Columns of B per cache panel (multiple of `NR`; packed B panel is
/// KC·NC·4 B = 512 KiB, L3-resident).
const NC: usize = 512;

/// Minimum `2·m·k·n` flop count before threads are spawned. Below this the
/// spawn/join overhead outweighs the work.
pub const PAR_FLOP_THRESHOLD: usize = 1 << 23;

/// Below this `2·m·k·n` flop count (and with a row-major right operand)
/// the packed panel machinery is skipped: the operands fit in L1/L2, so
/// the O(m·k + k·n) packing copies and their cache traffic dominate the
/// multiply itself. The cut is a *shape-only* decision — it never
/// depends on the active instruction set, so a given call always takes
/// the same code path on every host (see DESIGN.md §14).
pub const DIRECT_FLOP_THRESHOLD: usize = 1 << 22;

/// How the left operand is stored.
#[derive(Clone, Copy)]
enum Lhs<'a> {
    /// `A` is `[m, k]` row-major: `a[i][p] = data[i*k + p]`.
    RowMajor(&'a [f32]),
    /// `A` is stored transposed as `[k, m]`: `a[i][p] = data[p*m + i]`.
    Transposed(&'a [f32]),
}

/// How the right operand is stored.
#[derive(Clone, Copy)]
enum Rhs<'a> {
    /// `B` is `[k, n]` row-major: `b[p][j] = data[p*n + j]`.
    RowMajor(&'a [f32]),
    /// `B` is stored transposed as `[n, k]`: `b[p][j] = data[j*k + p]`.
    Transposed(&'a [f32]),
}

/// `C = A·B` (or `C += A·B`) with `A: [m,k]`, `B: [k,n]`, `C: [m,n]`, all
/// row-major.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], accumulate: bool) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    gemm_dispatch(m, k, n, Lhs::RowMajor(a), Rhs::RowMajor(b), c, accumulate);
}

/// `C = Aᵀ·B` (or `+=`) with `A` stored `[k,m]`, `B: [k,n]`, `C: [m,n]`.
pub fn gemm_tn(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    gemm_dispatch(m, k, n, Lhs::Transposed(a), Rhs::RowMajor(b), c, accumulate);
}

/// `C = A·Bᵀ` (or `+=`) with `A: [m,k]`, `B` stored `[n,k]`, `C: [m,n]`.
pub fn gemm_nt(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    gemm_dispatch(m, k, n, Lhs::RowMajor(a), Rhs::Transposed(b), c, accumulate);
}

fn gemm_dispatch(
    m: usize,
    k: usize,
    n: usize,
    lhs: Lhs<'_>,
    rhs: Rhs<'_>,
    c: &mut [f32],
    accumulate: bool,
) {
    assert_eq!(c.len(), m * n, "output buffer is {} not {}", c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    // One relaxed RMW per entry-point call (not per tile) keeps the
    // accounting cost invisible against the O(m·k·n) compute.
    counters::GEMM_CALLS.inc();
    counters::GEMM_FLOPS.add((2 * m * k * n) as u64);
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    if !accumulate {
        c.fill(0.0);
    }
    // One dispatch decision per entry-point call: a single multiply
    // never mixes instruction-set tiers, even across worker threads.
    let isa = simd::dispatch();
    if 2 * m * k * n < DIRECT_FLOP_THRESHOLD {
        if let Rhs::RowMajor(b) = rhs {
            gemm_direct(m, k, n, lhs, b, c, isa);
            return;
        }
    }
    let workers = par::worker_count();
    if workers > 1 && 2 * m * k * n >= PAR_FLOP_THRESHOLD && m >= 2 * MR {
        // Row-partition C: each worker owns a contiguous MR-aligned block
        // of rows and computes them into a private buffer; the stitch back
        // into C is O(m·n), negligible against the O(m·k·n) compute.
        let rows_per = (m.div_ceil(workers)).div_ceil(MR) * MR;
        let blocks: Vec<(usize, usize)> = (0..m)
            .step_by(rows_per)
            .map(|r0| (r0, rows_per.min(m - r0)))
            .collect();
        let parts = par::par_map_chunked(&blocks, 1, |&(r0, rows)| {
            let mut part = vec![0.0f32; rows * n];
            gemm_serial(r0, rows, k, n, lhs, rhs, &mut part, isa);
            part
        });
        for ((r0, rows), part) in blocks.iter().zip(parts) {
            for (local, row) in (*r0..r0 + rows).enumerate() {
                let dst = &mut c[row * n..(row + 1) * n];
                let src = &part[local * n..(local + 1) * n];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
        }
    } else {
        gemm_serial(0, m, k, n, lhs, rhs, c, isa);
    }
}

/// Serial blocked GEMM over logical rows `row0 .. row0+rows`, accumulating
/// into a buffer whose first row corresponds to global row `row0` (the
/// full `C` when `row0 == 0`, a worker's private block otherwise).
#[allow(clippy::too_many_arguments)]
fn gemm_serial(
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    lhs: Lhs<'_>,
    rhs: Rhs<'_>,
    c: &mut [f32],
    isa: SimdIsa,
) {
    gemm_blocked(row0, rows, k, n, lhs, rhs, c, row0, isa);
}

/// The panel loop nest. `c` holds rows `c_row0 ..` of the output with
/// leading dimension `n`; the block of logical rows computed is
/// `row0 .. row0+rows`.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    row0: usize,
    rows: usize,
    k: usize,
    n: usize,
    lhs: Lhs<'_>,
    rhs: Rhs<'_>,
    c: &mut [f32],
    c_row0: usize,
    isa: SimdIsa,
) {
    let mut apack = vec![0.0f32; MC.div_ceil(MR) * MR * KC];
    let mut bpack = vec![0.0f32; NC.div_ceil(NR) * NR * KC];
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(rhs, k, n, pc, kc, jc, nc, &mut bpack);
            let mut ic = 0;
            while ic < rows {
                let mc = MC.min(rows - ic);
                pack_a(lhs, k, row0 + ic, mc, pc, kc, &mut apack);
                macro_tile(
                    mc,
                    kc,
                    nc,
                    &apack,
                    &bpack,
                    c,
                    (row0 + ic) - c_row0,
                    jc,
                    n,
                    isa,
                );
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Pack `mc` rows × `kc` depth of A into MR-row micro-panels: panel `s`
/// holds rows `s·MR .. s·MR+MR` laid out depth-major so the micro-kernel
/// reads `MR` values per depth step with unit stride. Tail rows are
/// zero-padded.
fn pack_a(lhs: Lhs<'_>, k: usize, i0: usize, mc: usize, p0: usize, kc: usize, out: &mut [f32]) {
    let strips = mc.div_ceil(MR);
    out[..strips * kc * MR].fill(0.0);
    for s in 0..strips {
        let base = s * kc * MR;
        let rows = MR.min(mc - s * MR);
        match lhs {
            Lhs::RowMajor(a) => {
                for r in 0..rows {
                    let src = &a[(i0 + s * MR + r) * k + p0..][..kc];
                    for (p, &v) in src.iter().enumerate() {
                        out[base + p * MR + r] = v;
                    }
                }
            }
            Lhs::Transposed(a) => {
                // `a` is [k, m]; row i of A is column i of the storage, so
                // consecutive r are adjacent — copy a row of storage per p.
                let m_stride = a.len() / k;
                for p in 0..kc {
                    let src = &a[(p0 + p) * m_stride + i0 + s * MR..][..rows];
                    out[base + p * MR..base + p * MR + rows].copy_from_slice(src);
                }
            }
        }
    }
}

/// Pack `kc` depth × `nc` columns of B into NR-column micro-panels, each
/// laid out depth-major (`NR` contiguous values per depth step). Tail
/// columns are zero-padded.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    rhs: Rhs<'_>,
    k: usize,
    n: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    out: &mut [f32],
) {
    let strips = nc.div_ceil(NR);
    out[..strips * kc * NR].fill(0.0);
    for s in 0..strips {
        let base = s * kc * NR;
        let cols = NR.min(nc - s * NR);
        match rhs {
            Rhs::RowMajor(b) => {
                for p in 0..kc {
                    let src = &b[(p0 + p) * n + j0 + s * NR..][..cols];
                    out[base + p * NR..base + p * NR + cols].copy_from_slice(src);
                }
            }
            Rhs::Transposed(b) => {
                // `b` is [n, k]; column j of B is row j of the storage.
                for j in 0..cols {
                    let src = &b[(j0 + s * NR + j) * k + p0..][..kc];
                    for (p, &v) in src.iter().enumerate() {
                        out[base + p * NR + j] = v;
                    }
                }
            }
        }
    }
}

/// Run the micro-kernel over every `MR × NR` tile of an `mc × nc` block,
/// accumulating into `c` at logical offset (`ci0`, `j0`).
#[allow(clippy::too_many_arguments)]
fn macro_tile(
    mc: usize,
    kc: usize,
    nc: usize,
    apack: &[f32],
    bpack: &[f32],
    c: &mut [f32],
    ci0: usize,
    j0: usize,
    ldc: usize,
    isa: SimdIsa,
) {
    let mstrips = mc.div_ceil(MR);
    let nstrips = nc.div_ceil(NR);
    for js in 0..nstrips {
        let bp = &bpack[js * kc * NR..(js + 1) * kc * NR];
        let cols = NR.min(nc - js * NR);
        for is in 0..mstrips {
            let ap = &apack[is * kc * MR..(is + 1) * kc * MR];
            let rows = MR.min(mc - is * MR);
            let mut acc = [[0.0f32; NR]; MR];
            run_microkernel(kc, ap, bp, &mut acc, isa);
            for (r, acc_row) in acc.iter().enumerate().take(rows) {
                let crow = (ci0 + is * MR + r) * ldc + j0 + js * NR;
                let dst = &mut c[crow..crow + cols];
                for (d, &v) in dst.iter_mut().zip(acc_row.iter()) {
                    *d += v;
                }
            }
        }
    }
}

/// Fused multiply-add when the target guarantees hardware FMA; plain
/// mul+add otherwise (`mul_add` without the feature lowers to a libm call,
/// which would be ruinous in the hot loop).
#[inline(always)]
fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// The register tile: `MR × NR` accumulators updated across the packed
/// depth. Each row's accumulator is a separate named array so LLVM keeps
/// four independent `NR`-wide FMA chains in vector registers; a single
/// `[[f32; NR]; MR]` tempts the SLP vectorizer into vectorizing across the
/// rows instead (broadcast + gather/scatter, an order of magnitude slower).
#[inline(always)]
fn microkernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    const { assert!(MR == 8) };
    let [mut c0, mut c1, mut c2, mut c3, mut c4, mut c5, mut c6, mut c7] = *acc;
    for p in 0..kc {
        let a: &[f32; MR] = ap[p * MR..p * MR + MR].try_into().unwrap();
        let b: &[f32; NR] = bp[p * NR..p * NR + NR].try_into().unwrap();
        macro_rules! row {
            ($c:ident, $i:expr) => {
                for j in 0..NR {
                    $c[j] = fmadd(a[$i], b[j], $c[j]);
                }
            };
        }
        row!(c0, 0);
        row!(c1, 1);
        row!(c2, 2);
        row!(c3, 3);
        row!(c4, 4);
        row!(c5, 5);
        row!(c6, 6);
        row!(c7, 7);
    }
    *acc = [c0, c1, c2, c3, c4, c5, c6, c7];
}

/// Run the micro-kernel variant for `isa` over one packed tile.
///
/// All variants compute the identical fmadd chain per accumulator
/// element (depth-ascending, one chain per element), so the choice is
/// invisible in the output bits — only in throughput.
#[inline(always)]
fn run_microkernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR], isa: SimdIsa) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `isa` comes from `simd::dispatch()`, which only
        // reports a tier after `is_x86_feature_detected!` confirmed it.
        SimdIsa::Avx512 => unsafe { x86::microkernel_avx512(kc, ap, bp, acc) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — AVX2+FMA were runtime-detected.
        SimdIsa::Avx2 => unsafe { x86::microkernel_avx2(kc, ap, bp, acc) },
        _ => microkernel(kc, ap, bp, acc),
    }
}

/// Left-operand element `(i, p)` regardless of storage layout (only used
/// on the cold edges of the direct path; the hot loops read via layout-
/// specific strides).
#[inline(always)]
fn lhs_at(lhs: Lhs<'_>, k: usize, m: usize, i: usize, p: usize) -> f32 {
    match lhs {
        Lhs::RowMajor(a) => a[i * k + p],
        Lhs::Transposed(a) => a[p * m + i],
    }
}

/// No-pack path for small shapes (`2·m·k·n <` [`DIRECT_FLOP_THRESHOLD`],
/// row-major B): runs the `MR × NR` register tile directly over the
/// operands — strided loads instead of packed panels — because at these
/// sizes everything is cache-resident and packing is pure overhead.
/// Accumulates onto whatever `c` holds (the caller zero-fills for the
/// non-accumulating entry points), preserving the per-element
/// depth-ascending fmadd chain of the packed path's kernels.
fn gemm_direct(m: usize, k: usize, n: usize, lhs: Lhs<'_>, b: &[f32], c: &mut [f32], isa: SimdIsa) {
    let mfull = m / MR * MR;
    let nfull = n / NR * NR;
    if isa >= SimdIsa::Avx2 {
        #[cfg(target_arch = "x86_64")]
        {
            // `(row stride, depth stride)` of the A storage, so one
            // kernel serves both layouts via scalar broadcast loads.
            let (abase, ars, aps): (&[f32], usize, usize) = match lhs {
                Lhs::RowMajor(a) => (a, k, 1),
                Lhs::Transposed(a) => (a, 1, m),
            };
            for i0 in (0..mfull).step_by(MR) {
                for j0 in (0..nfull).step_by(NR) {
                    let a0 = match lhs {
                        Lhs::RowMajor(_) => i0 * k,
                        Lhs::Transposed(_) => i0,
                    };
                    // SAFETY: AVX2+FMA runtime-detected (isa ≥ Avx2 and
                    // every tier above Scalar implies them); all strided
                    // accesses stay in bounds: rows i0..i0+MR ≤ m,
                    // cols j0..j0+NR ≤ n, depth 0..k.
                    unsafe {
                        x86::direct_tile_avx2(
                            k,
                            abase.as_ptr().add(a0),
                            ars,
                            aps,
                            b.as_ptr().add(j0),
                            n,
                            c.as_mut_ptr().add(i0 * n + j0),
                            n,
                        );
                    }
                }
            }
            direct_edges_scalar(m, k, n, lhs, b, c, mfull, nfull);
            return;
        }
    }
    // Scalar fallback: axpy form (depth-middle, column-inner) so the
    // autovectorizer gets unit-stride rows of B and C while each output
    // element still sees the same depth-ascending chain.
    for i in 0..m {
        let crow = &mut c[i * n..][..n];
        for p in 0..k {
            let a = lhs_at(lhs, k, m, i, p);
            let brow = &b[p * n..][..n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = fmadd(a, bv, *cv);
            }
        }
    }
}

/// Finish the direct path's ragged edges (rows ≥ `mfull`, columns ≥
/// `nfull`) one element at a time, with the same depth-ascending chain
/// as the tiled interior.
#[allow(clippy::too_many_arguments)]
fn direct_edges_scalar(
    m: usize,
    k: usize,
    n: usize,
    lhs: Lhs<'_>,
    b: &[f32],
    c: &mut [f32],
    mfull: usize,
    nfull: usize,
) {
    let cell = |i: usize, j: usize, c: &mut [f32]| {
        let mut acc = c[i * n + j];
        for p in 0..k {
            acc = fmadd(lhs_at(lhs, k, m, i, p), b[p * n + j], acc);
        }
        c[i * n + j] = acc;
    };
    for i in 0..mfull {
        for j in nfull..n {
            cell(i, j, c);
        }
    }
    for i in mfull..m {
        for j in 0..n {
            cell(i, j, c);
        }
    }
}

/// Explicit `core::arch` kernels, selected at runtime by
/// [`crate::simd::dispatch`]. Each mirrors the scalar [`microkernel`]'s
/// reduction order exactly: one fmadd chain per output element,
/// depth-ascending, so scalar and vector paths are bit-identical.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};
    use core::arch::x86_64::*;

    /// AVX2+FMA register tile: two 256-bit C vectors per row (8 × 16),
    /// broadcast-A / load-B fmadd over the packed panels.
    ///
    /// # Safety
    /// Caller must have runtime-verified AVX2 and FMA support, and
    /// `ap`/`bp` must hold at least `kc·MR` / `kc·NR` elements.
    #[allow(clippy::needless_range_loop)]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn microkernel_avx2(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
        debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
        let mut c: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        for r in 0..MR {
            c[r][0] = _mm256_loadu_ps(acc[r].as_ptr());
            c[r][1] = _mm256_loadu_ps(acc[r].as_ptr().add(8));
        }
        let mut apf = ap.as_ptr();
        let mut bpf = bp.as_ptr();
        for _ in 0..kc {
            let b0 = _mm256_loadu_ps(bpf);
            let b1 = _mm256_loadu_ps(bpf.add(8));
            // Unrolled by macro: an `r` loop tempts LLVM into keeping
            // the accumulator array in memory instead of registers.
            macro_rules! row {
                ($i:expr) => {{
                    let a = _mm256_broadcast_ss(&*apf.add($i));
                    c[$i][0] = _mm256_fmadd_ps(a, b0, c[$i][0]);
                    c[$i][1] = _mm256_fmadd_ps(a, b1, c[$i][1]);
                }};
            }
            row!(0);
            row!(1);
            row!(2);
            row!(3);
            row!(4);
            row!(5);
            row!(6);
            row!(7);
            apf = apf.add(MR);
            bpf = bpf.add(NR);
        }
        for r in 0..MR {
            _mm256_storeu_ps(acc[r].as_mut_ptr(), c[r][0]);
            _mm256_storeu_ps(acc[r].as_mut_ptr().add(8), c[r][1]);
        }
    }

    /// AVX-512F register tile: one 512-bit C vector per row (8 × 16).
    /// Deliberately *not* depth-unrolled into split accumulators — that
    /// gains ~4% on this kernel but reassociates the per-element chain
    /// and breaks bit-identity with the scalar oracle (DESIGN.md §14).
    ///
    /// # Safety
    /// Caller must have runtime-verified AVX-512F support, and
    /// `ap`/`bp` must hold at least `kc·MR` / `kc·NR` elements.
    #[allow(clippy::needless_range_loop)]
    #[target_feature(enable = "avx512f")]
    pub unsafe fn microkernel_avx512(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
        debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
        let mut c: [__m512; MR] = [_mm512_setzero_ps(); MR];
        for r in 0..MR {
            c[r] = _mm512_loadu_ps(acc[r].as_ptr());
        }
        let mut apf = ap.as_ptr();
        let mut bpf = bp.as_ptr();
        for _ in 0..kc {
            let b = _mm512_loadu_ps(bpf);
            macro_rules! row {
                ($i:expr) => {{
                    let a = _mm512_set1_ps(*apf.add($i));
                    c[$i] = _mm512_fmadd_ps(a, b, c[$i]);
                }};
            }
            row!(0);
            row!(1);
            row!(2);
            row!(3);
            row!(4);
            row!(5);
            row!(6);
            row!(7);
            apf = apf.add(MR);
            bpf = bpf.add(NR);
        }
        for r in 0..MR {
            _mm512_storeu_ps(acc[r].as_mut_ptr(), c[r]);
        }
    }

    /// The no-pack tile: same 8 × 16 AVX2 register tile as
    /// [`microkernel_avx2`], but reading A and B in place. A elements
    /// are scalar broadcasts at `a + r·ars + p·aps` (serving both
    /// storage layouts); B rows are loaded with leading dimension
    /// `ldb`. C is loaded first and stored once, so the tile
    /// *accumulates* like the packed path does.
    ///
    /// # Safety
    /// Caller must have runtime-verified AVX2 and FMA support, and the
    /// full tile must be in bounds: `a` addresses up to
    /// `(MR-1)·ars + (kc-1)·aps`, `b` up to `(kc-1)·ldb + NR`, `c` up
    /// to `(MR-1)·ldc + NR`.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn direct_tile_avx2(
        kc: usize,
        a: *const f32,
        ars: usize,
        aps: usize,
        b: *const f32,
        ldb: usize,
        c: *mut f32,
        ldc: usize,
    ) {
        let mut acc: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        for r in 0..MR {
            acc[r][0] = _mm256_loadu_ps(c.add(r * ldc));
            acc[r][1] = _mm256_loadu_ps(c.add(r * ldc + 8));
        }
        for p in 0..kc {
            let bp = b.add(p * ldb);
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            let ap = a.add(p * aps);
            macro_rules! row {
                ($i:expr) => {{
                    let av = _mm256_broadcast_ss(&*ap.add($i * ars));
                    acc[$i][0] = _mm256_fmadd_ps(av, b0, acc[$i][0]);
                    acc[$i][1] = _mm256_fmadd_ps(av, b1, acc[$i][1]);
                }};
            }
            row!(0);
            row!(1);
            row!(2);
            row!(3);
            row!(4);
            row!(5);
            row!(6);
            row!(7);
        }
        for r in 0..MR {
            _mm256_storeu_ps(c.add(r * ldc), acc[r][0]);
            _mm256_storeu_ps(c.add(r * ldc + 8), acc[r][1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn lcg_fill(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u32 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn assert_close(actual: &[f32], expect: &[f32], what: &str) {
        assert_eq!(actual.len(), expect.len());
        for (i, (a, e)) in actual.iter().zip(expect).enumerate() {
            let tol = 1e-4f32.max(e.abs() * 1e-4);
            assert!((a - e).abs() <= tol, "{what}[{i}]: {a} vs {e}");
        }
    }

    #[test]
    fn matches_reference_across_shapes() {
        // Shapes straddling every blocking boundary: unit dims, sub-tile,
        // exact-tile, and just past MC/KC/NC edges.
        let shapes = [
            (1, 1, 1),
            (1, 7, 19),
            (3, 1, 5),
            (4, 16, 16),
            (5, 17, 33),
            (MR, KC, NR),
            (MC + 3, KC + 5, NR + 1),
            (2 * MR + 1, 3, 2 * NR + 7),
        ];
        for &(m, k, n) in &shapes {
            let a = lcg_fill(m as u64 * 31 + k as u64, m * k);
            let b = lcg_fill(n as u64 * 17 + 7, k * n);
            let expect = reference::matmul(m, k, n, &a, &b);
            let mut c = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c, false);
            assert_close(&c, &expect, "gemm");
        }
    }

    #[test]
    fn transposed_variants_match_reference() {
        let (m, k, n) = (37, 29, 51);
        let a = lcg_fill(1, m * k);
        let b = lcg_fill(2, k * n);
        let expect = reference::matmul(m, k, n, &a, &b);

        // A stored [k, m].
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c = vec![0.0; m * n];
        gemm_tn(m, k, n, &at, &b, &mut c, false);
        assert_close(&c, &expect, "gemm_tn");

        // B stored [n, k].
        let mut bt = vec![0.0; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let mut c2 = vec![0.0; m * n];
        gemm_nt(m, k, n, &a, &bt, &mut c2, false);
        assert_close(&c2, &expect, "gemm_nt");
    }

    #[test]
    fn accumulate_adds_onto_existing_output() {
        let (m, k, n) = (9, 11, 13);
        let a = lcg_fill(3, m * k);
        let b = lcg_fill(4, k * n);
        let product = reference::matmul(m, k, n, &a, &b);
        let mut c: Vec<f32> = (0..m * n).map(|i| i as f32 * 0.25).collect();
        let expect: Vec<f32> = c.iter().zip(&product).map(|(x, y)| x + y).collect();
        gemm(m, k, n, &a, &b, &mut c, true);
        assert_close(&c, &expect, "gemm+=");
    }

    #[test]
    fn zero_k_clears_or_keeps_output() {
        let mut c = vec![5.0f32; 6];
        gemm(2, 0, 3, &[], &[], &mut c, true);
        assert_eq!(c, vec![5.0; 6]);
        gemm(2, 0, 3, &[], &[], &mut c, false);
        assert_eq!(c, vec![0.0; 6]);
    }

    #[test]
    fn threaded_path_matches_serial() {
        // Force the parallel branch: exceed the flop threshold and pin the
        // worker count above 1 regardless of the host's core count.
        let _guard = par::test_env_lock();
        std::env::set_var("STENCILMART_THREADS", "3");
        let (m, k, n) = (256, 128, 160);
        assert!(2 * m * k * n >= PAR_FLOP_THRESHOLD);
        let a = lcg_fill(5, m * k);
        let b = lcg_fill(6, k * n);
        let expect = reference::matmul(m, k, n, &a, &b);
        let mut c = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c, false);
        std::env::remove_var("STENCILMART_THREADS");
        assert_close(&c, &expect, "gemm-par");
    }
}

//! Evaluation metrics: classification accuracy and confusion matrices,
//! MAPE (the paper's regression metric), the Pearson correlation
//! coefficient (used for OC merging), and Kendall's tau.

/// Fraction of matching predictions.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty prediction set");
    pred.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / pred.len() as f64
}

/// Row = truth, column = prediction.
pub fn confusion_matrix(pred: &[usize], truth: &[usize], classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    let mut m = vec![vec![0usize; classes]; classes];
    for (&p, &t) in pred.iter().zip(truth) {
        m[t][p] += 1;
    }
    m
}

/// Mean absolute percentage error (paper §V-A3). Targets must be
/// non-zero.
pub fn mape(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty prediction set");
    pred.iter()
        .zip(truth)
        .map(|(p, t)| {
            assert!(*t != 0.0, "MAPE undefined for zero target");
            ((p - t) / t).abs()
        })
        .sum::<f64>()
        / pred.len() as f64
        * 100.0
}

/// Pearson correlation coefficient (paper §III-C uses it to quantify
/// pairwise OC correlation). Returns 0 for degenerate (constant) inputs.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Kendall rank correlation (tau-a), as used by the ordinal-regression
/// baseline the paper cites for ranking quality.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let s = (da * db).signum();
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Arithmetic mean (convenience for reporting).
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Geometric mean of strictly positive values (standard for speedups).
pub fn geomean(v: &[f64]) -> f64 {
    assert!(v.iter().all(|&x| x > 0.0), "geomean needs positive values");
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    fn confusion_matrix_shape() {
        let m = confusion_matrix(&[0, 1, 1], &[0, 1, 0], 2);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[1][0], 0);
    }

    #[test]
    fn mape_basic() {
        let m = mape(&[110.0, 90.0], &[100.0, 100.0]);
        assert!((m - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero target")]
    fn mape_rejects_zero_truth() {
        mape(&[1.0], &[0.0]);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0; 4]), 0.0);
    }

    #[test]
    fn kendall_tau_ranges() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(kendall_tau(&a, &a), 1.0);
        let rev = [3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&a, &rev), -1.0);
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }
}

//! Small scoped-thread parallel helpers (crossbeam-based). Used to train
//! cross-validation folds and independent models concurrently; each worker
//! owns its chunk, so no locking is needed.

/// Parallel map preserving input order. Falls back to sequential for
/// small inputs or single-core machines.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if workers <= 1 || items.len() < 2 {
        return items.iter().map(&f).collect();
    }
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let chunk = items.len().div_ceil(workers);
    crossbeam::thread::scope(|s| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            s.spawn(move |_| {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("parallel worker panicked");
    out.into_iter().map(|r| r.expect("slot filled")).collect()
}

/// Parallel map over an index range `0..n`.
pub fn par_map_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let idx: Vec<usize> = (0..n).collect();
    par_map(&idx, |&i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..101).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_runs_every_item_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..37).collect();
        let out = par_map(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(counter.load(Ordering::Relaxed), 37);
        assert_eq!(out[36], 37);
    }

    #[test]
    fn par_map_handles_edge_sizes() {
        assert!(par_map::<u32, u32, _>(&[], |&x| x).is_empty());
        assert_eq!(par_map(&[5u32], |&x| x * x), vec![25]);
    }

    #[test]
    fn par_map_indices_matches() {
        assert_eq!(par_map_indices(4, |i| i * i), vec![0, 1, 4, 9]);
    }
}

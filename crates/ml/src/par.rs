//! Small scoped-thread parallel helpers (std::thread::scope-based). Used to
//! train cross-validation folds and independent models concurrently, and by
//! the blocked GEMM to partition row panels; each worker owns its chunk, so
//! no locking is needed.
//!
//! Worker count defaults to `available_parallelism()` and can be overridden
//! with the `STENCILMART_THREADS` environment variable (values below 1 and
//! unparseable values fall back to the default).

/// Number of worker threads to use, honoring `STENCILMART_THREADS`.
///
/// Delegates to the pipeline-wide resolution in
/// [`stencilmart_obs::runtime::worker_count`] so every pool in the
/// workspace (ML folds, GEMM row panels, profiler corpus chunks) obeys
/// the same environment variable.
pub fn worker_count() -> usize {
    stencilmart_obs::runtime::worker_count()
}

/// Parallel map preserving input order. Falls back to sequential for
/// small inputs or single-core machines.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count().min(items.len().max(1));
    let chunk = items.len().div_ceil(workers.max(1));
    par_map_chunked(items, chunk, f)
}

/// Parallel map with an explicit chunk size: worker `i` handles the `i`-th
/// contiguous run of `chunk` items. Preserves input order. A chunk size of
/// zero is treated as "everything in one chunk"; if only one chunk results
/// (or only one worker is available), the map runs sequentially on the
/// calling thread with no spawn overhead.
pub fn par_map_chunked<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let chunk = if chunk == 0 {
        items.len().max(1)
    } else {
        chunk
    };
    if worker_count() <= 1 || items.len() <= chunk {
        return items.iter().map(&f).collect();
    }
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            s.spawn(move || {
                for (item, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("slot filled")).collect()
}

/// [`par_map`] when `par` is true, a plain sequential map on the calling
/// thread when false.
///
/// The GBDT engine threads this flag through nested parallel stages
/// (class-parallel boosters disable row-parallel histogram execution to
/// avoid oversubscription): because every caller's reduction order is
/// fixed independently of the execution strategy, both arms produce
/// bit-identical results and the flag is purely a scheduling choice.
pub fn par_map_if<T, R, F>(par: bool, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if par {
        par_map(items, f)
    } else {
        items.iter().map(&f).collect()
    }
}

/// Parallel in-place mutation: apply `f` to every item of `items`,
/// splitting the slice into one contiguous chunk per worker. Falls back
/// to a sequential loop when `par` is false, only one worker is
/// available, or there is at most one item. Each item is visited
/// exactly once and items never alias, so callers that keep per-item
/// work independent (e.g. disjoint histogram partials) get the same
/// result for any worker count.
pub fn par_for_each_mut<T, F>(par: bool, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let workers = worker_count().min(items.len().max(1));
    if !par || workers <= 1 || items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|s| {
        for chunk in items.chunks_mut(chunk) {
            let f = &f;
            s.spawn(move || {
                for item in chunk {
                    f(item);
                }
            });
        }
    });
}

/// Parallel map over an index range `0..n`.
pub fn par_map_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let idx: Vec<usize> = (0..n).collect();
    par_map(&idx, |&i| f(i))
}

/// Serializes tests that mutate `STENCILMART_THREADS` so parallel test
/// threads don't race on the process environment.
#[cfg(test)]
pub(crate) fn test_env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..101).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_runs_every_item_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..37).collect();
        let out = par_map(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(counter.load(Ordering::Relaxed), 37);
        assert_eq!(out[36], 37);
    }

    #[test]
    fn par_map_handles_edge_sizes() {
        assert!(par_map::<u32, u32, _>(&[], |&x| x).is_empty());
        assert_eq!(par_map(&[5u32], |&x| x * x), vec![25]);
    }

    #[test]
    fn par_for_each_mut_touches_every_item_once() {
        for par in [false, true] {
            let mut items: Vec<u64> = (0..53).collect();
            par_for_each_mut(par, &mut items, |x| *x = *x * 2 + 1);
            let expect: Vec<u64> = (0..53).map(|x| x * 2 + 1).collect();
            assert_eq!(items, expect, "par = {par}");
        }
        let mut empty: Vec<u8> = Vec::new();
        par_for_each_mut(true, &mut empty, |_| unreachable!());
    }

    #[test]
    fn par_map_indices_matches() {
        assert_eq!(par_map_indices(4, |i| i * i), vec![0, 1, 4, 9]);
    }

    #[test]
    fn chunked_matches_sequential_for_all_chunk_sizes() {
        let items: Vec<i64> = (0..23).collect();
        let expect: Vec<i64> = items.iter().map(|x| x * x - 1).collect();
        // Chunk sizes around every boundary: 0 (= one chunk), 1, a divisor,
        // a non-divisor, exactly len, and larger than len.
        for chunk in [0, 1, 2, 5, 22, 23, 24, 1000] {
            let out = par_map_chunked(&items, chunk, |&x| x * x - 1);
            assert_eq!(out, expect, "chunk = {chunk}");
        }
    }

    #[test]
    fn chunked_handles_empty_and_single() {
        assert!(par_map_chunked::<u8, u8, _>(&[], 4, |&x| x).is_empty());
        assert_eq!(par_map_chunked(&[9u8], 4, |&x| x + 1), vec![10]);
    }

    #[test]
    fn thread_env_override_is_respected() {
        // worker_count() itself: invalid values fall back, valid ones win.
        let _guard = test_env_lock();
        std::env::set_var("STENCILMART_THREADS", "3");
        assert_eq!(worker_count(), 3);
        std::env::set_var("STENCILMART_THREADS", "0");
        assert!(worker_count() >= 1);
        std::env::set_var("STENCILMART_THREADS", "nope");
        assert!(worker_count() >= 1);
        std::env::remove_var("STENCILMART_THREADS");
        assert!(worker_count() >= 1);
    }
}

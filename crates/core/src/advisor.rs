//! The "to rent or not to rent" case study (paper §V-D, Fig. 14–15):
//! use the cross-architecture regressor to predict which GPU is best for
//! each stencil instance — by pure performance, and by cost efficiency
//! (time × rental price).

use crate::config::PipelineConfig;
use crate::dataset::{ProfiledCorpus, RegressionDataset};
use crate::models::{MlpShape, RegressorKind, TrainedRegressor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use stencilmart_gpusim::{GpuArch, GpuId, ParamSetting};
use stencilmart_ml::data::FeatureMatrix;

/// The ranking criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Criterion {
    /// Fastest execution (Fig. 14; all four GPUs).
    PurePerformance,
    /// Lowest time × rental price (Fig. 15; rentable GPUs only — the
    /// 2080 Ti is not offered by Google Cloud).
    CostEfficiency,
}

impl Criterion {
    /// GPUs participating under this criterion.
    pub fn gpus(self) -> Vec<GpuId> {
        match self {
            Criterion::PurePerformance => GpuId::ALL.to_vec(),
            Criterion::CostEfficiency => GpuId::ALL
                .iter()
                .copied()
                .filter(|g| GpuArch::preset(*g).rental_per_hr.is_some())
                .collect(),
        }
    }

    /// The score to minimize for a GPU given a time in ms. `None` when
    /// the GPU cannot be ranked under this criterion (cost efficiency
    /// needs a rental price, and the 2080 Ti has none) — reachable from
    /// user-supplied GPU names, so this must not panic. Every GPU from
    /// [`Criterion::gpus`] is scorable.
    pub fn score(self, gpu: GpuId, time_ms: f64) -> Option<f64> {
        match self {
            Criterion::PurePerformance => Some(time_ms),
            Criterion::CostEfficiency => {
                let price = GpuArch::preset(gpu).rental_per_hr?;
                Some(time_ms * price)
            }
        }
    }
}

/// Result of the advisor evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdvisorResult {
    /// The criterion evaluated.
    pub criterion: Criterion,
    /// Ground truth: fraction of instances for which each GPU is best.
    pub share: Vec<(GpuId, f64)>,
    /// Prediction accuracy per ground-truth-best GPU.
    pub accuracy: Vec<(GpuId, f64)>,
    /// Overall accuracy over all evaluated instances.
    pub overall_accuracy: f64,
    /// Number of evaluated instances.
    pub instances: usize,
}

/// Per-GPU times for one (stencil, OC, params) instance.
type InstanceTimes = HashMap<(usize, usize, ParamSetting), HashMap<GpuId, f64>>;

fn collect_instance_times(corpus: &ProfiledCorpus) -> InstanceTimes {
    let mut map: InstanceTimes = HashMap::new();
    for (gpu, profiles) in &corpus.profiles {
        for (si, profile) in profiles.iter().enumerate() {
            for (oi, outcome) in profile.per_oc.iter().enumerate() {
                for inst in &outcome.instances {
                    map.entry((si, oi, inst.params))
                        .or_default()
                        .insert(*gpu, inst.time_ms);
                }
            }
        }
    }
    map
}

/// Evaluate the rental advisor: train the regressor on instances of the
/// training stencils, then for each instance of the held-out stencils,
/// predict each GPU's time (by swapping the hardware features) and pick
/// the best GPU under the criterion.
///
/// Splitting by *stencil* (20% held out) keeps the evaluation honest: the
/// model never sees any measurement of a test stencil.
pub fn evaluate_advisor(
    corpus: &ProfiledCorpus,
    ds: &RegressionDataset,
    cfg: &PipelineConfig,
    kind: RegressorKind,
    criterion: Criterion,
    seed: u64,
) -> AdvisorResult {
    let gpus = criterion.gpus();
    let n_stencils = corpus.patterns.len();
    assert!(n_stencils >= 5, "advisor needs at least 5 stencils");
    // Deterministic stencil split: every 5th stencil is held out.
    let test_stencils: Vec<bool> = (0..n_stencils)
        .map(|i| (i + seed as usize).is_multiple_of(5))
        .collect();
    let train_idx: Vec<usize> = (0..ds.len())
        .filter(|&r| !test_stencils[ds.keys[r].stencil])
        .collect();
    let mut model = TrainedRegressor::train(
        kind,
        ds.dim,
        MlpShape::default(),
        &ds.features,
        &ds.tensors,
        &ds.target_ln_ms,
        &train_idx,
        seed,
    );

    // Gather held-out instances with a ground-truth time on every
    // participating GPU.
    let times = collect_instance_times(corpus);
    let mut eval_rows: Vec<usize> = Vec::new(); // representative ds row per instance
    let mut truth_best: Vec<GpuId> = Vec::new();
    let mut seen: std::collections::HashSet<(usize, usize, ParamSetting)> =
        std::collections::HashSet::new();
    for (r, key) in ds.keys.iter().enumerate() {
        if !test_stencils[key.stencil] {
            continue;
        }
        let params = instance_params(corpus, key.gpu, key.stencil, key.oc, key.param);
        let ik = (key.stencil, key.oc, params);
        if !seen.insert(ik) {
            continue;
        }
        let Some(per_gpu) = times.get(&ik) else {
            continue;
        };
        if !gpus.iter().all(|g| per_gpu.contains_key(g)) {
            continue; // crashed on some GPU: no fair ground truth
        }
        // `gpus` comes from `criterion.gpus()`, so every entry scores.
        let best = gpus
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let sa = criterion.score(a, per_gpu[&a]).expect("scorable GPU");
                let sb = criterion.score(b, per_gpu[&b]).expect("scorable GPU");
                sa.total_cmp(&sb)
            })
            .expect("non-empty GPU list");
        eval_rows.push(r);
        truth_best.push(best);
    }

    // Predict per-GPU times by swapping hardware features.
    let mut predicted_best = Vec::with_capacity(eval_rows.len());
    for chunk in eval_rows.chunks(512) {
        // Batch: rows × gpus.
        let mut what_if_rows: Vec<Vec<f32>> = Vec::with_capacity(chunk.len() * gpus.len());
        let mut tensor_rows: Vec<&[f32]> = Vec::with_capacity(chunk.len() * gpus.len());
        for &r in chunk {
            for &g in &gpus {
                what_if_rows.push(ds.row_with_gpu(r, g, cfg));
                tensor_rows.push(ds.tensors.row(r));
            }
        }
        let fm = FeatureMatrix::from_rows(what_if_rows.iter().map(Vec::as_slice));
        let tm = FeatureMatrix::from_rows(tensor_rows.iter().copied());
        let preds = model.predict_ln_rows(&fm, &tm);
        for (ci, _) in chunk.iter().enumerate() {
            let base = ci * gpus.len();
            let best = (0..gpus.len())
                .min_by(|&a, &b| {
                    let ta = (preds[base + a] as f64).exp();
                    let tb = (preds[base + b] as f64).exp();
                    let sa = criterion.score(gpus[a], ta).expect("scorable GPU");
                    let sb = criterion.score(gpus[b], tb).expect("scorable GPU");
                    sa.total_cmp(&sb)
                })
                .expect("non-empty");
            predicted_best.push(gpus[best]);
        }
    }

    // Aggregate.
    let n = truth_best.len().max(1);
    let share = gpus
        .iter()
        .map(|&g| {
            (
                g,
                truth_best.iter().filter(|&&b| b == g).count() as f64 / n as f64,
            )
        })
        .collect();
    let accuracy = gpus
        .iter()
        .map(|&g| {
            let idx: Vec<usize> = truth_best
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == g)
                .map(|(i, _)| i)
                .collect();
            let acc = if idx.is_empty() {
                f64::NAN
            } else {
                idx.iter().filter(|&&i| predicted_best[i] == g).count() as f64 / idx.len() as f64
            };
            (g, acc)
        })
        .collect();
    let overall = truth_best
        .iter()
        .zip(&predicted_best)
        .filter(|(a, b)| a == b)
        .count() as f64
        / n as f64;
    AdvisorResult {
        criterion,
        share,
        accuracy,
        overall_accuracy: overall,
        instances: truth_best.len(),
    }
}

fn instance_params(
    corpus: &ProfiledCorpus,
    gpu: GpuId,
    stencil: usize,
    oc: usize,
    param: usize,
) -> ParamSetting {
    corpus.profiles_for(gpu)[stencil].per_oc[oc].instances[param].params
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilmart_stencil::pattern::Dim;

    fn setup() -> (ProfiledCorpus, RegressionDataset, PipelineConfig) {
        let cfg = PipelineConfig {
            stencils_per_dim: 15,
            samples_per_oc: 2,
            max_regression_rows: 3000,
            ..PipelineConfig::default()
        };
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        let ds = RegressionDataset::build(&corpus, &cfg);
        (corpus, ds, cfg)
    }

    #[test]
    fn criterion_gpu_sets() {
        assert_eq!(Criterion::PurePerformance.gpus().len(), GpuId::ALL.len());
        let cost = Criterion::CostEfficiency.gpus();
        // Every priced GPU and nothing else; the consumer cards (2080 Ti,
        // 6900 XT) carry no rental price.
        let priced = GpuId::ALL
            .iter()
            .filter(|&&g| GpuArch::preset(g).rental_per_hr.is_some())
            .count();
        assert_eq!(cost.len(), priced);
        assert!(cost.len() >= 6, "AMD datacenter parts must be priced");
        assert!(!cost.contains(&GpuId::Rtx2080Ti));
        assert!(!cost.contains(&GpuId::Rx6900Xt));
        assert!(cost.contains(&GpuId::Mi100));
    }

    #[test]
    fn cost_score_multiplies_price() {
        let t = Criterion::CostEfficiency.score(GpuId::P100, 10.0).unwrap();
        assert!((t - 14.6).abs() < 1e-9);
        assert_eq!(
            Criterion::PurePerformance.score(GpuId::A100, 5.0),
            Some(5.0)
        );
    }

    #[test]
    fn cost_score_rejects_2080ti() {
        // The 2080 Ti has no rental price: unrankable, but no panic.
        assert_eq!(Criterion::CostEfficiency.score(GpuId::Rtx2080Ti, 1.0), None);
    }

    #[test]
    fn advisor_shares_sum_to_one_and_accuracy_bounded() {
        let (corpus, ds, cfg) = setup();
        let res = evaluate_advisor(
            &corpus,
            &ds,
            &cfg,
            RegressorKind::GbRegressor,
            Criterion::PurePerformance,
            0,
        );
        assert!(res.instances > 0);
        let total: f64 = res.share.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(res.overall_accuracy >= 0.0 && res.overall_accuracy <= 1.0);
        for (_, a) in &res.accuracy {
            assert!(a.is_nan() || (0.0..=1.0).contains(a));
        }
    }

    #[test]
    fn advisor_beats_uniform_guessing() {
        let (corpus, ds, cfg) = setup();
        let res = evaluate_advisor(
            &corpus,
            &ds,
            &cfg,
            RegressorKind::GbRegressor,
            Criterion::PurePerformance,
            1,
        );
        // Four GPUs → 25% by chance; even a weak regressor should do
        // far better because architecture gaps are large.
        assert!(
            res.overall_accuracy > 0.4,
            "accuracy {}",
            res.overall_accuracy
        );
    }

    #[test]
    fn cost_efficiency_runs_on_rentable_gpus() {
        let (corpus, ds, cfg) = setup();
        let res = evaluate_advisor(
            &corpus,
            &ds,
            &cfg,
            RegressorKind::GbRegressor,
            Criterion::CostEfficiency,
            0,
        );
        assert_eq!(res.share.len(), Criterion::CostEfficiency.gpus().len());
        assert!(res.instances > 0);
    }
}

//! The data-collection stage of StencilMART (paper §IV-A, §V-A2):
//! generate a random stencil corpus, profile every (stencil, OC) pair on
//! every GPU, and assemble the classification and regression datasets.

use crate::config::PipelineConfig;
use crate::pcc::{self, OcMerging};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use stencilmart_gpusim::{profile_corpus_tasks, GpuArch, GpuId, OptCombo, StencilProfile};
use stencilmart_ml::data::FeatureMatrix;
use stencilmart_obs::{self as obs, counters};
use stencilmart_stencil::features::{extract, FeatureConfig};
use stencilmart_stencil::generator::StencilGenerator;
use stencilmart_stencil::pattern::{Dim, StencilPattern};
use stencilmart_stencil::tensor::BinaryTensor;

/// Profile a corpus on every GPU, deduplicating by canonical pattern:
/// each unique stencil is profiled once over a flattened (GPU × stencil)
/// work queue and the result fanned back out to every duplicate slot.
///
/// Every unique stencil keeps the seed index of its *first* occurrence,
/// so a duplicate-free corpus (the normal case — the generator already
/// dedups) profiles bit-identically to the undeduplicated path, and a
/// corpus *with* duplicates gets exactly the profile its first occurrence
/// would have produced. Returns `out[gpu][stencil]` aligned with
/// `patterns`.
fn profile_deduped(
    patterns: &[StencilPattern],
    grid: usize,
    archs: &[GpuArch],
    pc: &stencilmart_gpusim::ProfileConfig,
) -> Vec<Vec<StencilProfile>> {
    let plan = crate::shard::dedup_plan(patterns);
    let unique: Vec<&StencilPattern> = plan.unique.iter().map(|&i| &patterns[i]).collect();
    let seeds: Vec<u64> = plan.unique.iter().map(|&i| i as u64).collect();
    let per_gpu = profile_corpus_tasks(&unique, &seeds, grid, archs, pc);
    per_gpu
        .into_iter()
        .map(|prof| {
            if unique.len() == patterns.len() {
                prof // no duplicates: already corpus-aligned
            } else {
                plan.slot_of.iter().map(|&s| prof[s].clone()).collect()
            }
        })
        .collect()
}

/// A profiled corpus: patterns plus per-GPU profiling results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfiledCorpus {
    /// Dimensionality of every stencil in this corpus.
    pub dim: Dim,
    /// Grid points per axis.
    pub grid: usize,
    /// The generated stencils.
    pub patterns: Vec<StencilPattern>,
    /// `(gpu, profiles aligned with patterns)` in configuration order.
    pub profiles: Vec<(GpuId, Vec<StencilProfile>)>,
}

impl ProfiledCorpus {
    /// Generate and profile a corpus for one dimensionality.
    pub fn build(cfg: &PipelineConfig, dim: Dim) -> ProfiledCorpus {
        let _span = obs::span("corpus_build");
        let patterns = obs::time("stencil_gen", || {
            let mut gen = StencilGenerator::new(cfg.seed ^ dim.rank() as u64);
            gen.generate_corpus(dim, cfg.max_order, cfg.stencils_per_dim)
        });
        counters::STENCILS_GENERATED.add(patterns.len() as u64);
        let grid = cfg.grid_for(dim);
        let pc = cfg.profile_config();
        let archs: Vec<GpuArch> = cfg.gpus.iter().map(|&g| GpuArch::preset(g)).collect();
        let per_gpu = profile_deduped(&patterns, grid, &archs, &pc);
        let profiles = cfg.gpus.iter().copied().zip(per_gpu).collect();
        ProfiledCorpus {
            dim,
            grid,
            patterns,
            profiles,
        }
    }

    /// Profiles for one GPU.
    pub fn profiles_for(&self, gpu: GpuId) -> &[StencilProfile] {
        &self
            .profiles
            .iter()
            .find(|(g, _)| *g == gpu)
            .expect("GPU was profiled")
            .1
    }

    /// Derive the OC merging for this corpus (pooling correlation and
    /// performance-gap statistics over all profiled GPUs).
    pub fn derive_merging(&self, classes: usize) -> OcMerging {
        let _span = obs::span("pcc_merge");
        let per_gpu_times: Vec<_> = self
            .profiles
            .iter()
            .map(|(_, profiles)| pcc::oc_time_matrix(profiles))
            .collect();
        let per_gpu_pcc: Vec<_> = per_gpu_times.iter().map(|m| pcc::pairwise_pcc(m)).collect();
        let all_profiles: Vec<&[StencilProfile]> =
            self.profiles.iter().map(|(_, p)| p.as_slice()).collect();
        let wins = pcc::win_counts(&all_profiles);
        pcc::merge_ocs(&per_gpu_pcc, &per_gpu_times, &wins, classes)
    }
}

/// Classification dataset for one (GPU, dimensionality): one row per
/// stencil, labelled with the merged class of its best OC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassificationDataset {
    /// Target GPU.
    pub gpu: GpuId,
    /// Stencil dimensionality.
    pub dim: Dim,
    /// Table II feature rows (GBDT / FcNet input).
    pub features: FeatureMatrix,
    /// Flattened fixed-canvas binary tensors (ConvNet input).
    pub tensors: FeatureMatrix,
    /// Merged-class labels.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
    /// Row → index into the corpus patterns.
    pub stencil_of_row: Vec<usize>,
}

impl ClassificationDataset {
    /// Assemble from a profiled corpus and an OC merging.
    pub fn build(corpus: &ProfiledCorpus, merging: &OcMerging, gpu: GpuId) -> Self {
        let fc = FeatureConfig::table2();
        let mut feat_rows: Vec<Vec<f32>> = Vec::new();
        let mut tensor_rows: Vec<Vec<f32>> = Vec::new();
        let mut labels = Vec::new();
        let mut stencil_of_row = Vec::new();
        for (i, (pattern, profile)) in corpus
            .patterns
            .iter()
            .zip(corpus.profiles_for(gpu))
            .enumerate()
        {
            let Some(best) = profile.best_oc() else {
                continue; // every OC crashed (does not happen in practice)
            };
            labels.push(
                merging
                    .class_of(best.oc.index())
                    .expect("derived merging covers every OC"),
            );
            feat_rows.push(extract(pattern, &fc).as_f32());
            tensor_rows.push(BinaryTensor::canvas(pattern).data().to_vec());
            stencil_of_row.push(i);
        }
        ClassificationDataset {
            gpu,
            dim: corpus.dim,
            features: FeatureMatrix::from_rows(feat_rows.iter().map(Vec::as_slice)),
            tensors: FeatureMatrix::from_rows(tensor_rows.iter().map(Vec::as_slice)),
            labels,
            classes: merging.classes(),
            stencil_of_row,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// One regression instance key: which (stencil, OC, parameter setting,
/// GPU) a row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceKey {
    /// Index into the corpus patterns.
    pub stencil: usize,
    /// OC index into [`OptCombo::enumerate`].
    pub oc: usize,
    /// Index of the parameter setting within the (stencil, OC) sample
    /// list (identical across GPUs by construction).
    pub param: usize,
    /// The measured GPU.
    pub gpu: GpuId,
}

/// Regression dataset for one dimensionality: one row per measured
/// instance across all GPUs (paper §IV-E).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionDataset {
    /// Stencil dimensionality.
    pub dim: Dim,
    /// Input rows: stencil features ++ OC flags ++ parameter features ++
    /// hardware features (++ log2 grid when configured).
    pub features: FeatureMatrix,
    /// Flattened canvas tensors aligned with `features` (ConvMLP branch).
    pub tensors: FeatureMatrix,
    /// Regression target: `ln(time_ms)`.
    pub target_ln_ms: Vec<f32>,
    /// Instance keys aligned with rows.
    pub keys: Vec<InstanceKey>,
}

impl RegressionDataset {
    /// Assemble from a profiled corpus, optionally subsampled to
    /// `cfg.max_regression_rows` rows.
    ///
    /// Regression rows use the *extended* stencil feature set (Table II
    /// plus distance/row-structure features): cross-architecture time
    /// prediction needs the row count and axis structure that drive
    /// coalescing and register allocation, which the classification
    /// features alone do not expose.
    pub fn build(corpus: &ProfiledCorpus, cfg: &PipelineConfig) -> Self {
        let fc = FeatureConfig::extended();
        let ocs = OptCombo::enumerate();
        let stencil_feats: Vec<Vec<f32>> = corpus
            .patterns
            .iter()
            .map(|p| extract(p, &fc).as_f32())
            .collect();
        let stencil_tensors: Vec<Vec<f32>> = corpus
            .patterns
            .iter()
            .map(|p| BinaryTensor::canvas(p).data().to_vec())
            .collect();
        let mut rows: Vec<Vec<f32>> = Vec::new();
        let mut tensor_rows: Vec<usize> = Vec::new(); // index into stencil_tensors
        let mut targets = Vec::new();
        let mut keys = Vec::new();
        let grid_cols = usize::from(cfg.include_grid_size);
        for (gpu, profiles) in &corpus.profiles {
            let hw: Vec<f32> = GpuArch::preset(*gpu)
                .feature_vector()
                .iter()
                .map(|&v| v as f32)
                .collect();
            for (si, profile) in profiles.iter().enumerate() {
                for (oi, outcome) in profile.per_oc.iter().enumerate() {
                    // Constant across the instances of this outcome.
                    let oc_feats: Vec<f32> =
                        ocs[oi].feature_vector().iter().map(|&v| v as f32).collect();
                    for (pi, inst) in outcome.instances.iter().enumerate() {
                        let params = inst.params.feature_vector(&ocs[oi]);
                        let width = stencil_feats[si].len()
                            + oc_feats.len()
                            + params.len()
                            + hw.len()
                            + grid_cols;
                        let mut row = Vec::with_capacity(width);
                        row.extend_from_slice(&stencil_feats[si]);
                        row.extend_from_slice(&oc_feats);
                        row.extend(params.iter().map(|&v| v as f32));
                        row.extend_from_slice(&hw);
                        if cfg.include_grid_size {
                            row.push((corpus.grid as f32).log2());
                        }
                        debug_assert_eq!(row.len(), width);
                        rows.push(row);
                        tensor_rows.push(si);
                        targets.push(inst.time_ms.ln() as f32);
                        keys.push(InstanceKey {
                            stencil: si,
                            oc: oi,
                            param: pi,
                            gpu: *gpu,
                        });
                    }
                }
            }
        }
        // Subsample to the configured cap, preserving determinism.
        let mut order: Vec<usize> = (0..rows.len()).collect();
        if rows.len() > cfg.max_regression_rows {
            order.shuffle(&mut ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xDA7A));
            order.truncate(cfg.max_regression_rows);
            order.sort_unstable();
        }
        let features = FeatureMatrix::from_rows(order.iter().map(|&i| rows[i].as_slice()));
        let tensors = FeatureMatrix::from_rows(
            order
                .iter()
                .map(|&i| stencil_tensors[tensor_rows[i]].as_slice()),
        );
        RegressionDataset {
            dim: corpus.dim,
            features,
            tensors,
            target_ln_ms: order.iter().map(|&i| targets[i]).collect(),
            keys: order.iter().map(|&i| keys[i]).collect(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.target_ln_ms.len()
    }

    /// A deterministic random row-subset of this dataset (used by sweeps
    /// like Fig. 13 that train many models and cannot afford full-size
    /// training sets per configuration).
    pub fn subsample(&self, n: usize, seed: u64) -> RegressionDataset {
        if n >= self.len() {
            return self.clone();
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
        order.truncate(n);
        order.sort_unstable();
        RegressionDataset {
            dim: self.dim,
            features: self.features.select(&order),
            tensors: self.tensors.select(&order),
            target_ln_ms: order.iter().map(|&i| self.target_ln_ms[i]).collect(),
            keys: order.iter().map(|&i| self.keys[i]).collect(),
        }
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.target_ln_ms.is_empty()
    }

    /// Number of hardware-feature columns at the tail of each row
    /// (before the optional grid column).
    pub fn hw_cols() -> usize {
        GpuArch::feature_names().len()
    }

    /// Rebuild one row's features with a *different* GPU's hardware
    /// characteristics (cross-architecture what-if, used by the rental
    /// advisor).
    pub fn row_with_gpu(&self, row: usize, gpu: GpuId, cfg: &PipelineConfig) -> Vec<f32> {
        let mut r = self.features.row(row).to_vec();
        let hw: Vec<f32> = GpuArch::preset(gpu)
            .feature_vector()
            .iter()
            .map(|&v| v as f32)
            .collect();
        let tail = if cfg.include_grid_size { 1 } else { 0 };
        let hw_start = r.len() - Self::hw_cols() - tail;
        r[hw_start..hw_start + Self::hw_cols()].copy_from_slice(&hw);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> PipelineConfig {
        PipelineConfig {
            stencils_per_dim: 8,
            samples_per_oc: 2,
            gpus: vec![GpuId::V100, GpuId::P100],
            max_regression_rows: 300,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn corpus_builds_and_profiles() {
        let cfg = tiny_cfg();
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        assert_eq!(corpus.patterns.len(), 8);
        assert_eq!(corpus.profiles.len(), 2);
        assert_eq!(corpus.profiles_for(GpuId::V100).len(), 8);
    }

    #[test]
    fn merging_reduces_to_requested_classes() {
        let cfg = tiny_cfg();
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        let merging = corpus.derive_merging(5);
        assert_eq!(merging.classes(), 5);
        // Every one of the 30 OCs belongs to a class.
        let total: usize = merging.groups.iter().map(Vec::len).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn classification_dataset_is_aligned() {
        let cfg = tiny_cfg();
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        let merging = corpus.derive_merging(5);
        let ds = ClassificationDataset::build(&corpus, &merging, GpuId::V100);
        assert_eq!(ds.len(), 8);
        assert_eq!(ds.features.rows(), 8);
        assert_eq!(ds.features.cols(), 11);
        assert_eq!(ds.tensors.cols(), 81); // 9×9 canvas
        assert!(ds.labels.iter().all(|&l| l < 5));
    }

    #[test]
    fn regression_dataset_rows_and_columns() {
        let cfg = tiny_cfg();
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        let ds = RegressionDataset::build(&corpus, &cfg);
        assert!(ds.len() <= 300);
        assert!(ds.len() > 50);
        // 18 extended stencil + 6 OC + 8 param + arch-feature columns.
        assert_eq!(
            ds.features.cols(),
            18 + 6 + 8 + GpuArch::feature_names().len()
        );
        assert_eq!(ds.tensors.rows(), ds.len());
        assert!(ds.target_ln_ms.iter().all(|t| t.is_finite()));
    }

    #[test]
    fn grid_size_column_is_optional() {
        let mut cfg = tiny_cfg();
        cfg.include_grid_size = true;
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        let ds = RegressionDataset::build(&corpus, &cfg);
        assert_eq!(
            ds.features.cols(),
            18 + 6 + 8 + GpuArch::feature_names().len() + 1
        );
        assert_eq!(ds.features.at(0, ds.features.cols() - 1), 13.0); // log2(8192)
    }

    #[test]
    fn row_with_gpu_swaps_hw_tail() {
        let cfg = tiny_cfg();
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        let ds = RegressionDataset::build(&corpus, &cfg);
        let swapped = ds.row_with_gpu(0, GpuId::A100, &cfg);
        let hw = GpuArch::preset(GpuId::A100).feature_vector();
        let tail = &swapped[swapped.len() - GpuArch::feature_names().len()..];
        for (a, b) in tail.iter().zip(&hw) {
            assert!((*a as f64 - b).abs() < 1e-6);
        }
        // Leading stencil features untouched.
        assert_eq!(&swapped[..18], &ds.features.row(0)[..18]);
    }

    #[test]
    fn dedup_profiles_match_full_corpus_bitwise() {
        use stencilmart_gpusim::{profile_corpus_multi, ProfileConfig};
        let mut generator = StencilGenerator::new(7);
        let unique = generator.generate_corpus(Dim::D2, 3, 6);
        // A corpus with trailing duplicates of stencils 0 and 3.
        let mut corpus = unique.clone();
        corpus.push(unique[0].clone());
        corpus.push(unique[3].clone());
        let archs = [GpuArch::preset(GpuId::V100), GpuArch::preset(GpuId::P100)];
        let pc = ProfileConfig {
            samples_per_oc: 2,
            ..ProfileConfig::default()
        };
        let deduped = profile_deduped(&corpus, 8192, &archs, &pc);
        let full = profile_corpus_multi(&unique, 8192, &archs, &pc);
        for (gi, full_gpu) in full.iter().enumerate() {
            // Unique stencils are bit-identical to profiling them without
            // dedup (first-occurrence seed indices preserve the streams).
            assert_eq!(&deduped[gi][..6], full_gpu.as_slice());
            // Duplicate slots fan out the first occurrence's profile.
            assert_eq!(deduped[gi][6], deduped[gi][0]);
            assert_eq!(deduped[gi][7], deduped[gi][3]);
        }
    }

    #[test]
    fn params_are_shared_across_gpus() {
        // The advisor depends on (stencil, oc, param_idx) identifying the
        // same setting on every GPU.
        let cfg = tiny_cfg();
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        let v = corpus.profiles_for(GpuId::V100);
        let p = corpus.profiles_for(GpuId::P100);
        for (pv, pp) in v.iter().zip(p) {
            for (ov, op) in pv.per_oc.iter().zip(&pp.per_oc) {
                // Instances may differ in *count* (crashes differ per
                // arch), but the sampled settings come from the same
                // stream, so shared prefixes agree.
                let sv: Vec<_> = ov.instances.iter().map(|i| i.params).collect();
                let sp: Vec<_> = op.instances.iter().map(|i| i.params).collect();
                if ov.crashes.is_empty() && op.crashes.is_empty() {
                    assert_eq!(sv, sp, "same sampling stream per (stencil, OC)");
                }
            }
        }
    }
}

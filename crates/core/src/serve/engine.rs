//! The daemon's micro-batching execution engine.
//!
//! Connection threads call [`Engine::submit_batch`]; a single batcher
//! thread drains everything in flight into one
//! [`dispatch_batch`](super::dispatch_batch) call per wake-up, so N
//! concurrent clients cost a handful of batched model invocations
//! instead of N scalar ones.
//!
//! The model lives behind a *generation* slot: `RwLock<Arc<Generation>>`
//! where a generation is an immutable version number plus the
//! predictor. Hot-swap builds a fresh generation off to the side and
//! replaces the `Arc` under a brief write lock; the batcher snapshots
//! the `Arc` once per micro-batch, so every response in a batch is
//! served by exactly one generation and echoes its version. A failed
//! reload keeps the old generation serving and only bumps the
//! `bundle_swap_failures` counter.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::api::Predictor;
use crate::error::MartError;
use crate::wire::{Reply, Request, Response};
use stencilmart_obs::counters::{
    BUNDLE_SWAPS, BUNDLE_SWAP_FAILURES, INFLIGHT_REQUESTS, QUEUE_DEPTH,
};
use stencilmart_obs::hist::{BATCH_SIZE, REQUEST_LATENCY_US};

/// One immutable model generation: a version number and the predictor
/// that serves it. The predictor's memo cache needs `&mut`, hence the
/// inner mutex; only the batcher thread takes it, and only briefly.
struct Generation {
    version: u64,
    predictor: Mutex<Predictor>,
}

struct Job {
    id: u64,
    req: Request,
    bucket: Arc<ReplyBucket>,
    slot: usize,
    enqueued: Instant,
}

/// Completion rendezvous for one submitted batch.
struct ReplyBucket {
    state: Mutex<BucketState>,
    cv: Condvar,
}

struct BucketState {
    remaining: usize,
    replies: Vec<Option<Response>>,
}

struct Shared {
    slot: RwLock<Arc<Generation>>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    next_version: AtomicU64,
    max_batch: usize,
    bundle_path: Option<PathBuf>,
}

/// Construction options for [`Engine::new`].
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Largest micro-batch the batcher drains per wake-up (0 → default
    /// of 256).
    pub max_batch: usize,
    /// Bundle path that [`Request::Reload`] / [`Engine::reload`] loads
    /// from; `None` makes reloads fail with `bad_request`.
    pub bundle_path: Option<PathBuf>,
}

/// The micro-batching executor. Submissions are thread-safe (`&self`);
/// wrap it in an `Arc` and share it across connection threads.
pub struct Engine {
    shared: Arc<Shared>,
    batcher: Mutex<Option<JoinHandle<()>>>,
}

impl Engine {
    /// Spawn the batcher thread around an initial predictor
    /// (generation 1).
    pub fn new(predictor: Predictor, opts: EngineOptions) -> Engine {
        let shared = Arc::new(Shared {
            slot: RwLock::new(Arc::new(Generation {
                version: 1,
                predictor: Mutex::new(predictor),
            })),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_version: AtomicU64::new(2),
            max_batch: if opts.max_batch == 0 {
                256
            } else {
                opts.max_batch
            },
            bundle_path: opts.bundle_path,
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("advisord-batcher".to_string())
                .spawn(move || batcher_loop(&shared))
                .expect("spawn batcher thread")
        };
        Engine {
            shared,
            batcher: Mutex::new(Some(batcher)),
        }
    }

    /// The version of the generation currently serving.
    pub fn current_version(&self) -> u64 {
        self.shared
            .slot
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .version
    }

    /// Submit one request and block until its response.
    pub fn submit(&self, id: u64, req: Request) -> Response {
        self.submit_batch(vec![(id, req)])
            .pop()
            .expect("one response per request")
    }

    /// Submit a batch of `(id, request)` pairs and block until all
    /// responses are in; responses come back in submission order.
    pub fn submit_batch(&self, reqs: Vec<(u64, Request)>) -> Vec<Response> {
        if reqs.is_empty() {
            return Vec::new();
        }
        let n = reqs.len();
        let bucket = Arc::new(ReplyBucket {
            state: Mutex::new(BucketState {
                remaining: n,
                replies: {
                    let mut v = Vec::with_capacity(n);
                    v.resize_with(n, || None);
                    v
                },
            }),
            cv: Condvar::new(),
        });
        INFLIGHT_REQUESTS.add(n as u64);
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            let now = Instant::now();
            for (slot, (id, req)) in reqs.into_iter().enumerate() {
                queue.push_back(Job {
                    id,
                    req,
                    bucket: Arc::clone(&bucket),
                    slot,
                    enqueued: now,
                });
            }
            QUEUE_DEPTH.set(queue.len() as u64);
        }
        self.shared.queue_cv.notify_one();
        let mut state = bucket.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.remaining > 0 {
            state = bucket.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        INFLIGHT_REQUESTS.sub(n as u64);
        state
            .replies
            .iter_mut()
            .map(|r| r.take().expect("batcher fills every reply slot"))
            .collect()
    }

    /// Install `predictor` as a new generation and return its version.
    /// In-flight batches keep the snapshot they started with.
    pub fn swap_with(&self, predictor: Predictor) -> u64 {
        swap_in(&self.shared, predictor)
    }

    /// Hot-swap by reloading the configured bundle path through the
    /// full validation pipeline. On failure the old generation keeps
    /// serving and `bundle_swap_failures` is incremented.
    pub fn reload(&self) -> Result<u64, MartError> {
        reload(&self.shared)
    }

    /// Drain the queue, stop the batcher thread, and join it. Called
    /// automatically on drop; idempotent.
    pub fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        let handle = self
            .batcher
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.stop();
    }
}

fn swap_in(shared: &Shared, predictor: Predictor) -> u64 {
    let version = shared.next_version.fetch_add(1, Ordering::SeqCst);
    let generation = Arc::new(Generation {
        version,
        predictor: Mutex::new(predictor),
    });
    *shared.slot.write().unwrap_or_else(|e| e.into_inner()) = generation;
    BUNDLE_SWAPS.inc();
    version
}

fn reload(shared: &Shared) -> Result<u64, MartError> {
    let Some(path) = shared.bundle_path.as_deref() else {
        BUNDLE_SWAP_FAILURES.inc();
        return Err(MartError::BadRequest(
            "no bundle path configured for reload".to_string(),
        ));
    };
    match Predictor::load(path) {
        Ok(predictor) => Ok(swap_in(shared, predictor)),
        Err(e) => {
            BUNDLE_SWAP_FAILURES.inc();
            Err(e)
        }
    }
}

fn batcher_loop(shared: &Shared) {
    loop {
        let batch: Vec<Job> = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            while queue.is_empty() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
            let take = queue.len().min(shared.max_batch);
            let batch = queue.drain(..take).collect();
            QUEUE_DEPTH.set(queue.len() as u64);
            batch
        };
        serve_batch(shared, batch);
        // A shutdown drains whatever is still queued before exiting, so
        // no submitter is left waiting on an abandoned bucket.
        if shared.shutdown.load(Ordering::SeqCst) {
            let rest: Vec<Job> = {
                let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                queue.drain(..).collect()
            };
            if !rest.is_empty() {
                serve_batch(shared, rest);
            }
        }
    }
}

fn serve_batch(shared: &Shared, mut batch: Vec<Job>) {
    let _span = stencilmart_obs::span("serve_batch");
    BATCH_SIZE.record(batch.len() as u64);
    // Control frames first: a reload in this batch swaps before the
    // snapshot below, so data requests alongside it see the new model.
    let mut reload_results: Vec<(usize, Result<u64, MartError>)> = Vec::new();
    for (i, job) in batch.iter().enumerate() {
        if matches!(job.req, Request::Reload) {
            reload_results.push((i, reload(shared)));
        }
    }
    // One generation snapshot per micro-batch: every data response in
    // this batch is served by exactly this generation.
    let generation = Arc::clone(&shared.slot.read().unwrap_or_else(|e| e.into_inner()));
    let reqs: Vec<Request> = batch.iter().map(|j| j.req.clone()).collect();
    let results = {
        let mut predictor = generation
            .predictor
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        super::dispatch_batch(&mut predictor, &reqs)
    };
    let mut results: Vec<Option<Result<Reply, MartError>>> =
        results.into_iter().map(Some).collect();
    for (i, res) in reload_results {
        results[i] = Some(res.map(|version| Reply::Reloaded { version }));
    }
    for (job, result) in batch.drain(..).zip(results) {
        let result = result.expect("every batch slot resolved");
        let response = Response {
            id: job.id,
            model_version: generation.version,
            result: result.map_err(|e| (e.kind().to_string(), e.to_string())),
        };
        let elapsed_us = job.enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        REQUEST_LATENCY_US.record(elapsed_us);
        let mut state = job.bucket.state.lock().unwrap_or_else(|e| e.into_inner());
        state.replies[job.slot] = Some(response);
        state.remaining -= 1;
        if state.remaining == 0 {
            job.bucket.cv.notify_all();
        }
    }
}

//! The advisor serving layer: one request-dispatch core shared by the
//! JSONL CLI (`advisor serve`) and the TCP daemon (`advisord`), so the
//! two frontends cannot drift.
//!
//! * [`dispatch_batch`] — the single dispatch core: resolves
//!   [`crate::wire::Request`]s against a [`Predictor`] and answers a whole
//!   micro-batch at once, grouping same-GPU `best_oc` requests and
//!   same-kernel `predict_time` requests into the predictor's batched
//!   entry points.
//! * [`engine::Engine`] — the daemon's micro-batching executor: a
//!   single batcher thread drains concurrently submitted requests into
//!   `dispatch_batch` calls against an atomically hot-swappable model
//!   generation.
//! * [`jsonl`] — line-oriented JSON request parsing/formatting with
//!   per-line flushing.
//! * [`server`] — the TCP frame server speaking [`crate::wire`].

pub mod engine;
pub mod jsonl;
pub mod server;

use crate::advisor::Criterion;
use crate::api::Predictor;
use crate::error::MartError;
use crate::wire::{PatternSpec, Reply, Request};
use stencilmart_gpusim::{GpuId, OptCombo, ParamSetting};
use stencilmart_stencil::canonical;
use stencilmart_stencil::pattern::{Dim, Offset, StencilPattern};

fn bad(why: impl Into<String>) -> MartError {
    MartError::BadRequest(why.into())
}

/// Resolve a [`PatternSpec`] to a validated [`StencilPattern`].
pub fn resolve_pattern(spec: &PatternSpec) -> Result<StencilPattern, MartError> {
    match spec {
        PatternSpec::Name(name) => canonical::by_name(name)
            .map(|c| c.pattern)
            .ok_or_else(|| bad(format!("unknown canonical stencil {name:?}"))),
        PatternSpec::Offsets { rank, points } => {
            let dim = if *rank == 3 { Dim::D3 } else { Dim::D2 };
            let offsets: Vec<Offset> = points.iter().map(|&c| Offset { c }).collect();
            StencilPattern::new(dim, offsets).map_err(|e| bad(format!("invalid pattern: {e:?}")))
        }
    }
}

/// Resolve a GPU name (case-insensitive) to a [`GpuId`].
pub fn resolve_gpu(name: &str) -> Result<GpuId, MartError> {
    GpuId::ALL
        .iter()
        .copied()
        .find(|g| g.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| MartError::UnknownGpu(name.to_string()))
}

/// Resolve an optimization-combination name to a valid [`OptCombo`].
pub fn resolve_oc(name: &str) -> Result<OptCombo, MartError> {
    OptCombo::parse(name).ok_or_else(|| bad(format!("unknown OC {name:?}")))
}

/// Resolve a ranking criterion name (`perf` or `cost`).
pub fn resolve_criterion(name: &str) -> Result<Criterion, MartError> {
    match name {
        "perf" => Ok(Criterion::PurePerformance),
        "cost" => Ok(Criterion::CostEfficiency),
        other => Err(bad(format!("unknown criterion {other:?}; use perf|cost"))),
    }
}

/// A resolved data request, ready for the predictor.
enum Resolved {
    BestOc {
        gpu: GpuId,
        pattern: StencilPattern,
    },
    Time {
        gpu: GpuId,
        oc: OptCombo,
        pattern: StencilPattern,
    },
    Rank {
        criterion: Criterion,
        oc: OptCombo,
        pattern: StencilPattern,
    },
    Pong,
}

fn resolve(req: &Request) -> Result<Resolved, MartError> {
    match req {
        Request::BestOc { gpu, pattern } => Ok(Resolved::BestOc {
            gpu: resolve_gpu(gpu)?,
            pattern: resolve_pattern(pattern)?,
        }),
        Request::PredictTime { gpu, pattern, oc } => Ok(Resolved::Time {
            gpu: resolve_gpu(gpu)?,
            oc: resolve_oc(oc)?,
            pattern: resolve_pattern(pattern)?,
        }),
        Request::RankGpus {
            criterion,
            pattern,
            oc,
        } => Ok(Resolved::Rank {
            criterion: resolve_criterion(criterion)?,
            oc: resolve_oc(oc)?,
            pattern: resolve_pattern(pattern)?,
        }),
        Request::Ping => Ok(Resolved::Pong),
        Request::Reload | Request::Shutdown => {
            Err(bad("control frame outside the daemon control path"))
        }
    }
}

/// Answer a micro-batch of requests against one predictor.
///
/// This is the single dispatch core behind both serving frontends.
/// Same-GPU `best_oc` requests are grouped into one
/// [`Predictor::best_oc_batch`] call and same-`(gpu, oc)`
/// `predict_time` requests into one [`Predictor::predict_time_batch`]
/// call, so a large concurrent batch costs a handful of model
/// invocations. Results come back in request order; every failure is a
/// per-entry [`MartError`].
pub fn dispatch_batch(
    predictor: &mut Predictor,
    reqs: &[Request],
) -> Vec<Result<Reply, MartError>> {
    let mut out: Vec<Option<Result<Reply, MartError>>> = Vec::with_capacity(reqs.len());
    out.resize_with(reqs.len(), || None);
    // Group keys are tiny (≤8 GPUs × few OCs), so linear scans beat
    // hashing here.
    let mut best_groups: Vec<(GpuId, Vec<usize>, Vec<StencilPattern>)> = Vec::new();
    let mut time_groups: Vec<(GpuId, OptCombo, Vec<usize>, Vec<StencilPattern>)> = Vec::new();
    let mut ranks: Vec<(usize, Criterion, OptCombo, StencilPattern)> = Vec::new();
    for (i, req) in reqs.iter().enumerate() {
        match resolve(req) {
            Err(e) => out[i] = Some(Err(e)),
            Ok(Resolved::Pong) => out[i] = Some(Ok(Reply::Pong)),
            Ok(Resolved::BestOc { gpu, pattern }) => {
                match best_groups.iter_mut().find(|(g, _, _)| *g == gpu) {
                    Some((_, idx, pats)) => {
                        idx.push(i);
                        pats.push(pattern);
                    }
                    None => best_groups.push((gpu, vec![i], vec![pattern])),
                }
            }
            Ok(Resolved::Time { gpu, oc, pattern }) => {
                match time_groups
                    .iter_mut()
                    .find(|(g, o, _, _)| *g == gpu && *o == oc)
                {
                    Some((_, _, idx, pats)) => {
                        idx.push(i);
                        pats.push(pattern);
                    }
                    None => time_groups.push((gpu, oc, vec![i], vec![pattern])),
                }
            }
            Ok(Resolved::Rank {
                criterion,
                oc,
                pattern,
            }) => ranks.push((i, criterion, oc, pattern)),
        }
    }
    for (gpu, idx, pats) in best_groups {
        for (i, res) in idx.into_iter().zip(predictor.best_oc_batch(&pats, gpu)) {
            out[i] = Some(res.map(|oc| Reply::BestOc { oc: oc.name() }));
        }
    }
    for (gpu, oc, idx, pats) in time_groups {
        let params = ParamSetting::default_for_dim(&oc, predictor.dim());
        for (i, res) in idx
            .into_iter()
            .zip(predictor.predict_time_batch(&pats, &oc, &params, gpu))
        {
            out[i] = Some(res.map(|ms| Reply::Time { ms }));
        }
    }
    for (i, criterion, oc, pattern) in ranks {
        out[i] = Some(rank_one(predictor, criterion, &oc, &pattern));
    }
    out.into_iter()
        .map(|slot| slot.expect("every request slot is filled"))
        .collect()
}

fn rank_one(
    predictor: &mut Predictor,
    criterion: Criterion,
    oc: &OptCombo,
    pattern: &StencilPattern,
) -> Result<Reply, MartError> {
    let params = ParamSetting::default_for_dim(oc, predictor.dim());
    let mut ranked: Vec<(GpuId, f64)> = Vec::new();
    for gpu in criterion.gpus() {
        let ms = predictor.predict_time_ms(pattern, oc, &params, gpu)?;
        let score = criterion
            .score(gpu, ms)
            .ok_or(MartError::UnrankableGpu(gpu))?;
        ranked.push((gpu, score));
    }
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    Ok(Reply::Ranking(
        ranked
            .into_iter()
            .map(|(g, s)| (g.name().to_string(), s))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_gpu_is_case_insensitive() {
        assert_eq!(resolve_gpu("v100").unwrap(), GpuId::V100);
        assert_eq!(resolve_gpu("V100").unwrap(), GpuId::V100);
        assert_eq!(resolve_gpu("H100").unwrap_err().kind(), "unknown_gpu");
        // AMD names resolve because resolution scans GpuId::ALL.
        assert_eq!(resolve_gpu("mi100").unwrap(), GpuId::Mi100);
        assert_eq!(resolve_gpu("MI210").unwrap(), GpuId::Mi210);
        assert_eq!(resolve_gpu("6900xt").unwrap(), GpuId::Rx6900Xt);
    }

    #[test]
    fn resolve_pattern_accepts_names_and_offsets() {
        let named = resolve_pattern(&PatternSpec::Name("star2d1r".to_string())).unwrap();
        assert_eq!(named.dim(), Dim::D2);
        let explicit = resolve_pattern(&PatternSpec::Offsets {
            rank: 2,
            points: vec![[1, 0, 0], [-1, 0, 0], [0, 1, 0], [0, -1, 0]],
        })
        .unwrap();
        assert_eq!(explicit, named);
        assert_eq!(
            resolve_pattern(&PatternSpec::Name("nope".to_string()))
                .unwrap_err()
                .kind(),
            "bad_request"
        );
    }

    #[test]
    fn resolve_criterion_names() {
        assert!(resolve_criterion("perf").is_ok());
        assert!(resolve_criterion("cost").is_ok());
        assert_eq!(
            resolve_criterion("speed").unwrap_err().kind(),
            "bad_request"
        );
    }
}

//! Line-oriented JSON serving: parse one request per line, answer one
//! JSON object per line, flush after every line.
//!
//! This frontend shares [`dispatch_batch`](super::dispatch_batch) with
//! the TCP daemon, so the two cannot drift semantically; only the
//! framing differs. Responses are written and **flushed per line** so
//! an interleaved reader (a pipe, a test harness, another process)
//! observes them in request order as they are produced, never batched
//! up in a buffer.

use std::io::{BufRead, Write};

use crate::error::MartError;
use crate::wire::{PatternSpec, Reply, Request};
use crate::Predictor;
use serde::Value;

fn bad(why: impl Into<String>) -> MartError {
    MartError::BadRequest(why.into())
}

/// Minimal JSON string escaping for response assembly.
fn json_str(s: &str) -> String {
    serde_json::to_string(&s).expect("string serializes")
}

fn str_field(req: &Value, key: &str) -> Result<String, MartError> {
    req.field(key)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .map_err(|e| bad(format!("request needs \"{key}\": {e}")))
}

/// Resolve the request's stencil spec: `"stencil"` (canonical-suite
/// name) or `"offsets"` (array of 2- or 3-element integer arrays; the
/// origin is implicit). Name validity is checked at dispatch.
fn parse_pattern_spec(req: &Value) -> Result<PatternSpec, MartError> {
    if let Ok(name) = req.field("stencil").and_then(|v| v.as_str()) {
        return Ok(PatternSpec::Name(name.to_string()));
    }
    let offsets = req
        .field("offsets")
        .and_then(|v| v.as_array())
        .map_err(|_| bad("request needs \"stencil\" (name) or \"offsets\" (array)"))?;
    let mut points: Vec<[i32; 3]> = Vec::with_capacity(offsets.len());
    let mut rank = 0usize;
    for o in offsets {
        let comps = o
            .as_array()
            .map_err(|e| bad(format!("offset must be an array: {e}")))?;
        if comps.len() < 2 || comps.len() > 3 {
            return Err(bad(format!(
                "offset must have 2 or 3 components, got {}",
                comps.len()
            )));
        }
        rank = rank.max(comps.len());
        let mut c = [0i32; 3];
        for (i, v) in comps.iter().enumerate() {
            let x = v
                .as_i64()
                .map_err(|e| bad(format!("offset component: {e}")))?;
            c[i] =
                i32::try_from(x).map_err(|_| bad(format!("offset component {x} out of range")))?;
        }
        points.push(c);
    }
    Ok(PatternSpec::Offsets {
        rank: rank as u8,
        points,
    })
}

/// Parse one JSONL request line into a wire-level [`Request`].
pub fn parse_line(line: &str) -> Result<Request, MartError> {
    let req = serde_json::parse_value(line)?;
    let op = req
        .field("op")
        .and_then(|v| v.as_str())
        .map_err(|e| bad(format!("request needs \"op\": {e}")))?
        .to_string();
    match op.as_str() {
        "best_oc" => Ok(Request::BestOc {
            gpu: str_field(&req, "gpu")?,
            pattern: parse_pattern_spec(&req)?,
        }),
        "predict_time" => Ok(Request::PredictTime {
            gpu: str_field(&req, "gpu")?,
            pattern: parse_pattern_spec(&req)?,
            oc: str_field(&req, "oc")?,
        }),
        "rank_gpus" => Ok(Request::RankGpus {
            criterion: match req.field("criterion").and_then(|v| v.as_str()) {
                Ok(v) => v.to_string(),
                Err(_) => "perf".to_string(),
            },
            pattern: parse_pattern_spec(&req)?,
            oc: str_field(&req, "oc")?,
        }),
        other => Err(bad(format!(
            "unknown op {other:?}; use best_oc|predict_time|rank_gpus"
        ))),
    }
}

/// Render one outcome as its JSONL response line (without the trailing
/// newline).
pub fn format_result(result: &Result<Reply, MartError>) -> String {
    match result {
        Ok(Reply::BestOc { oc }) => {
            format!("{{\"ok\":true,\"op\":\"best_oc\",\"oc\":{}}}", json_str(oc))
        }
        Ok(Reply::Time { ms }) => {
            format!("{{\"ok\":true,\"op\":\"predict_time\",\"time_ms\":{ms}}}")
        }
        Ok(Reply::Ranking(items)) => {
            let parts: Vec<String> = items
                .iter()
                .map(|(g, s)| format!("{{\"gpu\":{},\"score\":{s}}}", json_str(g)))
                .collect();
            format!(
                "{{\"ok\":true,\"op\":\"rank_gpus\",\"ranking\":[{}]}}",
                parts.join(",")
            )
        }
        Ok(Reply::Pong) => "{\"ok\":true,\"op\":\"ping\"}".to_string(),
        Ok(Reply::Reloaded { version }) => {
            format!("{{\"ok\":true,\"op\":\"reload\",\"version\":{version}}}")
        }
        Err(e) => format!(
            "{{\"ok\":false,\"kind\":{},\"error\":{}}}",
            json_str(e.kind()),
            json_str(&e.to_string())
        ),
    }
}

/// Totals from one [`serve_lines`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered `"ok":true`.
    pub served: usize,
    /// Requests rejected with a structured error.
    pub failed: usize,
}

/// Serve JSONL requests from `input`, writing one response line per
/// request to `out`, **flushed after every line**. Blank lines are
/// skipped; malformed lines produce `{"ok":false,...}` responses and
/// the loop keeps serving.
pub fn serve_lines<R: BufRead, W: Write>(
    predictor: &mut Predictor,
    input: R,
    out: &mut W,
) -> std::io::Result<ServeStats> {
    let mut stats = ServeStats {
        served: 0,
        failed: 0,
    };
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let result = match parse_line(&line) {
            Ok(req) => super::dispatch_batch(predictor, std::slice::from_ref(&req))
                .pop()
                .expect("one result per request"),
            Err(e) => Err(e),
        };
        match &result {
            Ok(_) => stats.served += 1,
            Err(_) => stats.failed += 1,
        }
        writeln!(out, "{}", format_result(&result))?;
        // One flush per line: responses must be observable in order as
        // they are produced, even through a pipe.
        out.flush()?;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_request_forms() {
        assert_eq!(
            parse_line(r#"{"op":"best_oc","gpu":"V100","stencil":"star2d1r"}"#).unwrap(),
            Request::BestOc {
                gpu: "V100".to_string(),
                pattern: PatternSpec::Name("star2d1r".to_string()),
            }
        );
        assert_eq!(
            parse_line(r#"{"op":"best_oc","gpu":"P100","offsets":[[1,0],[-1,0]]}"#).unwrap(),
            Request::BestOc {
                gpu: "P100".to_string(),
                pattern: PatternSpec::Offsets {
                    rank: 2,
                    points: vec![[1, 0, 0], [-1, 0, 0]],
                },
            }
        );
        assert_eq!(
            parse_line(r#"{"op":"rank_gpus","stencil":"box2d1r","oc":"ST"}"#).unwrap(),
            Request::RankGpus {
                criterion: "perf".to_string(),
                pattern: PatternSpec::Name("box2d1r".to_string()),
                oc: "ST".to_string(),
            }
        );
    }

    #[test]
    fn malformed_lines_map_to_structured_errors() {
        assert_eq!(parse_line("not json").unwrap_err().kind(), "parse");
        assert_eq!(
            parse_line(r#"{"op":"fly"}"#).unwrap_err().kind(),
            "bad_request"
        );
        assert_eq!(
            parse_line(r#"{"op":"best_oc","stencil":"star2d1r"}"#)
                .unwrap_err()
                .kind(),
            "bad_request"
        );
        assert_eq!(
            parse_line(r#"{"op":"best_oc","gpu":"V100","offsets":[[1]]}"#)
                .unwrap_err()
                .kind(),
            "bad_request"
        );
    }

    #[test]
    fn formats_match_the_documented_shapes() {
        assert_eq!(
            format_result(&Ok(Reply::BestOc {
                oc: "ST_BM".to_string()
            })),
            r#"{"ok":true,"op":"best_oc","oc":"ST_BM"}"#
        );
        assert_eq!(
            format_result(&Ok(Reply::Time { ms: 0.25 })),
            r#"{"ok":true,"op":"predict_time","time_ms":0.25}"#
        );
        assert_eq!(
            format_result(&Ok(Reply::Ranking(vec![("V100".to_string(), 1.5)]))),
            r#"{"ok":true,"op":"rank_gpus","ranking":[{"gpu":"V100","score":1.5}]}"#
        );
        let err = format_result(&Err(MartError::UnknownGpu("H100".to_string())));
        assert!(
            err.starts_with(r#"{"ok":false,"kind":"unknown_gpu""#),
            "{err}"
        );
        // Every response line is itself valid JSON.
        assert!(serde_json::parse_value(&err).is_ok());
    }
}

//! The TCP frame server behind `advisord`.
//!
//! Each accepted connection gets a handler thread that drains *all*
//! complete frames out of every socket read into one
//! [`Engine::submit_batch`] call and writes the response frames back in
//! a single vectored flush — with pipelining clients this amortizes
//! both syscalls and model invocations. Corrupt frames produce error
//! response frames; only frames that destroy stream framing (length
//! lies, oversize claims) close the connection, so hostile traffic on
//! one connection never drops valid requests on another.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use super::engine::Engine;
use crate::wire::{encode_response, Frame, FrameDecoder, Reply, Request, Response};

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Cap on concurrently threaded connections; an accept beyond the
    /// cap is served inline on the accept thread (backpressure), so the
    /// daemon's thread count stays bounded. 0 → default of 8.
    pub max_conns: usize,
    /// Socket read timeout; the poll interval at which idle handlers
    /// notice a daemon shutdown. 0 → default of 50 ms.
    pub read_timeout_ms: u64,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            max_conns: 8,
            read_timeout_ms: 50,
        }
    }
}

/// Serve wire-protocol connections on `listener` until a client sends a
/// `Shutdown` control frame. Blocks; joins every handler thread before
/// returning, so observability state is complete when it does.
pub fn serve(
    listener: TcpListener,
    engine: Arc<Engine>,
    opts: ServerOptions,
) -> std::io::Result<()> {
    let opts = ServerOptions {
        max_conns: if opts.max_conns == 0 {
            8
        } else {
            opts.max_conns
        },
        read_timeout_ms: if opts.read_timeout_ms == 0 {
            50
        } else {
            opts.read_timeout_ms
        },
    };
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                return Err(e);
            }
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        handles.retain(|h| !h.is_finished());
        let ctx = ConnCtx {
            engine: Arc::clone(&engine),
            stop: Arc::clone(&stop),
            local,
            read_timeout: Duration::from_millis(opts.read_timeout_ms),
        };
        if active.load(Ordering::SeqCst) >= opts.max_conns {
            // At the cap: serve inline so accept itself backpressures.
            handle_conn(stream, &ctx);
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        let active = Arc::clone(&active);
        handles.push(std::thread::spawn(move || {
            handle_conn(stream, &ctx);
            active.fetch_sub(1, Ordering::SeqCst);
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

struct ConnCtx {
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    local: SocketAddr,
    read_timeout: Duration,
}

/// Signal the accept loop: set the stop flag and poke the listener with
/// a throwaway connection so a blocked `accept()` wakes up.
fn trigger_stop(ctx: &ConnCtx) {
    ctx.stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(ctx.local);
}

fn decode_error_response(error: &crate::error::MartError) -> Response {
    Response {
        id: 0,
        model_version: 0,
        result: Err((error.kind().to_string(), error.to_string())),
    }
}

fn handle_conn(stream: TcpStream, ctx: &ConnCtx) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.read_timeout));
    let mut stream = stream;
    let mut decoder = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        if ctx.stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        };
        decoder.push(&buf[..n]);
        // Drain every complete frame out of this read into one batch.
        let mut batch: Vec<(u64, Request)> = Vec::new();
        let mut out: Vec<u8> = Vec::new();
        let mut fatal = false;
        let mut shutdown_requested = false;
        loop {
            match decoder.next_frame() {
                Ok(None) => break,
                Ok(Some(Frame::Request { id, req })) => match req {
                    Request::Shutdown => {
                        out.extend_from_slice(&encode_response(&Response {
                            id,
                            model_version: 0,
                            result: Ok(Reply::Pong),
                        }));
                        shutdown_requested = true;
                    }
                    req => batch.push((id, req)),
                },
                Ok(Some(Frame::Response(_))) => {
                    out.extend_from_slice(&encode_response(&decode_error_response(
                        &crate::error::MartError::BadRequest(
                            "unexpected response frame from client".to_string(),
                        ),
                    )));
                }
                Err(we) => {
                    out.extend_from_slice(&encode_response(&decode_error_response(&we.error)));
                    if we.fatal {
                        fatal = true;
                        break;
                    }
                }
            }
        }
        if !batch.is_empty() {
            for resp in ctx.engine.submit_batch(batch) {
                out.extend_from_slice(&encode_response(&resp));
            }
        }
        if !out.is_empty() && stream.write_all(&out).is_err() {
            break;
        }
        if shutdown_requested {
            trigger_stop(ctx);
            break;
        }
        if fatal {
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
    }
}

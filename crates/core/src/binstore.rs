//! On-disk columnar binned dataset: the out-of-core counterpart of an
//! in-RAM `FeatureMatrix` + `BinnedMatrix` pair, written shard by shard
//! so neither the writer nor a trainer ever holds the full corpus.
//!
//! # Layout
//!
//! A store is a directory holding one binary file per shard plus a
//! checksummed JSON `manifest.json` in the same envelope style as
//! [`crate::bundle::ModelBundle`] persistence (format version + FNV-1a
//! payload checksum, structural validation on open). Each shard file:
//!
//! ```text
//! offset size  field
//!      0    4  magic  b"SMBS"
//!      4    4  format version (u32 LE)
//!      8    8  row count (u64 LE)
//!     16    4  column count (u32 LE)
//!     20    1  section flags (bit0 RAW, bit1 CODES, bit2 TARGETS, bit3 LABELS)
//!     21    1  bin-code width in bytes (1; u16 codes are reserved)
//!     22    2  reserved (0)
//!     24    8  FNV-1a checksum of every byte after the header (u64 LE)
//!     32    …  sections, in flag order:
//!              RAW      rows×cols f32 LE, column-major
//!              CODES    rows×cols u8, row-major
//!              TARGETS  rows f32 LE
//!              LABELS   rows u32 LE
//! ```
//!
//! RAW is column-major so the finalize pass can stream one *global
//! column* (shard-order concatenation = global row order) with one
//! contiguous read per shard; CODES is row-major so the GBDT shard
//! cache and the NN chunk loader consume it without a transpose.
//!
//! # Determinism
//!
//! Quantile cuts are derived per column from the shard-order
//! concatenation of raw values — exactly the sequence the in-RAM
//! binning sees — through the same shared helper
//! ([`column_quantile_cuts`]), so cuts and bin codes are bit-identical
//! to `BinnedMatrix::new` on the equivalent resident matrix for every
//! shard size. Cut values round-trip through the manifest as `f32` bit
//! patterns, never decimal text.

use crate::error::MartError;
use crate::persist::write_atomic;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use stencilmart_ml::gbdt::binned::{bin_column_into, column_quantile_cuts, MAX_BINS};
use stencilmart_ml::gbdt::stream::ShardedBins;
use stencilmart_ml::nn::stream::{Chunk, ChunkSource};
use stencilmart_obs::counters;
use stencilmart_obs::manifest::{fnv1a, Fnv1a};

/// On-disk shard format version this build reads and writes.
pub const SHARD_FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"SMBS";
const HEADER_LEN: usize = 32;

const FLAG_RAW: u8 = 1 << 0;
const FLAG_CODES: u8 = 1 << 1;
const FLAG_TARGETS: u8 = 1 << 2;
const FLAG_LABELS: u8 = 1 << 3;

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.json";

#[derive(Debug, Serialize, Deserialize)]
struct Envelope {
    format_version: u32,
    checksum: String,
    payload: String,
}

/// Atomically write `payload_json` wrapped in the shard-format envelope
/// (version + FNV-1a payload checksum). Returns the checksum hex, which
/// manifests record so a merge can tie each file to its listing.
pub(crate) fn write_envelope_json(path: &Path, payload_json: &str) -> Result<String, MartError> {
    let checksum = format!("{:016x}", fnv1a(payload_json.as_bytes()));
    let envelope = Envelope {
        format_version: SHARD_FORMAT_VERSION,
        checksum: checksum.clone(),
        payload: payload_json.to_string(),
    };
    write_atomic(path, serde_json::to_string_pretty(&envelope)?)?;
    Ok(checksum)
}

/// Read an envelope file, verifying version and payload checksum.
/// Returns `(payload_json, checksum_hex)`.
pub(crate) fn read_envelope_json(path: &Path) -> Result<(String, String), MartError> {
    let text = fs::read_to_string(path)?;
    let envelope: Envelope = serde_json::from_str(&text)?;
    if envelope.format_version != SHARD_FORMAT_VERSION {
        return Err(MartError::WrongVersion {
            found: envelope.format_version,
            expected: SHARD_FORMAT_VERSION,
        });
    }
    let computed = format!("{:016x}", fnv1a(envelope.payload.as_bytes()));
    if computed != envelope.checksum {
        return Err(MartError::ChecksumMismatch {
            stored: envelope.checksum,
            computed,
        });
    }
    Ok((envelope.payload, envelope.checksum))
}

#[derive(Debug, Serialize, Deserialize)]
struct ManifestPayload {
    rows: u64,
    cols: u32,
    n_bins: u32,
    /// Per-column cut values as `f32` bit patterns (exact round-trip).
    cut_bits: Vec<Vec<u32>>,
    shards: Vec<ShardEntry>,
}

/// One shard as listed in the store manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardEntry {
    /// Shard index (contiguous from 0, global row order).
    pub id: usize,
    /// File name relative to the store directory.
    pub file: String,
    /// Rows in this shard.
    pub rows: u64,
    /// FNV-1a checksum of the shard file's post-header bytes
    /// (lower-case hex, 16 digits) — must match the shard header.
    pub checksum: String,
}

fn invalid(msg: impl Into<String>) -> MartError {
    MartError::InvalidShard(msg.into())
}

/// Serialize one shard file and return `(bytes, checksum)`.
fn encode_shard(
    rows: usize,
    cols: usize,
    raw_col_major: Option<&[f32]>,
    codes_row_major: Option<&[u8]>,
    targets: Option<&[f32]>,
    labels: Option<&[u32]>,
) -> (Vec<u8>, u64) {
    let mut flags = 0u8;
    let mut payload_len = 0usize;
    if let Some(r) = raw_col_major {
        assert_eq!(r.len(), rows * cols);
        flags |= FLAG_RAW;
        payload_len += r.len() * 4;
    }
    if let Some(c) = codes_row_major {
        assert_eq!(c.len(), rows * cols);
        flags |= FLAG_CODES;
        payload_len += c.len();
    }
    if let Some(t) = targets {
        assert_eq!(t.len(), rows);
        flags |= FLAG_TARGETS;
        payload_len += t.len() * 4;
    }
    if let Some(l) = labels {
        assert_eq!(l.len(), rows);
        flags |= FLAG_LABELS;
        payload_len += l.len() * 4;
    }
    let mut payload = Vec::with_capacity(payload_len);
    if let Some(r) = raw_col_major {
        for v in r {
            payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    if let Some(c) = codes_row_major {
        payload.extend_from_slice(c);
    }
    if let Some(t) = targets {
        for v in t {
            payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    if let Some(l) = labels {
        for v in l {
            payload.extend_from_slice(&v.to_le_bytes());
        }
    }
    let mut h = Fnv1a::new();
    h.update(&payload);
    let checksum = h.finish();

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SHARD_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(rows as u64).to_le_bytes());
    out.extend_from_slice(&(cols as u32).to_le_bytes());
    out.push(flags);
    out.push(1); // code width: u8
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&checksum.to_le_bytes());
    out.extend_from_slice(&payload);
    (out, checksum)
}

/// Parsed shard header.
#[derive(Debug, Clone, Copy)]
struct ShardHeader {
    rows: u64,
    cols: u32,
    flags: u8,
    checksum: u64,
}

impl ShardHeader {
    fn parse(bytes: &[u8], what: &str) -> Result<ShardHeader, MartError> {
        if bytes.len() < HEADER_LEN {
            return Err(invalid(format!(
                "{what}: {} bytes is shorter than the {HEADER_LEN}-byte header",
                bytes.len()
            )));
        }
        if bytes[..4] != MAGIC {
            return Err(invalid(format!("{what}: bad magic {:02x?}", &bytes[..4])));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != SHARD_FORMAT_VERSION {
            return Err(MartError::WrongVersion {
                found: version,
                expected: SHARD_FORMAT_VERSION,
            });
        }
        let rows = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let cols = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
        let flags = bytes[20];
        let code_width = bytes[21];
        if code_width != 1 {
            return Err(invalid(format!(
                "{what}: bin-code width {code_width} is not supported (only u8 codes)"
            )));
        }
        let checksum = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
        Ok(ShardHeader {
            rows,
            cols,
            flags,
            checksum,
        })
    }

    /// Byte length of the sections preceding `flag`, and of `flag`'s own
    /// section, for this header's shape.
    fn section_range(&self, flag: u8) -> Option<(usize, usize)> {
        if self.flags & flag == 0 {
            return None;
        }
        let rows = self.rows as usize;
        let cols = self.cols as usize;
        let mut off = HEADER_LEN;
        for (f, len) in [
            (FLAG_RAW, rows * cols * 4),
            (FLAG_CODES, rows * cols),
            (FLAG_TARGETS, rows * 4),
            (FLAG_LABELS, rows * 4),
        ] {
            if f == flag {
                return Some((off, len));
            }
            if self.flags & f != 0 {
                off += len;
            }
        }
        None
    }

    fn payload_len(&self) -> usize {
        let rows = self.rows as usize;
        let cols = self.cols as usize;
        let mut len = 0usize;
        for (f, l) in [
            (FLAG_RAW, rows * cols * 4),
            (FLAG_CODES, rows * cols),
            (FLAG_TARGETS, rows * 4),
            (FLAG_LABELS, rows * 4),
        ] {
            if self.flags & f != 0 {
                len += l;
            }
        }
        len
    }
}

/// Streaming writer: rows are pushed in global order, spilled to
/// temporary raw shards every `rows_per_shard` rows, then `finalize`
/// derives global quantile cuts column by column, bins every shard
/// against them, and atomically writes the final shards + manifest.
/// Peak memory is one shard of rows plus one full raw column.
pub struct BinStoreWriter {
    dir: PathBuf,
    cols: usize,
    n_bins: usize,
    rows_per_shard: usize,
    /// Current shard accumulation, row-major.
    cur_raw: Vec<f32>,
    cur_targets: Vec<f32>,
    cur_labels: Vec<u32>,
    /// Rows per spilled temp shard, in shard order.
    temp_rows: Vec<usize>,
}

impl BinStoreWriter {
    /// Create a writer into `dir` (created if missing) for `cols`
    /// features quantile-binned into at most `n_bins` bins, cutting a
    /// shard every `rows_per_shard` rows.
    pub fn create(
        dir: &Path,
        cols: usize,
        n_bins: usize,
        rows_per_shard: usize,
    ) -> io::Result<BinStoreWriter> {
        assert!(cols > 0, "need at least one feature column");
        assert!((2..=MAX_BINS).contains(&n_bins), "n_bins must be 2..=255");
        assert!(rows_per_shard > 0, "rows_per_shard must be positive");
        fs::create_dir_all(dir)?;
        Ok(BinStoreWriter {
            dir: dir.to_path_buf(),
            cols,
            n_bins,
            rows_per_shard,
            cur_raw: Vec::with_capacity(rows_per_shard * cols),
            cur_targets: Vec::with_capacity(rows_per_shard),
            cur_labels: Vec::with_capacity(rows_per_shard),
            temp_rows: Vec::new(),
        })
    }

    fn temp_path(&self, id: usize) -> PathBuf {
        self.dir.join(format!("shard-{id:05}.tmp.bin"))
    }

    fn shard_path(dir: &Path, id: usize) -> PathBuf {
        dir.join(shard_file_name(id))
    }

    /// Append one sample (features in global row order, its regression
    /// target, and its class label). Spills a temp shard when full.
    pub fn push_row(&mut self, features: &[f32], target: f32, label: u32) -> io::Result<()> {
        assert_eq!(features.len(), self.cols, "feature width mismatch");
        self.cur_raw.extend_from_slice(features);
        self.cur_targets.push(target);
        self.cur_labels.push(label);
        if self.cur_targets.len() >= self.rows_per_shard {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> io::Result<()> {
        let rows = self.cur_targets.len();
        if rows == 0 {
            return Ok(());
        }
        // Transpose the accumulated rows to the column-major RAW layout.
        let mut col_major = vec![0.0f32; rows * self.cols];
        for r in 0..rows {
            for c in 0..self.cols {
                col_major[c * rows + r] = self.cur_raw[r * self.cols + c];
            }
        }
        let (bytes, _) = encode_shard(
            rows,
            self.cols,
            Some(&col_major),
            None,
            Some(&self.cur_targets),
            Some(&self.cur_labels),
        );
        let id = self.temp_rows.len();
        write_atomic(&self.temp_path(id), &bytes)?;
        self.temp_rows.push(rows);
        self.cur_raw.clear();
        self.cur_targets.clear();
        self.cur_labels.clear();
        Ok(())
    }

    /// Derive global cuts, bin every shard, write the final shards and
    /// the checksummed manifest, and remove the temporaries. Consumes
    /// the writer; returns the opened (validated) store.
    pub fn finalize(mut self) -> Result<BinStore, MartError> {
        self.spill()?;
        if self.temp_rows.is_empty() {
            return Err(invalid("cannot finalize an empty store"));
        }
        let total_rows: usize = self.temp_rows.iter().sum();
        let _span = stencilmart_obs::span("binstore_finalize");

        // Pass 1: per-column global quantile cuts from the shard-order
        // concatenation of raw values (= global row order).
        let mut cuts: Vec<Vec<f32>> = Vec::with_capacity(self.cols);
        let mut col_vals: Vec<f32> = Vec::with_capacity(total_rows);
        let mut keys: Vec<u32> = Vec::with_capacity(total_rows);
        let mut key_tmp: Vec<u32> = Vec::with_capacity(total_rows);
        let mut byte_buf: Vec<u8> = Vec::new();
        for c in 0..self.cols {
            col_vals.clear();
            for (id, &rows) in self.temp_rows.iter().enumerate() {
                read_raw_column(&self.temp_path(id), rows, self.cols, c, &mut byte_buf)?;
                col_vals.extend(
                    byte_buf
                        .chunks_exact(4)
                        .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().expect("4")))),
                );
            }
            cuts.push(column_quantile_cuts(
                &mut col_vals,
                self.n_bins,
                &mut keys,
                &mut key_tmp,
            ));
        }

        // Pass 2: bin each shard against the global cuts and write the
        // final shard files.
        let mut entries: Vec<ShardEntry> = Vec::with_capacity(self.temp_rows.len());
        let mut pad: Vec<f32> = Vec::new();
        for (id, &rows) in self.temp_rows.iter().enumerate() {
            let tmp = fs::read(self.temp_path(id))?;
            let header = ShardHeader::parse(&tmp, &format!("temp shard {id}"))?;
            if header.rows as usize != rows || header.cols as usize != self.cols {
                return Err(invalid(format!(
                    "temp shard {id}: header shape {}x{} does not match writer state {rows}x{}",
                    header.rows, header.cols, self.cols
                )));
            }
            let (raw_off, raw_len) = header
                .section_range(FLAG_RAW)
                .ok_or_else(|| invalid(format!("temp shard {id}: missing RAW section")))?;
            let raw: Vec<f32> = tmp[raw_off..raw_off + raw_len]
                .chunks_exact(4)
                .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().expect("4"))))
                .collect();
            let mut codes = vec![0u8; rows * self.cols];
            for c in 0..self.cols {
                // Column-major raw → row-major codes (start=c, stride=cols).
                bin_column_into(
                    &raw[c * rows..(c + 1) * rows],
                    &cuts[c],
                    c,
                    self.cols,
                    &mut codes,
                    &mut pad,
                );
            }
            let (t_off, t_len) = header
                .section_range(FLAG_TARGETS)
                .ok_or_else(|| invalid(format!("temp shard {id}: missing TARGETS section")))?;
            let targets: Vec<f32> = tmp[t_off..t_off + t_len]
                .chunks_exact(4)
                .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().expect("4"))))
                .collect();
            let (l_off, l_len) = header
                .section_range(FLAG_LABELS)
                .ok_or_else(|| invalid(format!("temp shard {id}: missing LABELS section")))?;
            let labels: Vec<u32> = tmp[l_off..l_off + l_len]
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4")))
                .collect();
            drop(tmp);
            let (bytes, checksum) = encode_shard(
                rows,
                self.cols,
                Some(&raw),
                Some(&codes),
                Some(&targets),
                Some(&labels),
            );
            write_atomic(&Self::shard_path(&self.dir, id), &bytes)?;
            counters::SHARDS_WRITTEN.inc();
            entries.push(ShardEntry {
                id,
                file: shard_file_name(id),
                rows: rows as u64,
                checksum: format!("{checksum:016x}"),
            });
        }

        let payload = ManifestPayload {
            rows: total_rows as u64,
            cols: self.cols as u32,
            n_bins: self.n_bins as u32,
            cut_bits: cuts
                .iter()
                .map(|col| col.iter().map(|v| v.to_bits()).collect())
                .collect(),
            shards: entries,
        };
        let payload_json = serde_json::to_string(&payload)?;
        write_envelope_json(&self.dir.join(MANIFEST_FILE), &payload_json)?;
        for id in 0..self.temp_rows.len() {
            let _ = fs::remove_file(self.temp_path(id));
        }
        BinStore::open(&self.dir)
    }
}

/// File name of final shard `id`.
pub fn shard_file_name(id: usize) -> String {
    format!("shard-{id:05}.bin")
}

/// Read column `c`'s raw section of one shard file into `buf` (raw LE
/// bytes, `rows * 4` of them) with a single seek + contiguous read.
fn read_raw_column(
    path: &Path,
    rows: usize,
    cols: usize,
    c: usize,
    buf: &mut Vec<u8>,
) -> io::Result<()> {
    let mut f = fs::File::open(path)?;
    let mut header = [0u8; HEADER_LEN];
    f.read_exact(&mut header)?;
    let h = ShardHeader::parse(&header, "shard")
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let (raw_off, _) = h
        .section_range(FLAG_RAW)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "shard has no RAW section"))?;
    debug_assert_eq!(h.rows as usize, rows);
    debug_assert_eq!(h.cols as usize, cols);
    f.seek(SeekFrom::Start((raw_off + c * rows * 4) as u64))?;
    buf.clear();
    buf.resize(rows * 4, 0);
    f.read_exact(buf)?;
    Ok(())
}

/// A validated on-disk binned dataset, ready to hand shards to the
/// streaming GBDT and NN trainers.
#[derive(Debug, Clone)]
pub struct BinStore {
    dir: PathBuf,
    rows: usize,
    cols: usize,
    n_bins: usize,
    cuts: Vec<Vec<f32>>,
    shards: Vec<ShardEntry>,
}

impl BinStore {
    /// Open a store strictly: the manifest envelope (version, payload
    /// checksum) and *every* shard file (header, shape, checksum) are
    /// verified before any training starts. Any defect is a structured
    /// [`MartError`], never a panic.
    pub fn open(dir: &Path) -> Result<BinStore, MartError> {
        let store = Self::open_manifest(dir)?;
        for entry in &store.shards {
            store.verify_shard(entry)?;
        }
        Ok(store)
    }

    /// Open a store but tolerate corrupt shards: the manifest must be
    /// intact, but shards that fail validation are dropped from the
    /// store and returned alongside their errors, so training can
    /// proceed on the survivors (row indices stay per-shard
    /// contiguous). Errors if *no* shard survives.
    pub fn open_surviving(dir: &Path) -> Result<(BinStore, Vec<(usize, MartError)>), MartError> {
        let mut store = Self::open_manifest(dir)?;
        let mut dropped = Vec::new();
        let mut survivors = Vec::new();
        for entry in store.shards.drain(..) {
            let mut probe = BinStore {
                dir: store.dir.clone(),
                rows: entry.rows as usize,
                cols: store.cols,
                n_bins: store.n_bins,
                cuts: Vec::new(),
                shards: Vec::new(),
            };
            probe.cuts = store.cuts.clone();
            match probe.verify_shard(&entry) {
                Ok(()) => survivors.push(entry),
                Err(e) => dropped.push((entry.id, e)),
            }
        }
        store.shards = survivors;
        store.rows = store.shards.iter().map(|s| s.rows as usize).sum();
        if store.shards.is_empty() {
            return Err(invalid("no shard survived validation"));
        }
        Ok((store, dropped))
    }

    fn open_manifest(dir: &Path) -> Result<BinStore, MartError> {
        let (payload_json, _) = read_envelope_json(&dir.join(MANIFEST_FILE))?;
        let payload: ManifestPayload = serde_json::from_str(&payload_json)?;
        let cols = payload.cols as usize;
        if cols == 0 {
            return Err(invalid("manifest: zero columns"));
        }
        if payload.cut_bits.len() != cols {
            return Err(invalid(format!(
                "manifest: {} cut vectors for {cols} columns",
                payload.cut_bits.len()
            )));
        }
        let cuts: Vec<Vec<f32>> = payload
            .cut_bits
            .iter()
            .map(|col| col.iter().map(|&b| f32::from_bits(b)).collect())
            .collect();
        for (c, col) in cuts.iter().enumerate() {
            if col.len() + 1 > payload.n_bins.max(2) as usize {
                return Err(invalid(format!(
                    "manifest: column {c} has {} cuts for n_bins {}",
                    col.len(),
                    payload.n_bins
                )));
            }
            // `partial_cmp != Less` also rejects NaN cuts, which a
            // plain `>=` comparison would let through.
            if col
                .windows(2)
                .any(|w| w[0].partial_cmp(&w[1]) != Some(std::cmp::Ordering::Less))
            {
                return Err(invalid(format!(
                    "manifest: column {c} cuts are not strictly increasing"
                )));
            }
        }
        for (i, s) in payload.shards.iter().enumerate() {
            if s.id != i {
                return Err(invalid(format!(
                    "manifest: shard ids not contiguous ({} at position {i})",
                    s.id
                )));
            }
        }
        let rows: u64 = payload.shards.iter().map(|s| s.rows).sum();
        if rows != payload.rows {
            return Err(invalid(format!(
                "manifest: shard rows sum to {rows}, header says {}",
                payload.rows
            )));
        }
        if payload.shards.is_empty() {
            return Err(invalid("manifest: no shards"));
        }
        Ok(BinStore {
            dir: dir.to_path_buf(),
            rows: rows as usize,
            cols,
            n_bins: payload.n_bins as usize,
            cuts,
            shards: payload.shards,
        })
    }

    /// Verify one shard file against the manifest: readable, parseable
    /// header, matching shape and sections, and a payload that hashes
    /// to both the header's and the manifest's checksum.
    fn verify_shard(&self, entry: &ShardEntry) -> Result<(), MartError> {
        let path = self.dir.join(&entry.file);
        let what = format!("shard {}", entry.id);
        let mut f = fs::File::open(&path)?;
        let mut header = [0u8; HEADER_LEN];
        f.read_exact(&mut header)
            .map_err(|e| invalid(format!("{what}: header unreadable: {e}")))?;
        let h = ShardHeader::parse(&header, &what)?;
        if h.rows != entry.rows {
            return Err(invalid(format!(
                "{what}: header says {} rows, manifest says {}",
                h.rows, entry.rows
            )));
        }
        if h.cols as usize != self.cols {
            return Err(invalid(format!(
                "{what}: header says {} columns, manifest says {}",
                h.cols, self.cols
            )));
        }
        for (flag, name) in [
            (FLAG_RAW, "RAW"),
            (FLAG_CODES, "CODES"),
            (FLAG_TARGETS, "TARGETS"),
            (FLAG_LABELS, "LABELS"),
        ] {
            if h.flags & flag == 0 {
                return Err(invalid(format!("{what}: missing {name} section")));
            }
        }
        // Stream the payload through the checksum in bounded chunks.
        let expect_len = h.payload_len();
        let mut hasher = Fnv1a::new();
        let mut remaining = expect_len;
        let mut buf = vec![0u8; (1 << 20).min(expect_len.max(1))];
        while remaining > 0 {
            let n = buf.len().min(remaining);
            f.read_exact(&mut buf[..n])
                .map_err(|e| invalid(format!("{what}: truncated payload: {e}")))?;
            hasher.update(&buf[..n]);
            remaining -= n;
        }
        if f.read(&mut [0u8; 1])? != 0 {
            return Err(invalid(format!("{what}: trailing bytes after payload")));
        }
        let computed = hasher.finish();
        if computed != h.checksum {
            return Err(MartError::ChecksumMismatch {
                stored: format!("{:016x}", h.checksum),
                computed: format!("{computed:016x}"),
            });
        }
        let hex = format!("{computed:016x}");
        if hex != entry.checksum {
            return Err(MartError::ChecksumMismatch {
                stored: entry.checksum.clone(),
                computed: hex,
            });
        }
        Ok(())
    }

    /// Total rows across the store's (surviving) shards.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Feature columns per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Maximum quantile bins per column the store was built with.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Number of (surviving) shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-column quantile cut vectors.
    pub fn cuts(&self) -> &[Vec<f32>] {
        &self.cuts
    }

    /// The manifest's (surviving) shard entries.
    pub fn shard_entries(&self) -> &[ShardEntry] {
        &self.shards
    }

    fn read_section(&self, shard: usize, flag: u8, name: &str) -> io::Result<Vec<u8>> {
        let entry = &self.shards[shard];
        let mut f = fs::File::open(self.dir.join(&entry.file))?;
        let mut header = [0u8; HEADER_LEN];
        f.read_exact(&mut header)?;
        let h = ShardHeader::parse(&header, "shard")
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let (off, len) = h.section_range(flag).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("missing {name} section"),
            )
        })?;
        f.seek(SeekFrom::Start(off as u64))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Load one shard's row-major bin codes.
    pub fn load_codes(&self, shard: usize) -> io::Result<Vec<u8>> {
        self.read_section(shard, FLAG_CODES, "CODES")
    }

    /// Load one shard as a row-major NN training chunk (raw features
    /// transposed from the columnar section, plus targets and labels).
    pub fn load_chunk(&self, shard: usize) -> io::Result<Chunk> {
        let rows = self.shards[shard].rows as usize;
        let cols = self.cols;
        let raw = self.read_section(shard, FLAG_RAW, "RAW")?;
        let mut data = vec![0.0f32; rows * cols];
        for c in 0..cols {
            for r in 0..rows {
                let b = &raw[(c * rows + r) * 4..(c * rows + r) * 4 + 4];
                data[r * cols + c] = f32::from_bits(u32::from_le_bytes(b.try_into().expect("4")));
            }
        }
        let targets = self
            .read_section(shard, FLAG_TARGETS, "TARGETS")?
            .chunks_exact(4)
            .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().expect("4"))))
            .collect();
        let labels = self
            .read_section(shard, FLAG_LABELS, "LABELS")?
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4")))
            .collect();
        Ok(Chunk {
            rows,
            cols,
            data,
            labels,
            targets,
        })
    }

    /// Load one shard's regression targets.
    pub fn load_targets(&self, shard: usize) -> io::Result<Vec<f32>> {
        Ok(self
            .read_section(shard, FLAG_TARGETS, "TARGETS")?
            .chunks_exact(4)
            .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().expect("4"))))
            .collect())
    }

    /// Load one shard's class labels.
    pub fn load_labels(&self, shard: usize) -> io::Result<Vec<u32>> {
        Ok(self
            .read_section(shard, FLAG_LABELS, "LABELS")?
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4")))
            .collect())
    }

    /// All targets in global row order (one shard resident at a time).
    pub fn all_targets(&self) -> io::Result<Vec<f32>> {
        let mut out = Vec::with_capacity(self.rows);
        for s in 0..self.shards.len() {
            out.extend(self.load_targets(s)?);
        }
        Ok(out)
    }

    /// All labels in global row order (one shard resident at a time).
    pub fn all_labels(&self) -> io::Result<Vec<u32>> {
        let mut out = Vec::with_capacity(self.rows);
        for s in 0..self.shards.len() {
            out.extend(self.load_labels(s)?);
        }
        Ok(out)
    }

    /// A [`ShardedBins`] view for streamed GBDT training, keeping at
    /// most `cache_shards` shards of bin codes resident.
    pub fn sharded_bins(&self, cache_shards: usize) -> ShardedBins {
        let shard_rows: Vec<usize> = self.shards.iter().map(|s| s.rows as usize).collect();
        let loader_store = self.clone();
        ShardedBins::new(
            &shard_rows,
            self.cols,
            self.cuts.clone(),
            cache_shards,
            Box::new(move |s| loader_store.load_codes(s).map(Arc::new)),
        )
    }
}

impl ChunkSource for BinStore {
    fn n_chunks(&self) -> usize {
        self.shards.len()
    }

    fn load(&self, i: usize) -> io::Result<Chunk> {
        self.load_chunk(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilmart_ml::data::FeatureMatrix;
    use stencilmart_ml::gbdt::binned::BinnedMatrix;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stencilmart_binstore_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn demo_rows(n: usize, cols: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|r| {
                (0..cols)
                    .map(|c| ((r * cols + c) as f32 * 0.37).sin() * 10.0)
                    .collect()
            })
            .collect()
    }

    fn write_store(dir: &Path, rows: &[Vec<f32>], n_bins: usize, per_shard: usize) -> BinStore {
        let cols = rows[0].len();
        let mut w = BinStoreWriter::create(dir, cols, n_bins, per_shard).unwrap();
        for (i, r) in rows.iter().enumerate() {
            w.push_row(r, i as f32 * 0.5, (i % 3) as u32).unwrap();
        }
        w.finalize().unwrap()
    }

    #[test]
    fn roundtrip_matches_in_ram_binning_bitwise() {
        let dir = tmp_dir("roundtrip");
        let rows = demo_rows(23, 4);
        let store = write_store(&dir, &rows, 8, 7);
        assert_eq!(store.rows(), 23);
        assert_eq!(store.cols(), 4);
        assert_eq!(store.shard_count(), 4); // 7+7+7+2

        // Cuts and codes must be bit-identical to the in-RAM binning.
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        let x = FeatureMatrix::new(23, 4, flat);
        let bm = BinnedMatrix::new(&x, 8);
        for c in 0..4 {
            let expect: Vec<u32> = (0..bm.n_bins(c) - 1)
                .map(|b| bm.cut_value(c, b).to_bits())
                .collect();
            let got: Vec<u32> = store.cuts()[c].iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, expect, "column {c} cuts");
        }
        let mut row = 0usize;
        for s in 0..store.shard_count() {
            let codes = store.load_codes(s).unwrap();
            let shard_rows = store.shard_entries()[s].rows as usize;
            for r in 0..shard_rows {
                for c in 0..4 {
                    assert_eq!(
                        codes[r * 4 + c] as usize,
                        bm.bin(row + r, c),
                        "shard {s} row {r} col {c}"
                    );
                }
            }
            row += shard_rows;
        }

        // Targets/labels survive in order; the chunk view agrees with
        // the pushed raw rows.
        let targets = store.all_targets().unwrap();
        assert_eq!(targets.len(), 23);
        assert_eq!(targets[10], 5.0);
        let labels = store.all_labels().unwrap();
        assert_eq!(labels[10], 1);
        let chunk = store.load_chunk(1).unwrap();
        assert_eq!(chunk.rows, 7);
        assert_eq!(chunk.data[0..4], rows[7][..]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_bit_flip_with_structured_error() {
        let dir = tmp_dir("bitflip");
        let store = write_store(&dir, &demo_rows(20, 3), 8, 6);
        let victim = dir.join(&store.shard_entries()[1].file);
        let mut bytes = fs::read(&victim).unwrap();
        let k = bytes.len() - 5;
        bytes[k] ^= 0x40;
        fs::write(&victim, &bytes).unwrap();
        let err = BinStore::open(&dir).expect_err("corrupt shard must fail strict open");
        assert_eq!(err.kind(), "checksum_mismatch");
        // Surviving open drops exactly the corrupt shard.
        let (survivor, dropped) = BinStore::open_surviving(&dir).unwrap();
        assert_eq!(survivor.shard_count(), store.shard_count() - 1);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].0, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_truncation_and_bad_magic() {
        let dir = tmp_dir("trunc");
        let store = write_store(&dir, &demo_rows(18, 2), 8, 9);
        let victim = dir.join(&store.shard_entries()[0].file);
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() - 7]).unwrap();
        let err = BinStore::open(&dir).expect_err("truncated shard must fail");
        assert_eq!(err.kind(), "invalid_shard");
        assert!(err.to_string().contains("truncated"), "{err}");

        fs::write(&victim, b"NOPE").unwrap();
        let err = BinStore::open(&dir).expect_err("bad magic must fail");
        assert_eq!(err.kind(), "invalid_shard");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_tamper_is_detected() {
        let dir = tmp_dir("manifest");
        let _ = write_store(&dir, &demo_rows(12, 2), 8, 4);
        let path = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replace("\\\"rows\\\":12", "\\\"rows\\\":13");
        assert_ne!(tampered, text, "tamper pattern must hit the payload");
        fs::write(&path, tampered).unwrap();
        let err = BinStore::open(&dir).expect_err("tampered manifest must fail");
        assert_eq!(err.kind(), "checksum_mismatch");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_io_error() {
        let dir = tmp_dir("missing");
        fs::create_dir_all(&dir).unwrap();
        let err = BinStore::open(&dir).expect_err("no manifest");
        assert_eq!(err.kind(), "io");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_temp_files_survive_finalize() {
        let dir = tmp_dir("cleanup");
        let _ = write_store(&dir, &demo_rows(10, 2), 4, 3);
        let leftovers: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_gbdt_over_store_matches_resident_fit() {
        use stencilmart_ml::gbdt::{GbdtConfig, GbdtRegressor};
        let dir = tmp_dir("gbdt");
        let n = 64;
        let rows = demo_rows(n, 3);
        let store = write_store(&dir, &rows, 16, 13);
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        let x = FeatureMatrix::new(n, 3, flat);
        let y: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        let cfg = GbdtConfig {
            rounds: 6,
            bins: 16,
            subsample: 0.8,
            ..GbdtConfig::default()
        };
        let resident = GbdtRegressor::fit(&x, &y, &cfg);
        let sb = store.sharded_bins(2);
        let streamed = GbdtRegressor::fit_streamed(&sb, &store.all_targets().unwrap(), &cfg);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&resident).unwrap(),
            "disk-backed streamed fit must be byte-equal to resident"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

//! On-disk columnar binned dataset: the out-of-core counterpart of an
//! in-RAM `FeatureMatrix` + `BinnedMatrix` pair, written shard by shard
//! so neither the writer nor a trainer ever holds the full corpus.
//!
//! # Layout
//!
//! A store is a directory holding one binary file per shard plus a
//! checksummed JSON `manifest.json` in the same envelope style as
//! [`crate::bundle::ModelBundle`] persistence (format version + FNV-1a
//! payload checksum, structural validation on open). Each shard file:
//!
//! ```text
//! offset size  field
//!      0    4  magic  b"SMBS"
//!      4    4  format version (u32 LE)
//!      8    8  row count (u64 LE)
//!     16    4  column count (u32 LE)
//!     20    1  section flags (bit0 RAW, bit1 CODES, bit2 TARGETS, bit3 LABELS)
//!     21    1  bin-code width in bytes (1 = u8, 2 = u16 LE)
//!     22    1  CODES codec (0 = none, 1 = frame-of-reference bit-pack)
//!     23    1  reserved (0)
//!     24    8  FNV-1a checksum of every byte after the header (u64 LE)
//!     32    …  sections, in flag order:
//!              RAW      rows×cols f32 LE, column-major
//!              CODES    rows×cols codes, row-major (see below)
//!              TARGETS  rows f32 LE
//!              LABELS   rows u32 LE
//! ```
//!
//! RAW is column-major so the finalize pass can stream one *global
//! column* (shard-order concatenation = global row order) with one
//! contiguous read per shard; CODES is row-major so the GBDT shard
//! cache and the NN chunk loader consume it without a transpose.
//!
//! With codec 0 the CODES section is `rows×cols` codes at the header's
//! width. With codec 1 it is one [`crate::codec`] frame-of-reference
//! frame over the whole (u16-widened) section; its byte length is not
//! derivable from the shape, so the manifest records it per shard as
//! `codes_bytes`. Stores with more than 255 bins use u16 codes
//! automatically.
//!
//! # Determinism
//!
//! Quantile cuts are derived per column from the shard-order
//! concatenation of raw values — exactly the sequence the in-RAM
//! binning sees — through the same shared helper
//! ([`column_quantile_cuts`]), so cuts and bin codes are bit-identical
//! to `BinnedMatrix::new` on the equivalent resident matrix for every
//! shard size. Cut values round-trip through the manifest as `f32` bit
//! patterns, never decimal text.

use crate::error::MartError;
use crate::persist::write_atomic;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use stencilmart_ml::gbdt::binned::{
    bin_column_into, bin_column_into_u16, column_quantile_cuts, MAX_BINS, MAX_BINS_U16,
};
use stencilmart_ml::gbdt::stream::{ShardCodes, ShardedBins};
use stencilmart_ml::nn::stream::{Chunk, ChunkSource};
use stencilmart_obs::counters;
use stencilmart_obs::manifest::{fnv1a, Fnv1a};

/// On-disk shard format version this build reads and writes.
pub const SHARD_FORMAT_VERSION: u32 = 2;

const MAGIC: [u8; 4] = *b"SMBS";
const HEADER_LEN: usize = 32;

/// CODES stored verbatim at the header's code width.
pub const CODEC_NONE: u8 = 0;
/// CODES stored as one frame-of-reference bit-packed [`crate::codec`]
/// frame over the u16-widened section.
pub const CODEC_FOR: u8 = 1;

const FLAG_RAW: u8 = 1 << 0;
const FLAG_CODES: u8 = 1 << 1;
const FLAG_TARGETS: u8 = 1 << 2;
const FLAG_LABELS: u8 = 1 << 3;

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.json";

#[derive(Debug, Serialize, Deserialize)]
struct Envelope {
    format_version: u32,
    checksum: String,
    payload: String,
}

/// Atomically write `payload_json` wrapped in the shard-format envelope
/// (version + FNV-1a payload checksum). Returns the checksum hex, which
/// manifests record so a merge can tie each file to its listing.
pub(crate) fn write_envelope_json(path: &Path, payload_json: &str) -> Result<String, MartError> {
    let checksum = format!("{:016x}", fnv1a(payload_json.as_bytes()));
    let envelope = Envelope {
        format_version: SHARD_FORMAT_VERSION,
        checksum: checksum.clone(),
        payload: payload_json.to_string(),
    };
    write_atomic(path, serde_json::to_string_pretty(&envelope)?)?;
    Ok(checksum)
}

/// Read an envelope file, verifying version and payload checksum.
/// Returns `(payload_json, checksum_hex)`.
pub(crate) fn read_envelope_json(path: &Path) -> Result<(String, String), MartError> {
    let text = fs::read_to_string(path)?;
    let envelope: Envelope = serde_json::from_str(&text)?;
    if envelope.format_version != SHARD_FORMAT_VERSION {
        return Err(MartError::WrongVersion {
            found: envelope.format_version,
            expected: SHARD_FORMAT_VERSION,
        });
    }
    let computed = format!("{:016x}", fnv1a(envelope.payload.as_bytes()));
    if computed != envelope.checksum {
        return Err(MartError::ChecksumMismatch {
            stored: envelope.checksum,
            computed,
        });
    }
    Ok((envelope.payload, envelope.checksum))
}

#[derive(Debug, Serialize, Deserialize)]
struct ManifestPayload {
    rows: u64,
    cols: u32,
    n_bins: u32,
    /// Bin-code width in bytes (1 = u8, 2 = u16).
    code_width: u32,
    /// CODES codec id ([`CODEC_NONE`] or [`CODEC_FOR`]).
    codec: u32,
    /// Per-column cut values as `f32` bit patterns (exact round-trip).
    cut_bits: Vec<Vec<u32>>,
    shards: Vec<ShardEntry>,
}

/// One shard as listed in the store manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardEntry {
    /// Shard index (contiguous from 0, global row order).
    pub id: usize,
    /// File name relative to the store directory.
    pub file: String,
    /// Rows in this shard.
    pub rows: u64,
    /// FNV-1a checksum of the shard file's post-header bytes
    /// (lower-case hex, 16 digits) — must match the shard header.
    pub checksum: String,
    /// Encoded byte length of the CODES section. Zero means "derivable
    /// from the shape" (codec 0: `rows × cols × code_width`).
    pub codes_bytes: u64,
}

fn invalid(msg: impl Into<String>) -> MartError {
    MartError::InvalidShard(msg.into())
}

/// Logical bin codes handed to [`encode_shard`], at either code width.
enum CodesSection<'a> {
    U8(&'a [u8]),
    U16(&'a [u16]),
}

impl CodesSection<'_> {
    fn len(&self) -> usize {
        match self {
            CodesSection::U8(c) => c.len(),
            CodesSection::U16(c) => c.len(),
        }
    }

    /// Serialize under `codec`, appending to `payload`. Returns the
    /// encoded byte length.
    fn encode_into(&self, codec: u8, payload: &mut Vec<u8>) -> usize {
        let before = payload.len();
        match (codec, self) {
            (CODEC_NONE, CodesSection::U8(c)) => payload.extend_from_slice(c),
            (CODEC_NONE, CodesSection::U16(c)) => {
                for v in *c {
                    payload.extend_from_slice(&v.to_le_bytes());
                }
            }
            (CODEC_FOR, CodesSection::U8(c)) => {
                let wide: Vec<u16> = c.iter().map(|&b| u16::from(b)).collect();
                payload.extend_from_slice(&crate::codec::encode_for_u16(&wide));
            }
            (CODEC_FOR, CodesSection::U16(c)) => {
                payload.extend_from_slice(&crate::codec::encode_for_u16(c));
            }
            (other, _) => unreachable!("unknown codec id {other}"),
        }
        payload.len() - before
    }
}

/// Serialize one shard file and return
/// `(bytes, checksum, codes_bytes)` — `codes_bytes` is the encoded
/// CODES section length (0 when the shard has no CODES section).
#[allow(clippy::too_many_arguments)]
fn encode_shard(
    rows: usize,
    cols: usize,
    raw_col_major: Option<&[f32]>,
    codes_row_major: Option<CodesSection<'_>>,
    targets: Option<&[f32]>,
    labels: Option<&[u32]>,
    code_width: u8,
    codec: u8,
) -> (Vec<u8>, u64, usize) {
    let mut flags = 0u8;
    let mut payload_len = 0usize;
    if let Some(r) = raw_col_major {
        assert_eq!(r.len(), rows * cols);
        flags |= FLAG_RAW;
        payload_len += r.len() * 4;
    }
    if let Some(c) = &codes_row_major {
        assert_eq!(c.len(), rows * cols);
        flags |= FLAG_CODES;
        payload_len += c.len() * code_width as usize;
    }
    if let Some(t) = targets {
        assert_eq!(t.len(), rows);
        flags |= FLAG_TARGETS;
        payload_len += t.len() * 4;
    }
    if let Some(l) = labels {
        assert_eq!(l.len(), rows);
        flags |= FLAG_LABELS;
        payload_len += l.len() * 4;
    }
    let mut payload = Vec::with_capacity(payload_len);
    if let Some(r) = raw_col_major {
        for v in r {
            payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    let mut codes_bytes = 0usize;
    if let Some(c) = &codes_row_major {
        codes_bytes = c.encode_into(codec, &mut payload);
        let plain = c.len() * code_width as usize;
        if codes_bytes < plain {
            counters::CODEC_BYTES_SAVED.add((plain - codes_bytes) as u64);
        }
    }
    if let Some(t) = targets {
        for v in t {
            payload.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    if let Some(l) = labels {
        for v in l {
            payload.extend_from_slice(&v.to_le_bytes());
        }
    }
    let mut h = Fnv1a::new();
    h.update(&payload);
    let checksum = h.finish();

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SHARD_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(rows as u64).to_le_bytes());
    out.extend_from_slice(&(cols as u32).to_le_bytes());
    out.push(flags);
    out.push(code_width);
    out.push(codec);
    out.push(0); // reserved
    out.extend_from_slice(&checksum.to_le_bytes());
    out.extend_from_slice(&payload);
    (out, checksum, codes_bytes)
}

/// Parsed shard header.
#[derive(Debug, Clone, Copy)]
struct ShardHeader {
    rows: u64,
    cols: u32,
    flags: u8,
    code_width: u8,
    codec: u8,
    checksum: u64,
}

impl ShardHeader {
    fn parse(bytes: &[u8], what: &str) -> Result<ShardHeader, MartError> {
        if bytes.len() < HEADER_LEN {
            return Err(invalid(format!(
                "{what}: {} bytes is shorter than the {HEADER_LEN}-byte header",
                bytes.len()
            )));
        }
        if bytes[..4] != MAGIC {
            return Err(invalid(format!("{what}: bad magic {:02x?}", &bytes[..4])));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != SHARD_FORMAT_VERSION {
            return Err(MartError::WrongVersion {
                found: version,
                expected: SHARD_FORMAT_VERSION,
            });
        }
        let rows = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let cols = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
        let flags = bytes[20];
        let code_width = bytes[21];
        if !matches!(code_width, 1 | 2) {
            return Err(invalid(format!(
                "{what}: bin-code width {code_width} is not supported (1 or 2 bytes)"
            )));
        }
        let codec = bytes[22];
        if !matches!(codec, CODEC_NONE | CODEC_FOR) {
            return Err(invalid(format!("{what}: unknown CODES codec id {codec}")));
        }
        let checksum = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
        Ok(ShardHeader {
            rows,
            cols,
            flags,
            code_width,
            codec,
            checksum,
        })
    }

    /// Byte offset and length of `flag`'s section. `codes_len` is the
    /// encoded CODES section length (ignored when the shard has no
    /// CODES section).
    fn section_range(&self, flag: u8, codes_len: usize) -> Option<(usize, usize)> {
        if self.flags & flag == 0 {
            return None;
        }
        let rows = self.rows as usize;
        let cols = self.cols as usize;
        let mut off = HEADER_LEN;
        for (f, len) in [
            (FLAG_RAW, rows * cols * 4),
            (FLAG_CODES, codes_len),
            (FLAG_TARGETS, rows * 4),
            (FLAG_LABELS, rows * 4),
        ] {
            if f == flag {
                return Some((off, len));
            }
            if self.flags & f != 0 {
                off += len;
            }
        }
        None
    }

    fn payload_len(&self, codes_len: usize) -> usize {
        let rows = self.rows as usize;
        let cols = self.cols as usize;
        let mut len = 0usize;
        for (f, l) in [
            (FLAG_RAW, rows * cols * 4),
            (FLAG_CODES, codes_len),
            (FLAG_TARGETS, rows * 4),
            (FLAG_LABELS, rows * 4),
        ] {
            if self.flags & f != 0 {
                len += l;
            }
        }
        len
    }
}

/// Streaming writer: rows are pushed in global order, spilled to
/// temporary raw shards every `rows_per_shard` rows, then `finalize`
/// derives global quantile cuts column by column, bins every shard
/// against them, and atomically writes the final shards + manifest.
/// Peak memory is one shard of rows plus one full raw column.
pub struct BinStoreWriter {
    dir: PathBuf,
    cols: usize,
    n_bins: usize,
    rows_per_shard: usize,
    code_width: u8,
    codec: u8,
    /// Current shard accumulation, row-major.
    cur_raw: Vec<f32>,
    cur_targets: Vec<f32>,
    cur_labels: Vec<u32>,
    /// Rows per spilled temp shard, in shard order.
    temp_rows: Vec<usize>,
}

impl BinStoreWriter {
    /// Create a writer into `dir` (created if missing) for `cols`
    /// features quantile-binned into at most `n_bins` bins, cutting a
    /// shard every `rows_per_shard` rows. Stores with more than
    /// [`MAX_BINS`] bins use u16 codes; more than [`MAX_BINS_U16`] is a
    /// structured [`MartError::BadRequest`].
    pub fn create(
        dir: &Path,
        cols: usize,
        n_bins: usize,
        rows_per_shard: usize,
    ) -> Result<BinStoreWriter, MartError> {
        assert!(cols > 0, "need at least one feature column");
        assert!(rows_per_shard > 0, "rows_per_shard must be positive");
        if !(2..=MAX_BINS_U16).contains(&n_bins) {
            return Err(MartError::BadRequest(format!(
                "n_bins {n_bins} outside supported range 2..={MAX_BINS_U16}"
            )));
        }
        fs::create_dir_all(dir)?;
        Ok(BinStoreWriter {
            dir: dir.to_path_buf(),
            cols,
            n_bins,
            rows_per_shard,
            code_width: if n_bins <= MAX_BINS { 1 } else { 2 },
            codec: CODEC_NONE,
            cur_raw: Vec::with_capacity(rows_per_shard * cols),
            cur_targets: Vec::with_capacity(rows_per_shard),
            cur_labels: Vec::with_capacity(rows_per_shard),
            temp_rows: Vec::new(),
        })
    }

    /// Compress every final CODES section with the frame-of-reference
    /// bit-packing codec ([`CODEC_FOR`]).
    pub fn with_codec(mut self) -> Self {
        self.codec = CODEC_FOR;
        self
    }

    /// Force u16 bin codes even when `n_bins` fits in a byte — the
    /// wide format must produce byte-identical training results, and
    /// tests pin that equivalence.
    pub fn with_wide_codes(mut self) -> Self {
        self.code_width = 2;
        self
    }

    fn temp_path(&self, id: usize) -> PathBuf {
        self.dir.join(format!("shard-{id:05}.tmp.bin"))
    }

    fn shard_path(dir: &Path, id: usize) -> PathBuf {
        dir.join(shard_file_name(id))
    }

    /// Append one sample (features in global row order, its regression
    /// target, and its class label). Spills a temp shard when full.
    pub fn push_row(&mut self, features: &[f32], target: f32, label: u32) -> io::Result<()> {
        assert_eq!(features.len(), self.cols, "feature width mismatch");
        self.cur_raw.extend_from_slice(features);
        self.cur_targets.push(target);
        self.cur_labels.push(label);
        if self.cur_targets.len() >= self.rows_per_shard {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> io::Result<()> {
        let rows = self.cur_targets.len();
        if rows == 0 {
            return Ok(());
        }
        // Transpose the accumulated rows to the column-major RAW layout.
        let mut col_major = vec![0.0f32; rows * self.cols];
        for r in 0..rows {
            for c in 0..self.cols {
                col_major[c * rows + r] = self.cur_raw[r * self.cols + c];
            }
        }
        let (bytes, _, _) = encode_shard(
            rows,
            self.cols,
            Some(&col_major),
            None,
            Some(&self.cur_targets),
            Some(&self.cur_labels),
            self.code_width,
            CODEC_NONE,
        );
        let id = self.temp_rows.len();
        write_atomic(&self.temp_path(id), &bytes)?;
        self.temp_rows.push(rows);
        self.cur_raw.clear();
        self.cur_targets.clear();
        self.cur_labels.clear();
        Ok(())
    }

    /// Derive global cuts, bin every shard, write the final shards and
    /// the checksummed manifest, and remove the temporaries. Consumes
    /// the writer; returns the opened (validated) store.
    pub fn finalize(mut self) -> Result<BinStore, MartError> {
        self.spill()?;
        if self.temp_rows.is_empty() {
            return Err(invalid("cannot finalize an empty store"));
        }
        let total_rows: usize = self.temp_rows.iter().sum();
        let _span = stencilmart_obs::span("binstore_finalize");

        // Pass 1: per-column global quantile cuts from the shard-order
        // concatenation of raw values (= global row order).
        let mut cuts: Vec<Vec<f32>> = Vec::with_capacity(self.cols);
        let mut col_vals: Vec<f32> = Vec::with_capacity(total_rows);
        let mut keys: Vec<u32> = Vec::with_capacity(total_rows);
        let mut key_tmp: Vec<u32> = Vec::with_capacity(total_rows);
        let mut byte_buf: Vec<u8> = Vec::new();
        for c in 0..self.cols {
            col_vals.clear();
            for (id, &rows) in self.temp_rows.iter().enumerate() {
                read_raw_column(&self.temp_path(id), rows, self.cols, c, &mut byte_buf)?;
                col_vals.extend(
                    byte_buf
                        .chunks_exact(4)
                        .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().expect("4")))),
                );
            }
            cuts.push(column_quantile_cuts(
                &mut col_vals,
                self.n_bins,
                &mut keys,
                &mut key_tmp,
            ));
        }

        // Pass 2: bin each shard against the global cuts and write the
        // final shard files.
        let mut entries: Vec<ShardEntry> = Vec::with_capacity(self.temp_rows.len());
        let mut pad: Vec<f32> = Vec::new();
        for (id, &rows) in self.temp_rows.iter().enumerate() {
            let tmp = fs::read(self.temp_path(id))?;
            let header = ShardHeader::parse(&tmp, &format!("temp shard {id}"))?;
            if header.rows as usize != rows || header.cols as usize != self.cols {
                return Err(invalid(format!(
                    "temp shard {id}: header shape {}x{} does not match writer state {rows}x{}",
                    header.rows, header.cols, self.cols
                )));
            }
            let (raw_off, raw_len) = header
                .section_range(FLAG_RAW, 0)
                .ok_or_else(|| invalid(format!("temp shard {id}: missing RAW section")))?;
            let raw: Vec<f32> = tmp[raw_off..raw_off + raw_len]
                .chunks_exact(4)
                .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().expect("4"))))
                .collect();
            // Column-major raw → row-major codes (start=c, stride=cols)
            // at the store's code width.
            let mut codes8 = Vec::new();
            let mut codes16 = Vec::new();
            if self.code_width == 1 {
                codes8.resize(rows * self.cols, 0u8);
                for c in 0..self.cols {
                    bin_column_into(
                        &raw[c * rows..(c + 1) * rows],
                        &cuts[c],
                        c,
                        self.cols,
                        &mut codes8,
                        &mut pad,
                    );
                }
            } else {
                codes16.resize(rows * self.cols, 0u16);
                for c in 0..self.cols {
                    bin_column_into_u16(
                        &raw[c * rows..(c + 1) * rows],
                        &cuts[c],
                        c,
                        self.cols,
                        &mut codes16,
                        &mut pad,
                    );
                }
            }
            let (t_off, t_len) = header
                .section_range(FLAG_TARGETS, 0)
                .ok_or_else(|| invalid(format!("temp shard {id}: missing TARGETS section")))?;
            let targets: Vec<f32> = tmp[t_off..t_off + t_len]
                .chunks_exact(4)
                .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().expect("4"))))
                .collect();
            let (l_off, l_len) = header
                .section_range(FLAG_LABELS, 0)
                .ok_or_else(|| invalid(format!("temp shard {id}: missing LABELS section")))?;
            let labels: Vec<u32> = tmp[l_off..l_off + l_len]
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes(b.try_into().expect("4")))
                .collect();
            drop(tmp);
            let codes = if self.code_width == 1 {
                CodesSection::U8(&codes8)
            } else {
                CodesSection::U16(&codes16)
            };
            let (bytes, checksum, codes_bytes) = encode_shard(
                rows,
                self.cols,
                Some(&raw),
                Some(codes),
                Some(&targets),
                Some(&labels),
                self.code_width,
                self.codec,
            );
            write_atomic(&Self::shard_path(&self.dir, id), &bytes)?;
            counters::SHARDS_WRITTEN.inc();
            entries.push(ShardEntry {
                id,
                file: shard_file_name(id),
                rows: rows as u64,
                checksum: format!("{checksum:016x}"),
                codes_bytes: if self.codec == CODEC_NONE {
                    0
                } else {
                    codes_bytes as u64
                },
            });
        }

        let payload = ManifestPayload {
            rows: total_rows as u64,
            cols: self.cols as u32,
            n_bins: self.n_bins as u32,
            code_width: u32::from(self.code_width),
            codec: u32::from(self.codec),
            cut_bits: cuts
                .iter()
                .map(|col| col.iter().map(|v| v.to_bits()).collect())
                .collect(),
            shards: entries,
        };
        let payload_json = serde_json::to_string(&payload)?;
        write_envelope_json(&self.dir.join(MANIFEST_FILE), &payload_json)?;
        for id in 0..self.temp_rows.len() {
            let _ = fs::remove_file(self.temp_path(id));
        }
        BinStore::open(&self.dir)
    }
}

impl Drop for BinStoreWriter {
    /// Backstop cleanup: unlink any spilled temp shards so an abandoned
    /// or failed write never leaves `.tmp.bin` litter in the store
    /// directory. Runs after a successful `finalize` too (the explicit
    /// removal loop has already emptied the list — removal errors are
    /// ignored) and never touches final `.bin` shards.
    fn drop(&mut self) {
        for id in 0..self.temp_rows.len() {
            let _ = fs::remove_file(self.temp_path(id));
        }
    }
}

/// File name of final shard `id`.
pub fn shard_file_name(id: usize) -> String {
    format!("shard-{id:05}.bin")
}

/// Decode a stored CODES section (`expect` logical codes at
/// `code_width`/`codec`) into u16 bin codes. Every defect is a
/// structured [`MartError`], never a panic.
fn decode_codes_bytes(
    bytes: &[u8],
    expect: usize,
    code_width: u8,
    codec: u8,
) -> Result<Vec<u16>, MartError> {
    if codec == CODEC_FOR {
        return crate::codec::decode_for_u16(bytes, expect);
    }
    match code_width {
        1 => {
            if bytes.len() != expect {
                return Err(invalid(format!(
                    "CODES section holds {} bytes, expected {expect}",
                    bytes.len()
                )));
            }
            Ok(bytes.iter().map(|&b| u16::from(b)).collect())
        }
        _ => {
            if bytes.len() != expect * 2 {
                return Err(invalid(format!(
                    "CODES section holds {} bytes, expected {} (u16 codes)",
                    bytes.len(),
                    expect * 2
                )));
            }
            Ok(bytes
                .chunks_exact(2)
                .map(|b| u16::from_le_bytes([b[0], b[1]]))
                .collect())
        }
    }
}

/// Read column `c`'s raw section of one shard file into `buf` (raw LE
/// bytes, `rows * 4` of them) with a single seek + contiguous read.
fn read_raw_column(
    path: &Path,
    rows: usize,
    cols: usize,
    c: usize,
    buf: &mut Vec<u8>,
) -> io::Result<()> {
    let mut f = fs::File::open(path)?;
    let mut header = [0u8; HEADER_LEN];
    f.read_exact(&mut header)?;
    let h = ShardHeader::parse(&header, "shard")
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let (raw_off, _) = h
        .section_range(FLAG_RAW, 0)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "shard has no RAW section"))?;
    debug_assert_eq!(h.rows as usize, rows);
    debug_assert_eq!(h.cols as usize, cols);
    f.seek(SeekFrom::Start((raw_off + c * rows * 4) as u64))?;
    buf.clear();
    buf.resize(rows * 4, 0);
    f.read_exact(buf)?;
    Ok(())
}

/// A validated on-disk binned dataset, ready to hand shards to the
/// streaming GBDT and NN trainers.
#[derive(Debug, Clone)]
pub struct BinStore {
    dir: PathBuf,
    rows: usize,
    cols: usize,
    n_bins: usize,
    code_width: u8,
    codec: u8,
    cuts: Vec<Vec<f32>>,
    shards: Vec<ShardEntry>,
}

impl BinStore {
    /// Open a store strictly: the manifest envelope (version, payload
    /// checksum) and *every* shard file (header, shape, checksum) are
    /// verified before any training starts. Any defect is a structured
    /// [`MartError`], never a panic.
    pub fn open(dir: &Path) -> Result<BinStore, MartError> {
        let store = Self::open_manifest(dir)?;
        for entry in &store.shards {
            store.verify_shard(entry)?;
        }
        Ok(store)
    }

    /// Open a store but tolerate corrupt shards: the manifest must be
    /// intact, but shards that fail validation are dropped from the
    /// store and returned alongside their errors, so training can
    /// proceed on the survivors (row indices stay per-shard
    /// contiguous). Errors if *no* shard survives.
    pub fn open_surviving(dir: &Path) -> Result<(BinStore, Vec<(usize, MartError)>), MartError> {
        let mut store = Self::open_manifest(dir)?;
        let mut dropped = Vec::new();
        let mut survivors = Vec::new();
        for entry in store.shards.drain(..) {
            let mut probe = BinStore {
                dir: store.dir.clone(),
                rows: entry.rows as usize,
                cols: store.cols,
                n_bins: store.n_bins,
                code_width: store.code_width,
                codec: store.codec,
                cuts: Vec::new(),
                shards: Vec::new(),
            };
            probe.cuts = store.cuts.clone();
            match probe.verify_shard(&entry) {
                Ok(()) => survivors.push(entry),
                Err(e) => dropped.push((entry.id, e)),
            }
        }
        store.shards = survivors;
        store.rows = store.shards.iter().map(|s| s.rows as usize).sum();
        if store.shards.is_empty() {
            return Err(invalid("no shard survived validation"));
        }
        Ok((store, dropped))
    }

    fn open_manifest(dir: &Path) -> Result<BinStore, MartError> {
        let (payload_json, _) = read_envelope_json(&dir.join(MANIFEST_FILE))?;
        let payload: ManifestPayload = serde_json::from_str(&payload_json)?;
        let cols = payload.cols as usize;
        if cols == 0 {
            return Err(invalid("manifest: zero columns"));
        }
        if !matches!(payload.code_width, 1 | 2) {
            return Err(invalid(format!(
                "manifest: bin-code width {} is not supported (1 or 2 bytes)",
                payload.code_width
            )));
        }
        if !matches!(payload.codec as u8, CODEC_NONE | CODEC_FOR) || payload.codec > 255 {
            return Err(invalid(format!(
                "manifest: unknown CODES codec id {}",
                payload.codec
            )));
        }
        if payload.code_width == 1 && payload.n_bins as usize > MAX_BINS {
            return Err(invalid(format!(
                "manifest: {} bins cannot be addressed by u8 codes",
                payload.n_bins
            )));
        }
        if payload.n_bins as usize > MAX_BINS_U16 {
            return Err(invalid(format!(
                "manifest: {} bins exceeds the u16 code space",
                payload.n_bins
            )));
        }
        if payload.cut_bits.len() != cols {
            return Err(invalid(format!(
                "manifest: {} cut vectors for {cols} columns",
                payload.cut_bits.len()
            )));
        }
        let cuts: Vec<Vec<f32>> = payload
            .cut_bits
            .iter()
            .map(|col| col.iter().map(|&b| f32::from_bits(b)).collect())
            .collect();
        for (c, col) in cuts.iter().enumerate() {
            if col.len() + 1 > payload.n_bins.max(2) as usize {
                return Err(invalid(format!(
                    "manifest: column {c} has {} cuts for n_bins {}",
                    col.len(),
                    payload.n_bins
                )));
            }
            // `partial_cmp != Less` also rejects NaN cuts, which a
            // plain `>=` comparison would let through.
            if col
                .windows(2)
                .any(|w| w[0].partial_cmp(&w[1]) != Some(std::cmp::Ordering::Less))
            {
                return Err(invalid(format!(
                    "manifest: column {c} cuts are not strictly increasing"
                )));
            }
        }
        for (i, s) in payload.shards.iter().enumerate() {
            if s.id != i {
                return Err(invalid(format!(
                    "manifest: shard ids not contiguous ({} at position {i})",
                    s.id
                )));
            }
        }
        let rows: u64 = payload.shards.iter().map(|s| s.rows).sum();
        if rows != payload.rows {
            return Err(invalid(format!(
                "manifest: shard rows sum to {rows}, header says {}",
                payload.rows
            )));
        }
        if payload.shards.is_empty() {
            return Err(invalid("manifest: no shards"));
        }
        Ok(BinStore {
            dir: dir.to_path_buf(),
            rows: rows as usize,
            cols,
            n_bins: payload.n_bins as usize,
            code_width: payload.code_width as u8,
            codec: payload.codec as u8,
            cuts,
            shards: payload.shards,
        })
    }

    /// Verify one shard file against the manifest: readable, parseable
    /// header, matching shape and sections, and a payload that hashes
    /// to both the header's and the manifest's checksum.
    fn verify_shard(&self, entry: &ShardEntry) -> Result<(), MartError> {
        let path = self.dir.join(&entry.file);
        let what = format!("shard {}", entry.id);
        let mut f = fs::File::open(&path)?;
        let mut header = [0u8; HEADER_LEN];
        f.read_exact(&mut header)
            .map_err(|e| invalid(format!("{what}: header unreadable: {e}")))?;
        let h = ShardHeader::parse(&header, &what)?;
        if h.rows != entry.rows {
            return Err(invalid(format!(
                "{what}: header says {} rows, manifest says {}",
                h.rows, entry.rows
            )));
        }
        if h.cols as usize != self.cols {
            return Err(invalid(format!(
                "{what}: header says {} columns, manifest says {}",
                h.cols, self.cols
            )));
        }
        if h.code_width != self.code_width {
            return Err(invalid(format!(
                "{what}: header says {}-byte codes, manifest says {}",
                h.code_width, self.code_width
            )));
        }
        if h.codec != self.codec {
            return Err(invalid(format!(
                "{what}: header says codec {}, manifest says {}",
                h.codec, self.codec
            )));
        }
        for (flag, name) in [
            (FLAG_RAW, "RAW"),
            (FLAG_CODES, "CODES"),
            (FLAG_TARGETS, "TARGETS"),
            (FLAG_LABELS, "LABELS"),
        ] {
            if h.flags & flag == 0 {
                return Err(invalid(format!("{what}: missing {name} section")));
            }
        }
        // Stream the payload through the checksum in bounded chunks.
        let codes_len = self.entry_codes_len(entry);
        let expect_len = h.payload_len(codes_len);
        let mut hasher = Fnv1a::new();
        let mut remaining = expect_len;
        let mut buf = vec![0u8; (1 << 20).min(expect_len.max(1))];
        while remaining > 0 {
            let n = buf.len().min(remaining);
            f.read_exact(&mut buf[..n])
                .map_err(|e| invalid(format!("{what}: truncated payload: {e}")))?;
            hasher.update(&buf[..n]);
            remaining -= n;
        }
        if f.read(&mut [0u8; 1])? != 0 {
            return Err(invalid(format!("{what}: trailing bytes after payload")));
        }
        let computed = hasher.finish();
        if computed != h.checksum {
            return Err(MartError::ChecksumMismatch {
                stored: format!("{:016x}", h.checksum),
                computed: format!("{computed:016x}"),
            });
        }
        let hex = format!("{computed:016x}");
        if hex != entry.checksum {
            return Err(MartError::ChecksumMismatch {
                stored: entry.checksum.clone(),
                computed: hex,
            });
        }
        // Compressed CODES must actually decode — a checksum only
        // proves the bytes are the ones written, not that the frame is
        // well formed. Catch malformed frames at open, not mid-train.
        if self.codec != CODEC_NONE {
            let (off, len) = h
                .section_range(FLAG_CODES, codes_len)
                .ok_or_else(|| invalid(format!("{what}: missing CODES section")))?;
            f.seek(SeekFrom::Start(off as u64))?;
            let mut codes = vec![0u8; len];
            f.read_exact(&mut codes)
                .map_err(|e| invalid(format!("{what}: truncated CODES section: {e}")))?;
            crate::codec::decode_for_u16(&codes, h.rows as usize * self.cols)?;
        }
        Ok(())
    }

    /// Total rows across the store's (surviving) shards.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Feature columns per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Maximum quantile bins per column the store was built with.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Number of (surviving) shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-column quantile cut vectors.
    pub fn cuts(&self) -> &[Vec<f32>] {
        &self.cuts
    }

    /// The manifest's (surviving) shard entries.
    pub fn shard_entries(&self) -> &[ShardEntry] {
        &self.shards
    }

    /// Bin-code width in bytes (1 = u8, 2 = u16).
    pub fn code_width(&self) -> u8 {
        self.code_width
    }

    /// CODES codec id ([`CODEC_NONE`] or [`CODEC_FOR`]).
    pub fn codec(&self) -> u8 {
        self.codec
    }

    /// Encoded byte length of `entry`'s CODES section.
    fn entry_codes_len(&self, entry: &ShardEntry) -> usize {
        if self.codec == CODEC_NONE {
            entry.rows as usize * self.cols * self.code_width as usize
        } else {
            entry.codes_bytes as usize
        }
    }

    fn read_section(&self, shard: usize, flag: u8, name: &str) -> io::Result<Vec<u8>> {
        let entry = &self.shards[shard];
        let codes_len = self.entry_codes_len(entry);
        let mut f = fs::File::open(self.dir.join(&entry.file))?;
        let mut header = [0u8; HEADER_LEN];
        f.read_exact(&mut header)?;
        let h = ShardHeader::parse(&header, "shard")
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let (off, len) = h.section_range(flag, codes_len).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("missing {name} section"),
            )
        })?;
        f.seek(SeekFrom::Start(off as u64))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Load one shard's CODES section bytes verbatim — still encoded
    /// (LE u16 words for wide stores, a codec frame for compressed
    /// stores). The shard cache holds exactly these bytes; decode
    /// happens on cache miss via the store's [`ShardedBins`] decoder.
    pub fn load_codes(&self, shard: usize) -> io::Result<Vec<u8>> {
        self.read_section(shard, FLAG_CODES, "CODES")
    }

    /// Decode one shard's CODES section into logical bin codes,
    /// undoing the store's codec and width.
    pub fn decode_codes(&self, shard: usize) -> Result<Vec<u16>, MartError> {
        let bytes = self.load_codes(shard)?;
        let expect = self.shards[shard].rows as usize * self.cols;
        decode_codes_bytes(&bytes, expect, self.code_width, self.codec)
    }

    /// Load one shard as a row-major NN training chunk (raw features
    /// transposed from the columnar section, plus targets and labels).
    pub fn load_chunk(&self, shard: usize) -> io::Result<Chunk> {
        let rows = self.shards[shard].rows as usize;
        let cols = self.cols;
        let raw = self.read_section(shard, FLAG_RAW, "RAW")?;
        let mut data = vec![0.0f32; rows * cols];
        for c in 0..cols {
            for r in 0..rows {
                let b = &raw[(c * rows + r) * 4..(c * rows + r) * 4 + 4];
                data[r * cols + c] = f32::from_bits(u32::from_le_bytes(b.try_into().expect("4")));
            }
        }
        let targets = self
            .read_section(shard, FLAG_TARGETS, "TARGETS")?
            .chunks_exact(4)
            .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().expect("4"))))
            .collect();
        let labels = self
            .read_section(shard, FLAG_LABELS, "LABELS")?
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4")))
            .collect();
        Ok(Chunk {
            rows,
            cols,
            data,
            labels,
            targets,
        })
    }

    /// Load one shard's regression targets.
    pub fn load_targets(&self, shard: usize) -> io::Result<Vec<f32>> {
        Ok(self
            .read_section(shard, FLAG_TARGETS, "TARGETS")?
            .chunks_exact(4)
            .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().expect("4"))))
            .collect())
    }

    /// Load one shard's class labels.
    pub fn load_labels(&self, shard: usize) -> io::Result<Vec<u32>> {
        Ok(self
            .read_section(shard, FLAG_LABELS, "LABELS")?
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4")))
            .collect())
    }

    /// All targets in global row order (one shard resident at a time).
    pub fn all_targets(&self) -> io::Result<Vec<f32>> {
        let mut out = Vec::with_capacity(self.rows);
        for s in 0..self.shards.len() {
            out.extend(self.load_targets(s)?);
        }
        Ok(out)
    }

    /// All labels in global row order (one shard resident at a time).
    pub fn all_labels(&self) -> io::Result<Vec<u32>> {
        let mut out = Vec::with_capacity(self.rows);
        for s in 0..self.shards.len() {
            out.extend(self.load_labels(s)?);
        }
        Ok(out)
    }

    /// A [`ShardedBins`] view for streamed GBDT training, keeping at
    /// most `cache_shards` shards of *stored* (still encoded) CODES
    /// bytes resident — compressed stores stay compressed in cache and
    /// decode on miss, so the cache budget buys more shards.
    pub fn sharded_bins(&self, cache_shards: usize) -> ShardedBins {
        let shard_rows: Vec<usize> = self.shards.iter().map(|s| s.rows as usize).collect();
        let loader_store = self.clone();
        let sb = ShardedBins::new(
            &shard_rows,
            self.cols,
            self.cuts.clone(),
            cache_shards,
            Box::new(move |s| loader_store.load_codes(s).map(Arc::new)),
        );
        if self.codec == CODEC_NONE && self.code_width == 1 {
            return sb; // cached bytes are the codes; no decode step
        }
        let cols = self.cols;
        let code_width = self.code_width;
        let codec = self.codec;
        sb.with_decoder(Box::new(move |s, bytes| {
            decode_codes_bytes(bytes, shard_rows[s] * cols, code_width, codec)
                .map(ShardCodes::U16)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        }))
    }
}

impl ChunkSource for BinStore {
    fn n_chunks(&self) -> usize {
        self.shards.len()
    }

    fn load(&self, i: usize) -> io::Result<Chunk> {
        self.load_chunk(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilmart_ml::data::FeatureMatrix;
    use stencilmart_ml::gbdt::binned::BinnedMatrix;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stencilmart_binstore_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn demo_rows(n: usize, cols: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|r| {
                (0..cols)
                    .map(|c| ((r * cols + c) as f32 * 0.37).sin() * 10.0)
                    .collect()
            })
            .collect()
    }

    fn write_store(dir: &Path, rows: &[Vec<f32>], n_bins: usize, per_shard: usize) -> BinStore {
        let cols = rows[0].len();
        let mut w = BinStoreWriter::create(dir, cols, n_bins, per_shard).unwrap();
        for (i, r) in rows.iter().enumerate() {
            w.push_row(r, i as f32 * 0.5, (i % 3) as u32).unwrap();
        }
        w.finalize().unwrap()
    }

    #[test]
    fn roundtrip_matches_in_ram_binning_bitwise() {
        let dir = tmp_dir("roundtrip");
        let rows = demo_rows(23, 4);
        let store = write_store(&dir, &rows, 8, 7);
        assert_eq!(store.rows(), 23);
        assert_eq!(store.cols(), 4);
        assert_eq!(store.shard_count(), 4); // 7+7+7+2

        // Cuts and codes must be bit-identical to the in-RAM binning.
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        let x = FeatureMatrix::new(23, 4, flat);
        let bm = BinnedMatrix::new(&x, 8);
        for c in 0..4 {
            let expect: Vec<u32> = (0..bm.n_bins(c) - 1)
                .map(|b| bm.cut_value(c, b).to_bits())
                .collect();
            let got: Vec<u32> = store.cuts()[c].iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, expect, "column {c} cuts");
        }
        let mut row = 0usize;
        for s in 0..store.shard_count() {
            let codes = store.load_codes(s).unwrap();
            let shard_rows = store.shard_entries()[s].rows as usize;
            for r in 0..shard_rows {
                for c in 0..4 {
                    assert_eq!(
                        codes[r * 4 + c] as usize,
                        bm.bin(row + r, c),
                        "shard {s} row {r} col {c}"
                    );
                }
            }
            row += shard_rows;
        }

        // Targets/labels survive in order; the chunk view agrees with
        // the pushed raw rows.
        let targets = store.all_targets().unwrap();
        assert_eq!(targets.len(), 23);
        assert_eq!(targets[10], 5.0);
        let labels = store.all_labels().unwrap();
        assert_eq!(labels[10], 1);
        let chunk = store.load_chunk(1).unwrap();
        assert_eq!(chunk.rows, 7);
        assert_eq!(chunk.data[0..4], rows[7][..]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_bit_flip_with_structured_error() {
        let dir = tmp_dir("bitflip");
        let store = write_store(&dir, &demo_rows(20, 3), 8, 6);
        let victim = dir.join(&store.shard_entries()[1].file);
        let mut bytes = fs::read(&victim).unwrap();
        let k = bytes.len() - 5;
        bytes[k] ^= 0x40;
        fs::write(&victim, &bytes).unwrap();
        let err = BinStore::open(&dir).expect_err("corrupt shard must fail strict open");
        assert_eq!(err.kind(), "checksum_mismatch");
        // Surviving open drops exactly the corrupt shard.
        let (survivor, dropped) = BinStore::open_surviving(&dir).unwrap();
        assert_eq!(survivor.shard_count(), store.shard_count() - 1);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].0, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_truncation_and_bad_magic() {
        let dir = tmp_dir("trunc");
        let store = write_store(&dir, &demo_rows(18, 2), 8, 9);
        let victim = dir.join(&store.shard_entries()[0].file);
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() - 7]).unwrap();
        let err = BinStore::open(&dir).expect_err("truncated shard must fail");
        assert_eq!(err.kind(), "invalid_shard");
        assert!(err.to_string().contains("truncated"), "{err}");

        fs::write(&victim, b"NOPE").unwrap();
        let err = BinStore::open(&dir).expect_err("bad magic must fail");
        assert_eq!(err.kind(), "invalid_shard");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_tamper_is_detected() {
        let dir = tmp_dir("manifest");
        let _ = write_store(&dir, &demo_rows(12, 2), 8, 4);
        let path = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replace("\\\"rows\\\":12", "\\\"rows\\\":13");
        assert_ne!(tampered, text, "tamper pattern must hit the payload");
        fs::write(&path, tampered).unwrap();
        let err = BinStore::open(&dir).expect_err("tampered manifest must fail");
        assert_eq!(err.kind(), "checksum_mismatch");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_io_error() {
        let dir = tmp_dir("missing");
        fs::create_dir_all(&dir).unwrap();
        let err = BinStore::open(&dir).expect_err("no manifest");
        assert_eq!(err.kind(), "io");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_temp_files_survive_finalize() {
        let dir = tmp_dir("cleanup");
        let _ = write_store(&dir, &demo_rows(10, 2), 4, 3);
        let leftovers: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_rejects_oversized_bin_request() {
        let dir = tmp_dir("badbins");
        let err = BinStoreWriter::create(&dir, 3, MAX_BINS_U16 + 1, 8)
            .err()
            .expect("65537 bins must be rejected");
        assert_eq!(err.kind(), "bad_request");
        let _ = fs::remove_dir_all(&dir);
    }

    /// The u16-code and compressed layouts must decode to exactly the
    /// codes the plain u8 store holds, and train to byte-identical
    /// models — the on-disk representation is invisible to training.
    #[test]
    fn wide_and_compressed_stores_decode_and_train_identically() {
        use stencilmart_ml::gbdt::{GbdtConfig, GbdtRegressor};
        let rows = demo_rows(40, 3);
        let mk = |tag: &str, f: &dyn Fn(BinStoreWriter) -> BinStoreWriter| {
            let dir = tmp_dir(tag);
            let mut w = f(BinStoreWriter::create(&dir, 3, 8, 9).unwrap());
            for (i, r) in rows.iter().enumerate() {
                w.push_row(r, i as f32 * 0.5, (i % 3) as u32).unwrap();
            }
            (dir, w.finalize().unwrap())
        };
        let (d0, plain) = mk("plain", &|w| w);
        let (d1, wide) = mk("wide", &|w| w.with_wide_codes());
        let (d2, packed) = mk("packed", &|w| w.with_codec());
        let (d3, wide_packed) = mk("widepacked", &|w| w.with_wide_codes().with_codec());
        assert_eq!(plain.code_width(), 1);
        assert_eq!(wide.code_width(), 2);
        assert_eq!(packed.codec(), CODEC_FOR);
        for s in 0..plain.shard_count() {
            let expect = plain.decode_codes(s).unwrap();
            assert_eq!(
                expect,
                plain
                    .load_codes(s)
                    .unwrap()
                    .iter()
                    .map(|&b| u16::from(b))
                    .collect::<Vec<u16>>()
            );
            for (store, what) in [(&wide, "wide"), (&packed, "packed"), (&wide_packed, "both")] {
                assert_eq!(store.decode_codes(s).unwrap(), expect, "{what} shard {s}");
            }
        }
        let cfg = GbdtConfig {
            rounds: 5,
            bins: 8,
            subsample: 0.8,
            ..GbdtConfig::default()
        };
        let y = plain.all_targets().unwrap();
        let reference = serde_json::to_string(&GbdtRegressor::fit_streamed(
            &plain.sharded_bins(2),
            &y,
            &cfg,
        ))
        .unwrap();
        for (store, what) in [(&wide, "wide"), (&packed, "packed"), (&wide_packed, "both")] {
            let model = GbdtRegressor::fit_streamed(&store.sharded_bins(2), &y, &cfg);
            assert_eq!(
                serde_json::to_string(&model).unwrap(),
                reference,
                "{what} store must train byte-identically"
            );
        }
        for d in [d0, d1, d2, d3] {
            let _ = fs::remove_dir_all(&d);
        }
    }

    #[test]
    fn compressed_store_saves_bytes_and_reports_it() {
        let dir = tmp_dir("savings");
        stencilmart_obs::set_enabled(true);
        let before = counters::CODEC_BYTES_SAVED.get();
        let store = {
            let mut w = BinStoreWriter::create(&dir, 4, 8, 16).unwrap().with_codec();
            for (i, r) in demo_rows(64, 4).iter().enumerate() {
                w.push_row(r, i as f32, 0).unwrap();
            }
            w.finalize().unwrap()
        };
        let saved = counters::CODEC_BYTES_SAVED.get() - before;
        assert!(saved > 0, "8-bin codes must bit-pack below 1 byte/code");
        let plain_bytes: usize = store
            .shard_entries()
            .iter()
            .map(|e| e.rows as usize * store.cols())
            .sum();
        let enc_bytes: usize = store
            .shard_entries()
            .iter()
            .map(|e| e.codes_bytes as usize)
            .sum();
        assert!(enc_bytes < plain_bytes, "{enc_bytes} vs {plain_bytes}");
        // `>=` not `==`: the counter is global and other tests may
        // encode compressed shards concurrently.
        assert!(saved >= (plain_bytes - enc_bytes) as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A compressed shard whose checksum is intact but whose codec
    /// frame is malformed must fail open with a decode error — the
    /// checksum only proves the bytes are as written.
    #[test]
    fn malformed_codec_frame_with_valid_checksum_is_rejected_at_open() {
        let dir = tmp_dir("badframe");
        let rows = demo_rows(12, 2);
        let store = {
            let mut w = BinStoreWriter::create(&dir, 2, 8, 12).unwrap().with_codec();
            for (i, r) in rows.iter().enumerate() {
                w.push_row(r, i as f32, 0).unwrap();
            }
            w.finalize().unwrap()
        };
        // Rebuild shard 0 with a garbage CODES frame (claims more bits
        // per value than the payload holds), re-checksummed so only the
        // decode check can catch it.
        let entry = store.shard_entries()[0].clone();
        let n = entry.rows as usize * 2;
        let raw = store.read_section(0, FLAG_RAW, "RAW").unwrap();
        let raw: Vec<f32> = raw
            .chunks_exact(4)
            .map(|b| f32::from_bits(u32::from_le_bytes(b.try_into().unwrap())))
            .collect();
        let targets = store.load_targets(0).unwrap();
        let labels = store.load_labels(0).unwrap();
        let mut bad_frame = [0u8; 9];
        bad_frame[..4].copy_from_slice(&(n as u32).to_le_bytes());
        bad_frame[8] = 16; // 16 bits/value, but zero payload bytes follow
        let (mut bytes, checksum, _) = encode_shard(
            entry.rows as usize,
            2,
            Some(&raw),
            None,
            Some(&targets),
            Some(&labels),
            1,
            CODEC_FOR,
        );
        // Splice the bad CODES frame in after RAW and re-checksum.
        let codes_off = HEADER_LEN + raw.len() * 4;
        bytes.splice(codes_off..codes_off, bad_frame.iter().copied());
        bytes[20] |= FLAG_CODES;
        let mut h = Fnv1a::new();
        h.update(&bytes[HEADER_LEN..]);
        let fixed = h.finish();
        bytes[24..32].copy_from_slice(&fixed.to_le_bytes());
        let _ = checksum;
        fs::write(dir.join(&entry.file), &bytes).unwrap();
        // Patch the manifest so checksums and codes_bytes agree with
        // the tampered shard, leaving decode as the only tripwire.
        let (payload_json, _) = read_envelope_json(&dir.join(MANIFEST_FILE)).unwrap();
        let mut payload: ManifestPayload = serde_json::from_str(&payload_json).unwrap();
        payload.shards[0].checksum = format!("{fixed:016x}");
        payload.shards[0].codes_bytes = bad_frame.len() as u64;
        write_envelope_json(
            &dir.join(MANIFEST_FILE),
            &serde_json::to_string(&payload).unwrap(),
        )
        .unwrap();
        let err = BinStore::open(&dir).expect_err("malformed frame must fail open");
        assert_eq!(err.kind(), "decode", "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Failure injection: if finalize errors partway (a temp shard went
    /// unreadable), the writer's drop guard must still remove every
    /// spilled temp file.
    #[test]
    fn failed_finalize_leaves_no_temp_files() {
        let dir = tmp_dir("failtmp");
        let mut w = BinStoreWriter::create(&dir, 2, 8, 4).unwrap();
        for (i, r) in demo_rows(10, 2).iter().enumerate() {
            w.push_row(r, i as f32, 0).unwrap();
        }
        // Two temps have spilled; corrupt the first so finalize fails.
        let victim = dir.join("shard-00000.tmp.bin");
        assert!(victim.exists(), "expected a spilled temp shard");
        fs::write(&victim, b"SMBS garbage").unwrap();
        let err = w.finalize().expect_err("corrupt temp must fail finalize");
        assert_ne!(err.kind(), "", "structured error expected");
        let leftovers: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_gbdt_over_store_matches_resident_fit() {
        use stencilmart_ml::gbdt::{GbdtConfig, GbdtRegressor};
        let dir = tmp_dir("gbdt");
        let n = 64;
        let rows = demo_rows(n, 3);
        let store = write_store(&dir, &rows, 16, 13);
        let flat: Vec<f32> = rows.iter().flatten().copied().collect();
        let x = FeatureMatrix::new(n, 3, flat);
        let y: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        let cfg = GbdtConfig {
            rounds: 6,
            bins: 16,
            subsample: 0.8,
            ..GbdtConfig::default()
        };
        let resident = GbdtRegressor::fit(&x, &y, &cfg);
        let sb = store.sharded_bins(2);
        let streamed = GbdtRegressor::fit_streamed(&sb, &store.all_targets().unwrap(), &cfg);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&resident).unwrap(),
            "disk-backed streamed fit must be byte-equal to resident"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

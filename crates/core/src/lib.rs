#![warn(missing_docs)]

//! # StencilMART
//!
//! A Rust reproduction of *"StencilMART: Predicting Optimization Selection
//! for Stencil Computations across GPUs"* (Sun et al., IPDPS 2022).
//!
//! StencilMART predicts, for a stencil access pattern:
//!
//! 1. the best **optimization combination** (streaming, merging, retiming,
//!    prefetching, temporal blocking) on a target GPU — a classification
//!    task over PCC-merged OC classes, and
//! 2. the **execution time** of a configured kernel on a GPU the user may
//!    not own — a cross-architecture regression task over stencil,
//!    parameter, and hardware features.
//!
//! The real paper measures kernels on four NVIDIA GPUs; this reproduction
//! substitutes the analytical simulator in [`stencilmart_gpusim`] (see
//! DESIGN.md for the substitution argument) and re-implements the ML stack
//! in [`stencilmart_ml`].
//!
//! ## Quick start
//!
//! ```
//! use stencilmart::api::StencilMart;
//! use stencilmart::config::PipelineConfig;
//! use stencilmart::models::{ClassifierKind, RegressorKind};
//! use stencilmart_gpusim::GpuId;
//! use stencilmart_stencil::{pattern::Dim, shapes};
//!
//! let cfg = PipelineConfig {
//!     stencils_per_dim: 12,
//!     samples_per_oc: 2,
//!     max_regression_rows: 500,
//!     gpus: vec![GpuId::V100],
//!     ..PipelineConfig::default()
//! };
//! let mut mart = StencilMart::train(
//!     cfg,
//!     Dim::D2,
//!     ClassifierKind::Gbdt,
//!     RegressorKind::GbRegressor,
//! );
//! let oc = mart.predict_best_oc(&shapes::star(Dim::D2, 2), GpuId::V100);
//! assert!(oc.is_valid());
//! ```

pub mod ablations;
pub mod advisor;
pub mod api;
pub mod baselines;
pub mod binstore;
pub mod bundle;
pub mod classify;
pub mod codec;
pub mod config;
pub mod dataset;
pub mod error;
pub mod experiments;
pub mod models;
pub mod pcc;
pub mod persist;
pub mod ranking;
pub mod regress;
pub mod serve;
pub mod shard;
pub mod wire;

pub use api::{Predictor, StencilMart};
pub use bundle::ModelBundle;
pub use config::PipelineConfig;
pub use dataset::{ClassificationDataset, ProfiledCorpus, RegressionDataset};
pub use error::MartError;
pub use models::{ClassifierKind, MlpShape, RegressorKind};
pub use pcc::OcMerging;

//! Ranking-quality evaluation: beyond pointwise MAPE, how well does the
//! regressor order the OCs of a stencil? The paper's related work
//! (Cosenza et al., IPDPS 2017) evaluates stencil performance models by
//! the Kendall coefficient of the predicted ranking; this module provides
//! the same lens on StencilMART's regressors.

use crate::dataset::{ProfiledCorpus, RegressionDataset};
use crate::models::{MlpShape, RegressorKind, TrainedRegressor};
use serde::{Deserialize, Serialize};
use stencilmart_gpusim::GpuId;
use stencilmart_ml::metrics::kendall_tau;

/// Ranking quality of one regressor on held-out stencils.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankingEval {
    /// Mechanism evaluated.
    pub kind: RegressorKind,
    /// Mean Kendall tau between predicted and true instance orderings,
    /// per stencil (1 = perfect ranking).
    pub mean_tau: f64,
    /// Fraction of held-out stencils whose true fastest instance is
    /// ranked first by the model (top-1 hit rate).
    pub top1_rate: f64,
    /// Number of held-out stencils evaluated.
    pub stencils: usize,
}

/// Evaluate ranking quality: hold out 20% of stencils, train on the rest,
/// and rank each held-out stencil's measured instances on one GPU by
/// predicted time.
pub fn evaluate_ranking(
    corpus: &ProfiledCorpus,
    ds: &RegressionDataset,
    kind: RegressorKind,
    gpu: GpuId,
    seed: u64,
) -> RankingEval {
    let n_stencils = corpus.patterns.len();
    let test_stencils: Vec<bool> = (0..n_stencils)
        .map(|i| (i + seed as usize).is_multiple_of(5))
        .collect();
    let train_idx: Vec<usize> = (0..ds.len())
        .filter(|&r| !test_stencils[ds.keys[r].stencil])
        .collect();
    let mut model = TrainedRegressor::train(
        kind,
        ds.dim,
        MlpShape::default(),
        &ds.features,
        &ds.tensors,
        &ds.target_ln_ms,
        &train_idx,
        seed,
    );
    // Group held-out rows (on the chosen GPU) by stencil.
    let mut by_stencil: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (r, key) in ds.keys.iter().enumerate() {
        if test_stencils[key.stencil] && key.gpu == gpu {
            by_stencil.entry(key.stencil).or_default().push(r);
        }
    }
    let mut taus = Vec::new();
    let mut top1 = 0usize;
    let mut evaluated = 0usize;
    for rows in by_stencil.values() {
        if rows.len() < 4 {
            continue; // too few instances to rank meaningfully
        }
        let preds = model.predict_ln(&ds.features, &ds.tensors, rows);
        let truth: Vec<f64> = rows.iter().map(|&r| ds.target_ln_ms[r] as f64).collect();
        let pred64: Vec<f64> = preds.iter().map(|&p| p as f64).collect();
        taus.push(kendall_tau(&pred64, &truth));
        let true_best = argmin(&truth);
        let pred_best = argmin(&pred64);
        if true_best == pred_best {
            top1 += 1;
        }
        evaluated += 1;
    }
    RankingEval {
        kind,
        mean_tau: taus.iter().sum::<f64>() / taus.len().max(1) as f64,
        top1_rate: top1 as f64 / evaluated.max(1) as f64,
        stencils: evaluated,
    }
}

fn argmin(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use stencilmart_stencil::pattern::Dim;

    #[test]
    fn ranking_beats_random() {
        let cfg = PipelineConfig {
            stencils_per_dim: 25,
            samples_per_oc: 3,
            max_regression_rows: 4000,
            gpus: vec![GpuId::V100, GpuId::P100],
            ..PipelineConfig::default()
        };
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        let ds = RegressionDataset::build(&corpus, &cfg);
        let eval = evaluate_ranking(&corpus, &ds, RegressorKind::GbRegressor, GpuId::V100, 0);
        assert!(eval.stencils > 0);
        // A random ranking has expected tau 0; the model must order the
        // huge naive-vs-streamed gaps correctly.
        assert!(eval.mean_tau > 0.3, "tau {}", eval.mean_tau);
        assert!(eval.top1_rate >= 0.0 && eval.top1_rate <= 1.0);
    }

    #[test]
    fn argmin_finds_minimum() {
        assert_eq!(argmin(&[3.0, 1.0, 2.0]), 1);
        assert_eq!(argmin(&[5.0]), 0);
    }
}

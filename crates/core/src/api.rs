//! The user-facing StencilMART API: train once, then ask for the best
//! optimization combination for a new stencil, or predict its execution
//! time on a GPU you do not own.

use crate::config::PipelineConfig;
use crate::dataset::{ClassificationDataset, ProfiledCorpus, RegressionDataset};
use crate::models::{ClassifierKind, MlpShape, RegressorKind, TrainedClassifier, TrainedRegressor};
use crate::pcc::OcMerging;
use stencilmart_gpusim::{GpuArch, GpuId, OptCombo, ParamSetting};
use stencilmart_ml::data::FeatureMatrix;
use stencilmart_stencil::features::{extract, FeatureConfig};
use stencilmart_stencil::pattern::{Dim, StencilPattern};
use stencilmart_stencil::tensor::BinaryTensor;

/// A trained StencilMART instance for one stencil dimensionality.
///
/// Construction runs the full pipeline: generate a random training
/// corpus, profile it on the simulated GPUs, merge OCs by Pearson
/// correlation, and train one classifier per GPU plus one
/// cross-architecture regressor.
pub struct StencilMart {
    cfg: PipelineConfig,
    dim: Dim,
    merging: OcMerging,
    classifiers: Vec<(GpuId, TrainedClassifier)>,
    regressor: TrainedRegressor,
    regression_cols: usize,
}

impl StencilMart {
    /// Train the framework for one dimensionality with the chosen
    /// mechanisms.
    pub fn train(
        cfg: PipelineConfig,
        dim: Dim,
        classifier: ClassifierKind,
        regressor: RegressorKind,
    ) -> StencilMart {
        let corpus = ProfiledCorpus::build(&cfg, dim);
        let merging = corpus.derive_merging(cfg.oc_classes);
        let mut classifiers = Vec::new();
        for &gpu in &cfg.gpus {
            let ds = ClassificationDataset::build(&corpus, &merging, gpu);
            let all: Vec<usize> = (0..ds.len()).collect();
            let model = TrainedClassifier::train(
                classifier,
                dim,
                ds.classes,
                &ds.features,
                &ds.tensors,
                &ds.labels,
                &all,
                cfg.seed,
            );
            classifiers.push((gpu, model));
        }
        let rds = RegressionDataset::build(&corpus, &cfg);
        let all: Vec<usize> = (0..rds.len()).collect();
        let regressor = TrainedRegressor::train(
            regressor,
            dim,
            MlpShape::default(),
            &rds.features,
            &rds.tensors,
            &rds.target_ln_ms,
            &all,
            cfg.seed,
        );
        StencilMart {
            cfg,
            dim,
            merging,
            classifiers,
            regressor,
            regression_cols: rds.features.cols(),
        }
    }

    /// Dimensionality this instance was trained for.
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// The OC merging derived during training.
    pub fn merging(&self) -> &OcMerging {
        &self.merging
    }

    /// Predict the best optimization combination for a stencil on a GPU.
    ///
    /// # Panics
    /// Panics if the stencil's dimensionality differs from the trained
    /// one or the GPU was not part of training.
    pub fn predict_best_oc(&mut self, pattern: &StencilPattern, gpu: GpuId) -> OptCombo {
        assert_eq!(pattern.dim(), self.dim, "dimensionality mismatch");
        let fc = FeatureConfig::table2();
        let features = FeatureMatrix::from_rows([extract(pattern, &fc).as_f32().as_slice()]);
        let tensor_row = BinaryTensor::canvas(pattern).data().to_vec();
        let tensors = FeatureMatrix::from_rows([tensor_row.as_slice()]);
        let merging = &self.merging;
        let model = &mut self
            .classifiers
            .iter_mut()
            .find(|(g, _)| *g == gpu)
            .expect("GPU was part of training")
            .1;
        let class = model.predict(&features, &tensors, &[0])[0];
        merging.representative(class)
    }

    /// Predict the execution time (ms) of a configured stencil kernel on
    /// a GPU — without "running" on it (cross-architecture prediction).
    pub fn predict_time_ms(
        &mut self,
        pattern: &StencilPattern,
        oc: &OptCombo,
        params: &ParamSetting,
        gpu: GpuId,
    ) -> f64 {
        assert_eq!(pattern.dim(), self.dim, "dimensionality mismatch");
        // Regression rows use the extended feature set (see
        // `RegressionDataset::build`).
        let fc = FeatureConfig::extended();
        let mut row = extract(pattern, &fc).as_f32();
        row.extend(oc.feature_vector().iter().map(|&v| v as f32));
        row.extend(params.feature_vector(oc).iter().map(|&v| v as f32));
        row.extend(
            GpuArch::preset(gpu)
                .feature_vector()
                .iter()
                .map(|&v| v as f32),
        );
        if self.cfg.include_grid_size {
            row.push((self.cfg.grid_for(self.dim) as f32).log2());
        }
        assert_eq!(row.len(), self.regression_cols, "feature layout mismatch");
        let features = FeatureMatrix::from_rows([row.as_slice()]);
        let tensor_row = BinaryTensor::canvas(pattern).data().to_vec();
        let tensors = FeatureMatrix::from_rows([tensor_row.as_slice()]);
        let ln = self.regressor.predict_ln_rows(&features, &tensors)[0];
        (ln as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilmart_gpusim::ParamSpace;
    use stencilmart_stencil::shapes;

    fn tiny() -> StencilMart {
        let cfg = PipelineConfig {
            stencils_per_dim: 12,
            samples_per_oc: 2,
            max_regression_rows: 800,
            gpus: vec![GpuId::V100, GpuId::P100],
            ..PipelineConfig::default()
        };
        StencilMart::train(
            cfg,
            Dim::D2,
            ClassifierKind::Gbdt,
            RegressorKind::GbRegressor,
        )
    }

    #[test]
    fn predicts_a_valid_oc() {
        let mut mart = tiny();
        let p = shapes::star(Dim::D2, 2);
        let oc = mart.predict_best_oc(&p, GpuId::V100);
        assert!(oc.is_valid());
    }

    #[test]
    fn predicts_positive_time() {
        let mut mart = tiny();
        let p = shapes::box_(Dim::D2, 1);
        let oc = OptCombo::parse("ST").unwrap();
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(0);
        let params = ParamSpace::new(oc, Dim::D2).sample(&mut rng);
        let t = mart.predict_time_ms(&p, &oc, &params, GpuId::P100);
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn rejects_wrong_dim() {
        let mut mart = tiny();
        let p = shapes::star(Dim::D3, 1);
        mart.predict_best_oc(&p, GpuId::V100);
    }
}

//! The user-facing StencilMART API: train once, then ask for the best
//! optimization combination for a new stencil, or predict its execution
//! time on a GPU you do not own.
//!
//! Two entry points: [`StencilMart`] is the training-side handle
//! (panics on misuse, as training code controls its inputs), and
//! [`Predictor`] is the serving-side handle — batched, memoized, and
//! panic-free, intended to sit behind a long-lived service fed with
//! untrusted requests and bundles loaded from disk.

use crate::bundle::{BundleProvenance, ModelBundle};
use crate::config::PipelineConfig;
use crate::dataset::{ClassificationDataset, ProfiledCorpus, RegressionDataset};
use crate::error::MartError;
use crate::models::{ClassifierKind, MlpShape, RegressorKind, TrainedClassifier, TrainedRegressor};
use crate::pcc::OcMerging;
use std::collections::HashMap;
use std::path::Path;
use stencilmart_gpusim::{GpuArch, GpuId, OptCombo, ParamSetting};
use stencilmart_ml::data::FeatureMatrix;
use stencilmart_obs::counters::{BUNDLE_LOADS, PREDICTIONS_SERVED, PREDICT_CACHE_HITS};
use stencilmart_stencil::canonical::canonical_key;
use stencilmart_stencil::features::{extract, FeatureConfig};
use stencilmart_stencil::pattern::{Dim, StencilPattern};
use stencilmart_stencil::tensor::BinaryTensor;

/// A trained StencilMART instance for one stencil dimensionality.
///
/// Construction runs the full pipeline: generate a random training
/// corpus, profile it on the simulated GPUs, merge OCs by Pearson
/// correlation, and train one classifier per GPU plus one
/// cross-architecture regressor.
pub struct StencilMart {
    cfg: PipelineConfig,
    dim: Dim,
    merging: OcMerging,
    classifiers: Vec<(GpuId, TrainedClassifier)>,
    regressor: TrainedRegressor,
    regression_cols: usize,
}

impl StencilMart {
    /// Train the framework for one dimensionality with the chosen
    /// mechanisms.
    pub fn train(
        cfg: PipelineConfig,
        dim: Dim,
        classifier: ClassifierKind,
        regressor: RegressorKind,
    ) -> StencilMart {
        let corpus = ProfiledCorpus::build(&cfg, dim);
        let merging = corpus.derive_merging(cfg.oc_classes);
        let mut classifiers = Vec::new();
        for &gpu in &cfg.gpus {
            let ds = ClassificationDataset::build(&corpus, &merging, gpu);
            let all: Vec<usize> = (0..ds.len()).collect();
            let model = TrainedClassifier::train(
                classifier,
                dim,
                ds.classes,
                &ds.features,
                &ds.tensors,
                &ds.labels,
                &all,
                cfg.seed,
            );
            classifiers.push((gpu, model));
        }
        let rds = RegressionDataset::build(&corpus, &cfg);
        let all: Vec<usize> = (0..rds.len()).collect();
        let regressor = TrainedRegressor::train(
            regressor,
            dim,
            MlpShape::default(),
            &rds.features,
            &rds.tensors,
            &rds.target_ln_ms,
            &all,
            cfg.seed,
        );
        StencilMart {
            cfg,
            dim,
            merging,
            classifiers,
            regressor,
            regression_cols: rds.features.cols(),
        }
    }

    /// Dimensionality this instance was trained for.
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// The OC merging derived during training.
    pub fn merging(&self) -> &OcMerging {
        &self.merging
    }

    /// Predict the best optimization combination for a stencil on a GPU.
    ///
    /// # Panics
    /// Panics if the stencil's dimensionality differs from the trained
    /// one or the GPU was not part of training.
    pub fn predict_best_oc(&mut self, pattern: &StencilPattern, gpu: GpuId) -> OptCombo {
        assert_eq!(pattern.dim(), self.dim, "dimensionality mismatch");
        let fc = FeatureConfig::table2();
        let features = FeatureMatrix::from_rows([extract(pattern, &fc).as_f32().as_slice()]);
        let tensor_row = BinaryTensor::canvas(pattern).data().to_vec();
        let tensors = FeatureMatrix::from_rows([tensor_row.as_slice()]);
        let merging = &self.merging;
        let model = &mut self
            .classifiers
            .iter_mut()
            .find(|(g, _)| *g == gpu)
            .expect("GPU was part of training")
            .1;
        let class = model.predict(&features, &tensors, &[0])[0];
        merging
            .representative(class)
            .expect("trained merging covers every class")
    }

    /// Predict the execution time (ms) of a configured stencil kernel on
    /// a GPU — without "running" on it (cross-architecture prediction).
    pub fn predict_time_ms(
        &mut self,
        pattern: &StencilPattern,
        oc: &OptCombo,
        params: &ParamSetting,
        gpu: GpuId,
    ) -> f64 {
        assert_eq!(pattern.dim(), self.dim, "dimensionality mismatch");
        // Regression rows use the extended feature set (see
        // `RegressionDataset::build`).
        let fc = FeatureConfig::extended();
        let mut row = extract(pattern, &fc).as_f32();
        row.extend(oc.feature_vector().iter().map(|&v| v as f32));
        row.extend(params.feature_vector(oc).iter().map(|&v| v as f32));
        row.extend(
            GpuArch::preset(gpu)
                .feature_vector()
                .iter()
                .map(|&v| v as f32),
        );
        if self.cfg.include_grid_size {
            row.push((self.cfg.grid_for(self.dim) as f32).log2());
        }
        assert_eq!(row.len(), self.regression_cols, "feature layout mismatch");
        let features = FeatureMatrix::from_rows([row.as_slice()]);
        let tensor_row = BinaryTensor::canvas(pattern).data().to_vec();
        let tensors = FeatureMatrix::from_rows([tensor_row.as_slice()]);
        let ln = self.regressor.predict_ln_rows(&features, &tensors)[0];
        (ln as f64).exp()
    }

    /// Snapshot every trained artifact into a serializable
    /// [`ModelBundle`].
    pub fn to_bundle(&mut self, tool: &str) -> ModelBundle {
        ModelBundle {
            provenance: BundleProvenance::capture(tool, &self.cfg),
            cfg: self.cfg.clone(),
            dim: self.dim,
            merging: self.merging.clone(),
            classifiers: self
                .classifiers
                .iter_mut()
                .map(|(g, c)| (*g, c.to_state()))
                .collect(),
            regressor: self.regressor.to_state(),
            regression_cols: self.regression_cols,
        }
    }

    /// Save the trained models as a versioned bundle (atomic write).
    pub fn save(&mut self, path: &Path, tool: &str) -> Result<(), MartError> {
        self.to_bundle(tool).save(path)
    }

    /// Rebuild a trained instance from a bundle. Validates the bundle's
    /// invariants and every spec/weight agreement; never panics on
    /// corrupt input.
    pub fn from_bundle(bundle: ModelBundle) -> Result<StencilMart, MartError> {
        bundle.validate()?;
        let mut classifiers = Vec::with_capacity(bundle.classifiers.len());
        for (gpu, cs) in bundle.classifiers {
            let model = TrainedClassifier::from_state(cs).map_err(MartError::InvalidBundle)?;
            classifiers.push((gpu, model));
        }
        let regressor =
            TrainedRegressor::from_state(bundle.regressor).map_err(MartError::InvalidBundle)?;
        Ok(StencilMart {
            cfg: bundle.cfg,
            dim: bundle.dim,
            merging: bundle.merging,
            classifiers,
            regressor,
            regression_cols: bundle.regression_cols,
        })
    }
}

/// Per-pattern memo: features extracted once per canonical key, plus
/// the predicted class per GPU.
struct PatternEntry {
    table2: Vec<f32>,
    extended: Vec<f32>,
    tensor: Vec<f32>,
    class_by_gpu: HashMap<GpuId, usize>,
}

impl PatternEntry {
    fn compute(pattern: &StencilPattern) -> PatternEntry {
        PatternEntry {
            table2: extract(pattern, &FeatureConfig::table2()).as_f32(),
            extended: extract(pattern, &FeatureConfig::extended()).as_f32(),
            tensor: BinaryTensor::canvas(pattern).data().to_vec(),
            class_by_gpu: HashMap::new(),
        }
    }
}

/// The serving-side prediction handle: batched APIs over slices of
/// patterns, per-pattern canonical-key memoization, and structured
/// errors instead of panics for every input-dependent failure mode.
pub struct Predictor {
    mart: StencilMart,
    cache: HashMap<String, PatternEntry>,
}

impl Predictor {
    /// Wrap a freshly trained instance.
    pub fn from_mart(mart: StencilMart) -> Predictor {
        Predictor {
            mart,
            cache: HashMap::new(),
        }
    }

    /// Rebuild a predictor from a deserialized bundle.
    pub fn from_bundle(bundle: ModelBundle) -> Result<Predictor, MartError> {
        Ok(Predictor::from_mart(StencilMart::from_bundle(bundle)?))
    }

    /// Load, verify, and rebuild from a bundle file.
    pub fn load(path: &Path) -> Result<Predictor, MartError> {
        let bundle = ModelBundle::load(path)?;
        let p = Predictor::from_bundle(bundle)?;
        BUNDLE_LOADS.inc();
        Ok(p)
    }

    /// Dimensionality this predictor serves.
    pub fn dim(&self) -> Dim {
        self.mart.dim
    }

    /// GPUs with a trained classifier, in training order.
    pub fn gpus(&self) -> Vec<GpuId> {
        self.mart.classifiers.iter().map(|(g, _)| *g).collect()
    }

    /// Predict the best OC for each pattern on one GPU, batching all
    /// uncached patterns through a single model call. Per-pattern
    /// failures (wrong dimensionality) are per-entry errors; an unknown
    /// GPU fails every entry.
    pub fn best_oc_batch(
        &mut self,
        patterns: &[StencilPattern],
        gpu: GpuId,
    ) -> Vec<Result<OptCombo, MartError>> {
        let _span = stencilmart_obs::span("predict");
        PREDICTIONS_SERVED.add(patterns.len() as u64);
        let Some(model_pos) = self.mart.classifiers.iter().position(|(g, _)| *g == gpu) else {
            return patterns
                .iter()
                .map(|_| Err(MartError::UnknownGpu(gpu.name().to_string())))
                .collect();
        };
        // Phase 1: resolve cache entries, collecting the distinct
        // uncached keys into one prediction batch.
        let mut classes: Vec<Result<Option<usize>, MartError>> = Vec::with_capacity(patterns.len());
        let mut pending_rows: Vec<(Vec<f32>, Vec<f32>)> = Vec::new(); // (table2, tensor)
        let mut pending_index: HashMap<String, usize> = HashMap::new();
        let mut pending_of: Vec<Option<(String, usize)>> = Vec::with_capacity(patterns.len());
        for pattern in patterns {
            if pattern.dim() != self.mart.dim {
                classes.push(Err(MartError::DimMismatch {
                    expected: self.mart.dim,
                    found: pattern.dim(),
                }));
                pending_of.push(None);
                continue;
            }
            let key = canonical_key(pattern);
            let entry = self
                .cache
                .entry(key.clone())
                .or_insert_with(|| PatternEntry::compute(pattern));
            if let Some(&class) = entry.class_by_gpu.get(&gpu) {
                PREDICT_CACHE_HITS.inc();
                classes.push(Ok(Some(class)));
                pending_of.push(None);
            } else {
                let next = pending_rows.len();
                let slot = *pending_index.entry(key.clone()).or_insert_with(|| {
                    pending_rows.push((entry.table2.clone(), entry.tensor.clone()));
                    next
                });
                if slot != next {
                    // Duplicate within this batch: model runs once.
                    PREDICT_CACHE_HITS.inc();
                }
                classes.push(Ok(None));
                pending_of.push(Some((key, slot)));
            }
        }
        // Phase 2: one model call over the distinct uncached patterns.
        let predicted: Vec<usize> = if pending_rows.is_empty() {
            Vec::new()
        } else {
            let features = FeatureMatrix::from_rows(pending_rows.iter().map(|(f, _)| f.as_slice()));
            let tensors = FeatureMatrix::from_rows(pending_rows.iter().map(|(_, t)| t.as_slice()));
            let idx: Vec<usize> = (0..pending_rows.len()).collect();
            self.mart.classifiers[model_pos]
                .1
                .predict(&features, &tensors, &idx)
        };
        // Phase 3: write back to the memo and map classes to OCs.
        let merging = &self.mart.merging;
        classes
            .into_iter()
            .zip(pending_of)
            .map(|(resolved, pending)| {
                let class = match (resolved?, pending) {
                    (Some(class), _) => class,
                    (None, Some((key, slot))) => {
                        let class = predicted[slot];
                        if let Some(entry) = self.cache.get_mut(&key) {
                            entry.class_by_gpu.insert(gpu, class);
                        }
                        class
                    }
                    (None, None) => unreachable!("uncached entries carry a pending slot"),
                };
                merging
                    .representative(class)
                    .ok_or(MartError::UnknownClass(class))
            })
            .collect()
    }

    /// Predict execution times (ms) for each pattern under one
    /// configured kernel `(oc, params)` on one GPU, batching the
    /// regression over all valid patterns. The GPU need not be part of
    /// training — the regressor swaps hardware features
    /// (cross-architecture prediction).
    pub fn predict_time_batch(
        &mut self,
        patterns: &[StencilPattern],
        oc: &OptCombo,
        params: &ParamSetting,
        gpu: GpuId,
    ) -> Vec<Result<f64, MartError>> {
        let _span = stencilmart_obs::span("predict");
        PREDICTIONS_SERVED.add(patterns.len() as u64);
        if !oc.is_valid() {
            return patterns
                .iter()
                .map(|_| {
                    Err(MartError::BadRequest(format!(
                        "invalid optimization combination {}",
                        oc.name()
                    )))
                })
                .collect();
        }
        if !params.is_valid_for(oc, self.mart.dim) {
            return patterns
                .iter()
                .map(|_| {
                    Err(MartError::BadRequest(
                        "parameter setting is invalid for this OC and dimensionality".to_string(),
                    ))
                })
                .collect();
        }
        let tail: Vec<f32> = {
            let mut t: Vec<f32> = oc.feature_vector().iter().map(|&v| v as f32).collect();
            t.extend(params.feature_vector(oc).iter().map(|&v| v as f32));
            t.extend(
                GpuArch::preset(gpu)
                    .feature_vector()
                    .iter()
                    .map(|&v| v as f32),
            );
            if self.mart.cfg.include_grid_size {
                t.push((self.mart.cfg.grid_for(self.mart.dim) as f32).log2());
            }
            t
        };
        let mut results: Vec<Result<Option<usize>, MartError>> = Vec::with_capacity(patterns.len());
        let mut rows: Vec<(Vec<f32>, Vec<f32>)> = Vec::new();
        for pattern in patterns {
            if pattern.dim() != self.mart.dim {
                results.push(Err(MartError::DimMismatch {
                    expected: self.mart.dim,
                    found: pattern.dim(),
                }));
                continue;
            }
            let key = canonical_key(pattern);
            if self.cache.contains_key(&key) {
                PREDICT_CACHE_HITS.inc();
            }
            let entry = self
                .cache
                .entry(key)
                .or_insert_with(|| PatternEntry::compute(pattern));
            let mut row = entry.extended.clone();
            row.extend_from_slice(&tail);
            if row.len() != self.mart.regression_cols {
                results.push(Err(MartError::InvalidBundle(format!(
                    "feature layout mismatch: built {} columns, model expects {}",
                    row.len(),
                    self.mart.regression_cols
                ))));
                continue;
            }
            results.push(Ok(Some(rows.len())));
            rows.push((row, entry.tensor.clone()));
        }
        let times: Vec<f32> = if rows.is_empty() {
            Vec::new()
        } else {
            let features = FeatureMatrix::from_rows(rows.iter().map(|(f, _)| f.as_slice()));
            let tensors = FeatureMatrix::from_rows(rows.iter().map(|(_, t)| t.as_slice()));
            self.mart.regressor.predict_ln_rows(&features, &tensors)
        };
        results
            .into_iter()
            .map(|r| {
                r.map(|slot| {
                    let ln = times[slot.expect("valid rows carry a slot")];
                    (ln as f64).exp()
                })
            })
            .collect()
    }

    /// Single-pattern convenience over [`Self::best_oc_batch`].
    pub fn best_oc(&mut self, pattern: &StencilPattern, gpu: GpuId) -> Result<OptCombo, MartError> {
        self.best_oc_batch(std::slice::from_ref(pattern), gpu)
            .pop()
            .expect("one request yields one response")
    }

    /// Single-pattern convenience over [`Self::predict_time_batch`].
    pub fn predict_time_ms(
        &mut self,
        pattern: &StencilPattern,
        oc: &OptCombo,
        params: &ParamSetting,
        gpu: GpuId,
    ) -> Result<f64, MartError> {
        self.predict_time_batch(std::slice::from_ref(pattern), oc, params, gpu)
            .pop()
            .expect("one request yields one response")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilmart_gpusim::ParamSpace;
    use stencilmart_stencil::shapes;

    fn tiny() -> StencilMart {
        let cfg = PipelineConfig {
            stencils_per_dim: 12,
            samples_per_oc: 2,
            max_regression_rows: 800,
            gpus: vec![GpuId::V100, GpuId::P100],
            ..PipelineConfig::default()
        };
        StencilMart::train(
            cfg,
            Dim::D2,
            ClassifierKind::Gbdt,
            RegressorKind::GbRegressor,
        )
    }

    #[test]
    fn predicts_a_valid_oc() {
        let mut mart = tiny();
        let p = shapes::star(Dim::D2, 2);
        let oc = mart.predict_best_oc(&p, GpuId::V100);
        assert!(oc.is_valid());
    }

    #[test]
    fn predicts_positive_time() {
        let mut mart = tiny();
        let p = shapes::box_(Dim::D2, 1);
        let oc = OptCombo::parse("ST").unwrap();
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(0);
        let params = ParamSpace::new(oc, Dim::D2).sample(&mut rng);
        let t = mart.predict_time_ms(&p, &oc, &params, GpuId::P100);
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn rejects_wrong_dim() {
        let mut mart = tiny();
        let p = shapes::star(Dim::D3, 1);
        mart.predict_best_oc(&p, GpuId::V100);
    }

    #[test]
    fn predictor_batch_matches_training_handle() {
        let mut mart = tiny();
        let a = shapes::star(Dim::D2, 2);
        let b = shapes::box_(Dim::D2, 1);
        let direct = [
            mart.predict_best_oc(&a, GpuId::V100),
            mart.predict_best_oc(&b, GpuId::V100),
        ];
        let mut pred = Predictor::from_mart(mart);
        // Batch contains a duplicate: the memo must serve it without a
        // second model call and still agree with the training handle.
        let out = pred.best_oc_batch(&[a.clone(), b.clone(), a.clone()], GpuId::V100);
        assert_eq!(out.len(), 3);
        let got: Vec<&OptCombo> = out.iter().map(|r| r.as_ref().unwrap()).collect();
        assert_eq!(*got[0], direct[0]);
        assert_eq!(*got[1], direct[1]);
        assert_eq!(*got[2], direct[0]);
        // Second call over the same patterns is fully memoized.
        let again = pred.best_oc_batch(&[a, b], GpuId::V100);
        assert_eq!(*again[0].as_ref().unwrap(), direct[0]);
        assert_eq!(*again[1].as_ref().unwrap(), direct[1]);
    }

    #[test]
    fn predictor_reports_structured_errors() {
        let mut pred = Predictor::from_mart(tiny());
        let wrong_dim = shapes::star(Dim::D3, 1);
        let ok = shapes::star(Dim::D2, 1);
        let out = pred.best_oc_batch(&[wrong_dim.clone(), ok.clone()], GpuId::V100);
        assert_eq!(out[0].as_ref().unwrap_err().kind(), "dim_mismatch");
        assert!(out[1].is_ok());
        // A100 was not part of the tiny training set.
        let out = pred.best_oc_batch(std::slice::from_ref(&ok), GpuId::A100);
        assert_eq!(out[0].as_ref().unwrap_err().kind(), "unknown_gpu");
        // Invalid OC fails the whole time batch as a bad request.
        let rt_only = OptCombo {
            rt: true,
            ..OptCombo::BASE
        };
        let params = ParamSetting::default_for(&OptCombo::BASE);
        let out = pred.predict_time_batch(&[ok], &rt_only, &params, GpuId::V100);
        assert_eq!(out[0].as_ref().unwrap_err().kind(), "bad_request");
    }

    #[test]
    fn predictor_time_batch_matches_training_handle() {
        let mut mart = tiny();
        let p = shapes::box_(Dim::D2, 1);
        let oc = OptCombo::parse("ST").unwrap();
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(1);
        let params = ParamSpace::new(oc, Dim::D2).sample(&mut rng);
        let direct = mart.predict_time_ms(&p, &oc, &params, GpuId::P100);
        let mut pred = Predictor::from_mart(mart);
        let wrong = shapes::star(Dim::D3, 1);
        let out = pred.predict_time_batch(&[p, wrong], &oc, &params, GpuId::P100);
        assert_eq!(out[0].as_ref().unwrap().to_bits(), direct.to_bits());
        assert_eq!(out[1].as_ref().unwrap_err().kind(), "dim_mismatch");
    }
}

//! Pearson-correlation analysis of OC pairs (paper §III-C) and the
//! PCC-driven merging of OCs into prediction classes (paper §IV-D).
//!
//! OCs whose best-found execution times correlate strongly across stencils
//! behave interchangeably, so predicting between them wastes classifier
//! capacity. StencilMART groups the 30 valid OCs into (by default) 5
//! classes by agglomerative clustering on correlation distance and uses
//! the group member that wins most often as each class's prediction
//! target.

use serde::{Deserialize, Serialize};
use stencilmart_gpusim::{OptCombo, StencilProfile};
use stencilmart_ml::metrics::pearson;

/// Per-stencil best time for every OC: `matrix[stencil][oc]`, `None`
/// where every sampled setting crashed.
pub fn oc_time_matrix(profiles: &[StencilProfile]) -> Vec<Vec<Option<f64>>> {
    profiles
        .iter()
        .map(|p| {
            p.per_oc
                .iter()
                .map(|o| o.best().map(|b| b.time_ms))
                .collect()
        })
        .collect()
}

/// Pairwise PCC between OC columns of a time matrix, computed over the
/// stencils where both OCs executed, in log-time space (times span orders
/// of magnitude). Entries with fewer than 3 common stencils are 0.
pub fn pairwise_pcc(matrix: &[Vec<Option<f64>>]) -> Vec<Vec<f64>> {
    let n_oc = matrix.first().map_or(0, Vec::len);
    // Rows whose width disagrees with the first row (possible after
    // deserializing a hand-edited corpus) cannot be indexed by OC —
    // skip them instead of panicking on an out-of-bounds column.
    let rows: Vec<&Vec<Option<f64>>> = matrix.iter().filter(|r| r.len() == n_oc).collect();
    let mut out = vec![vec![0.0; n_oc]; n_oc];
    for a in 0..n_oc {
        out[a][a] = 1.0;
        for b in (a + 1)..n_oc {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for row in &rows {
                if let (Some(x), Some(y)) = (row[a], row[b]) {
                    xs.push(x.ln());
                    ys.push(y.ln());
                }
            }
            let r = if xs.len() >= 3 {
                pearson(&xs, &ys)
            } else {
                0.0
            };
            out[a][b] = r;
            out[b][a] = r;
        }
    }
    out
}

/// The `k` most correlated OC pairs `(a, b, pcc)` with `a < b`, sorted by
/// descending |PCC|.
#[allow(clippy::needless_range_loop)] // symmetric-matrix upper-triangle walk
pub fn top_pairs(pcc: &[Vec<f64>], k: usize) -> Vec<(usize, usize, f64)> {
    let n = pcc.len();
    if n < 2 {
        return Vec::new();
    }
    let mut pairs = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            pairs.push((a, b, pcc[a][b]));
        }
    }
    pairs.sort_by(|x, y| y.2.abs().total_cmp(&x.2.abs()));
    pairs.truncate(k);
    pairs
}

/// Fraction of pairs common to every GPU's top-`k` list (paper §III-C
/// reports ≈28% for k = 100).
pub fn top_pair_intersection(per_gpu_pcc: &[Vec<Vec<f64>>], k: usize) -> f64 {
    if per_gpu_pcc.is_empty() {
        return 0.0;
    }
    let mut sets: Vec<std::collections::HashSet<(usize, usize)>> = per_gpu_pcc
        .iter()
        .map(|p| {
            top_pairs(p, k)
                .into_iter()
                .map(|(a, b, _)| (a, b))
                .collect()
        })
        .collect();
    let first = sets.remove(0);
    let inter = first
        .iter()
        .filter(|pair| sets.iter().all(|s| s.contains(pair)))
        .count();
    // With fewer than k pairs in the matrix the lists are shorter than
    // k; dividing by k would report identical lists as < 1.0.
    if first.is_empty() {
        return 0.0;
    }
    inter as f64 / first.len() as f64
}

/// The result of merging OCs into prediction classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcMerging {
    /// OC indices (into [`OptCombo::enumerate`]) per group.
    pub groups: Vec<Vec<usize>>,
    /// Representative OC index per group: the member that achieves the
    /// best performance for the most stencils (paper §III-C).
    pub representatives: Vec<usize>,
}

impl OcMerging {
    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.groups.len()
    }

    /// Group (class label) of an OC index, or `None` when the OC is in
    /// no group — reachable with a hand-edited or corrupted merging, so
    /// this must not panic. Mergings produced by [`merge_ocs`] cover
    /// every OC.
    pub fn class_of(&self, oc_index: usize) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(&oc_index))
    }

    /// The representative OC of a class, or `None` when the class index
    /// or the stored representative OC index is out of range (both
    /// reachable from deserialized data).
    pub fn representative(&self, class: usize) -> Option<OptCombo> {
        let oc_index = *self.representatives.get(class)?;
        OptCombo::enumerate().get(oc_index).copied()
    }

    /// Structural validation for deserialized mergings: every OC index
    /// in `0..n_ocs` appears in exactly one group, and each group's
    /// representative is one of its own members. Returns a description
    /// of the first violation.
    pub fn validate(&self, n_ocs: usize) -> Result<(), String> {
        if self.groups.len() != self.representatives.len() {
            return Err(format!(
                "{} groups but {} representatives",
                self.groups.len(),
                self.representatives.len()
            ));
        }
        let mut seen = vec![0usize; n_ocs];
        for (gi, group) in self.groups.iter().enumerate() {
            for &oc in group {
                if oc >= n_ocs {
                    return Err(format!("group {gi} contains OC index {oc} >= {n_ocs}"));
                }
                seen[oc] += 1;
            }
            let rep = self.representatives[gi];
            if !group.contains(&rep) {
                return Err(format!(
                    "representative {rep} is not a member of group {gi}"
                ));
            }
        }
        if let Some(oc) = seen.iter().position(|&c| c == 0) {
            return Err(format!("OC index {oc} belongs to no group"));
        }
        if let Some(oc) = seen.iter().position(|&c| c > 1) {
            return Err(format!("OC index {oc} belongs to {} groups", seen[oc]));
        }
        Ok(())
    }
}

/// Mean absolute log-time ratio between OC columns, over the (stencil,
/// GPU) cases where both executed. Two OCs with a small value are
/// *performance-interchangeable*: picking either costs little.
pub fn pairwise_log_gap(matrices: &[Vec<Vec<Option<f64>>>]) -> Vec<Vec<f64>> {
    let n_oc = matrices.first().and_then(|m| m.first()).map_or(0, Vec::len);
    let mut out = vec![vec![0.0; n_oc]; n_oc];
    for a in 0..n_oc {
        for b in (a + 1)..n_oc {
            let mut sum = 0.0;
            let mut cnt = 0usize;
            for matrix in matrices {
                // Skip width-mismatched rows for the same reason as
                // `pairwise_pcc`.
                for row in matrix.iter().filter(|r| r.len() == n_oc) {
                    if let (Some(x), Some(y)) = (row[a], row[b]) {
                        sum += (x.ln() - y.ln()).abs();
                        cnt += 1;
                    }
                }
            }
            // No common case → maximally distant.
            let gap = if cnt > 0 { sum / cnt as f64 } else { f64::MAX };
            out[a][b] = gap;
            out[b][a] = gap;
        }
    }
    out
}

/// Merge OCs into `target` classes around *anchor* OCs.
///
/// Following the paper's construction (§III-C / §IV-D): the prediction
/// target of each class is "the OC that obtains the best performance
/// under more cases" — so the `target` most frequently winning OCs become
/// class anchors, and every remaining OC joins the anchor it is most
/// similar to. Similarity combines correlation with performance
/// closeness: `sim(a, b) = PCC̄(a, b) − w · gap(a, b)`, where `gap` is the
/// mean |log time ratio| — pure correlation would happily attach an OC to
/// an anchor that tracks it at a constant 5× distance, making the class
/// representative a poor stand-in.
///
/// `win_counts[oc]` — how many (stencil, GPU) cases each OC wins.
#[allow(clippy::needless_range_loop)] // dense similarity-matrix updates
pub fn merge_ocs(
    per_gpu_pcc: &[Vec<Vec<f64>>],
    per_gpu_times: &[Vec<Vec<Option<f64>>>],
    win_counts: &[usize],
    target: usize,
) -> OcMerging {
    let n = win_counts.len();
    assert!(target >= 1 && target <= n, "target classes out of range");
    assert!(
        per_gpu_pcc.iter().all(|m| m.len() == n),
        "PCC matrix size mismatch"
    );
    let _span = stencilmart_obs::span("merge_ocs");
    let gap = pairwise_log_gap(per_gpu_times);
    // Similarity: mean PCC across GPUs, penalized by the performance gap.
    const GAP_WEIGHT: f64 = 1.5;
    let mut sim = vec![vec![0.0f64; n]; n];
    for m in per_gpu_pcc {
        for i in 0..n {
            for j in 0..n {
                sim[i][j] += m[i][j] / per_gpu_pcc.len() as f64;
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            if i != j {
                sim[i][j] -= GAP_WEIGHT * gap[i][j].min(1e6);
            }
        }
    }
    // Anchors: the biggest winners, greedily skipping candidates that are
    // performance-interchangeable with an already-chosen anchor (two
    // anchors separated by less than the measurement noise would make the
    // class label a coin flip). Ties broken by index for determinism.
    const ANCHOR_SEPARATION: f64 = 0.5;
    let mut by_wins: Vec<usize> = (0..n).collect();
    by_wins.sort_by_key(|&i| (std::cmp::Reverse(win_counts[i]), i));
    let mut anchors: Vec<usize> = Vec::with_capacity(target);
    for &cand in &by_wins {
        if anchors.len() == target {
            break;
        }
        if anchors.iter().all(|&a| sim[cand][a] < ANCHOR_SEPARATION) {
            anchors.push(cand);
        }
    }
    // Not enough well-separated winners: fill with the next-best winners.
    for &cand in &by_wins {
        if anchors.len() == target {
            break;
        }
        if !anchors.contains(&cand) {
            anchors.push(cand);
        }
    }
    anchors.sort_unstable();
    // Assign every OC to its most similar anchor.
    let mut groups: Vec<Vec<usize>> = anchors.iter().map(|&a| vec![a]).collect();
    for i in 0..n {
        if anchors.contains(&i) {
            continue;
        }
        let best = (0..anchors.len())
            .max_by(|&a, &b| sim[i][anchors[a]].total_cmp(&sim[i][anchors[b]]))
            .expect("at least one anchor");
        groups[best].push(i);
    }
    for g in &mut groups {
        g.sort_unstable();
    }
    // Stable ordering: by smallest member index; keep anchors aligned.
    let mut paired: Vec<(Vec<usize>, usize)> = groups.into_iter().zip(anchors).collect();
    paired.sort_by_key(|(g, _)| g[0]);
    let (groups, representatives): (Vec<_>, Vec<_>) = paired.into_iter().unzip();
    OcMerging {
        groups,
        representatives,
    }
}

/// Count how many (stencil, GPU) cases each OC achieves the best time
/// (feeds Fig. 2 and the representative selection). Takes borrowed
/// per-GPU slices so callers never clone profile vectors just to count.
pub fn win_counts(per_gpu_profiles: &[&[StencilProfile]]) -> Vec<usize> {
    let n_oc = OptCombo::enumerate().len();
    let mut wins = vec![0usize; n_oc];
    for profiles in per_gpu_profiles {
        for p in *profiles {
            if let Some(best) = p.best_oc() {
                wins[best.oc.index()] += 1;
            }
        }
    }
    wins
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_matrix() -> Vec<Vec<Option<f64>>> {
        // 6 stencils × 4 OCs. OCs 0 and 1 perfectly correlated; OC 2
        // anti-correlated; OC 3 has crashes.
        let base = [1.0f64, 2.0, 4.0, 8.0, 16.0, 32.0];
        base.iter()
            .enumerate()
            .map(|(i, &t)| {
                vec![
                    Some(t),
                    Some(2.0 * t),
                    Some(64.0 / t),
                    if i < 3 { Some(t * 1.5) } else { None },
                ]
            })
            .collect()
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pcc_matrix_diagonal_and_symmetry() {
        let pcc = pairwise_pcc(&toy_matrix());
        for i in 0..4 {
            assert_eq!(pcc[i][i], 1.0);
            for j in 0..4 {
                assert_eq!(pcc[i][j], pcc[j][i]);
            }
        }
        assert!((pcc[0][1] - 1.0).abs() < 1e-9, "scaled copy correlates 1");
        assert!((pcc[0][2] + 1.0).abs() < 1e-9, "reciprocal anti-correlates");
        assert!((pcc[0][3] - 1.0).abs() < 1e-9, "computed over common rows");
    }

    #[test]
    fn top_pairs_sorted_by_abs() {
        let pcc = pairwise_pcc(&toy_matrix());
        let pairs = top_pairs(&pcc, 3);
        assert_eq!(pairs.len(), 3);
        assert!(pairs[0].2.abs() >= pairs[1].2.abs());
    }

    #[test]
    fn intersection_of_identical_lists_is_one() {
        let pcc = pairwise_pcc(&toy_matrix());
        let frac = top_pair_intersection(&[pcc.clone(), pcc], 3);
        assert_eq!(frac, 1.0);
    }

    #[test]
    fn merge_groups_correlated_ocs() {
        let pcc = pairwise_pcc(&toy_matrix());
        let wins = vec![5, 1, 3, 0];
        let merging = merge_ocs(&[pcc], &[toy_matrix()], &wins, 2);
        assert_eq!(merging.classes(), 2);
        // OCs 0, 1 (and 3, which tracks them) group together; OC 2 stands
        // apart as the anti-correlated one.
        let class0 = merging.class_of(0).unwrap();
        assert_eq!(merging.class_of(1), Some(class0));
        assert_ne!(merging.class_of(2), Some(class0));
        // Representative of OC 0's group is OC 0 (most wins).
        assert_eq!(merging.representatives[class0], 0);
    }

    #[test]
    fn merge_to_n_classes_is_identity_partition() {
        let pcc = pairwise_pcc(&toy_matrix());
        let merging = merge_ocs(&[pcc], &[toy_matrix()], &[1, 1, 1, 1], 4);
        assert_eq!(merging.classes(), 4);
        for i in 0..4 {
            assert_eq!(merging.class_of(i), Some(i));
        }
    }

    #[test]
    fn class_of_covers_all_ocs() {
        let pcc = pairwise_pcc(&toy_matrix());
        let merging = merge_ocs(&[pcc], &[toy_matrix()], &[0, 0, 0, 0], 2);
        for i in 0..4 {
            let c = merging
                .class_of(i)
                .expect("derived merging covers every OC");
            assert!(c < 2);
        }
        assert!(merging.validate(4).is_ok());
    }

    #[test]
    fn intersection_with_k_beyond_pair_count_is_one() {
        // 4 OCs → 6 pairs; k = 100 truncates to 6. Identical lists must
        // still intersect fully.
        let pcc = pairwise_pcc(&toy_matrix());
        let frac = top_pair_intersection(&[pcc.clone(), pcc], 100);
        assert_eq!(frac, 1.0);
        assert_eq!(top_pair_intersection(&[], 10), 0.0);
        assert_eq!(top_pair_intersection(&[vec![]], 10), 0.0);
    }

    #[test]
    fn ragged_matrix_does_not_panic() {
        let mut m = toy_matrix();
        m[2].truncate(2); // hand-edited corpus: one short row
        m.push(vec![Some(1.0); 7]); // and one over-wide row
        let pcc = pairwise_pcc(&m);
        assert_eq!(pcc.len(), 4);
        assert!((pcc[0][1] - 1.0).abs() < 1e-9, "computed over intact rows");
        let gap = pairwise_log_gap(&[m]);
        assert_eq!(gap.len(), 4);
        assert!(gap[0][1].is_finite());
    }

    #[test]
    fn class_of_and_representative_handle_out_of_range() {
        let merging = OcMerging {
            groups: vec![vec![0, 1], vec![2, 3]],
            representatives: vec![0, 2],
        };
        assert_eq!(merging.class_of(99), None);
        assert_eq!(merging.representative(7), None);
        assert!(merging.representative(0).is_some());
        let broken = OcMerging {
            groups: vec![vec![0, 1]],
            representatives: vec![500],
        };
        assert_eq!(broken.representative(0), None);
    }

    #[test]
    fn validate_flags_structural_violations() {
        let good = OcMerging {
            groups: vec![vec![0, 1], vec![2]],
            representatives: vec![1, 2],
        };
        assert!(good.validate(3).is_ok());
        let missing = OcMerging {
            groups: vec![vec![0], vec![2]],
            representatives: vec![0, 2],
        };
        assert!(missing.validate(3).unwrap_err().contains("no group"));
        let doubled = OcMerging {
            groups: vec![vec![0, 1], vec![1, 2]],
            representatives: vec![0, 2],
        };
        assert!(doubled.validate(3).unwrap_err().contains("2 groups"));
        let foreign_rep = OcMerging {
            groups: vec![vec![0, 1], vec![2]],
            representatives: vec![2, 2],
        };
        assert!(foreign_rep
            .validate(3)
            .unwrap_err()
            .contains("not a member"));
        let out_of_range = OcMerging {
            groups: vec![vec![0, 7]],
            representatives: vec![0],
        };
        assert!(out_of_range.validate(3).unwrap_err().contains(">="));
    }
}

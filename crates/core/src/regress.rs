//! Cross-architecture performance-prediction evaluation: k-fold
//! cross-validation of the regression mechanisms, reporting MAPE overall
//! and per GPU (paper §V-C, Fig. 12–13).

use crate::dataset::RegressionDataset;
use crate::models::{MlpShape, RegressorKind, TrainedRegressor};
use serde::{Deserialize, Serialize};
use stencilmart_gpusim::GpuId;
use stencilmart_ml::data::KFold;
use stencilmart_ml::metrics::mape;
use stencilmart_ml::par::par_map_indices;

/// Cross-validated evaluation of one regressor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressorEval {
    /// The evaluated mechanism.
    pub kind: RegressorKind,
    /// MLP/ConvMLP topology used.
    pub shape: MlpShape,
    /// MAPE (%) over all out-of-fold predictions, on linear time.
    pub mape_overall: f64,
    /// MAPE (%) per GPU subset.
    pub mape_per_gpu: Vec<(GpuId, f64)>,
    /// Out-of-fold `ln(time_ms)` prediction per row.
    pub predictions_ln: Vec<f32>,
}

/// Run k-fold cross-validation for one regression mechanism.
///
/// GBDT folds also parallelize internally (histogram accumulation and
/// split search inside each tree). Both levels are scheduling-only —
/// fitted models and out-of-fold predictions are bit-identical for any
/// `STENCILMART_THREADS` setting.
pub fn evaluate_regressor(
    kind: RegressorKind,
    ds: &RegressionDataset,
    shape: MlpShape,
    folds: usize,
    seed: u64,
) -> RegressorEval {
    assert!(ds.len() >= folds, "dataset smaller than fold count");
    let kf = KFold::new(ds.len(), folds, seed);
    let fold_results: Vec<(Vec<usize>, Vec<f32>)> = par_map_indices(folds, |f| {
        let (train_idx, test_idx) = kf.split(f);
        let mut model = TrainedRegressor::train(
            kind,
            ds.dim,
            shape,
            &ds.features,
            &ds.tensors,
            &ds.target_ln_ms,
            &train_idx,
            seed ^ (f as u64).wrapping_mul(0x5851),
        );
        let preds = model.predict_ln(&ds.features, &ds.tensors, &test_idx);
        (test_idx, preds)
    });
    let mut predictions_ln = vec![f32::NAN; ds.len()];
    for (test_idx, preds) in &fold_results {
        for (&i, &p) in test_idx.iter().zip(preds) {
            predictions_ln[i] = p;
        }
    }
    debug_assert!(predictions_ln.iter().all(|p| p.is_finite()));
    let (overall, per_gpu) = mape_by_gpu(ds, &predictions_ln);
    RegressorEval {
        kind,
        shape,
        mape_overall: overall,
        mape_per_gpu: per_gpu,
        predictions_ln,
    }
}

/// Compute MAPE on linear time overall and per GPU subset.
pub fn mape_by_gpu(ds: &RegressionDataset, predictions_ln: &[f32]) -> (f64, Vec<(GpuId, f64)>) {
    let pred_ms: Vec<f64> = predictions_ln.iter().map(|&p| (p as f64).exp()).collect();
    let true_ms: Vec<f64> = ds.target_ln_ms.iter().map(|&t| (t as f64).exp()).collect();
    let overall = mape(&pred_ms, &true_ms);
    let mut per_gpu = Vec::new();
    for gpu in GpuId::ALL {
        let idx: Vec<usize> = ds
            .keys
            .iter()
            .enumerate()
            .filter(|(_, k)| k.gpu == gpu)
            .map(|(i, _)| i)
            .collect();
        if idx.is_empty() {
            continue;
        }
        let p: Vec<f64> = idx.iter().map(|&i| pred_ms[i]).collect();
        let t: Vec<f64> = idx.iter().map(|&i| true_ms[i]).collect();
        per_gpu.push((gpu, mape(&p, &t)));
    }
    (overall, per_gpu)
}

/// Leave-one-GPU-out evaluation: train on every instance measured on the
/// *other* GPUs and predict the held-out GPU's instances. This is the
/// hardest form of cross-architecture prediction — the model has never
/// seen a single measurement from the target architecture and must
/// extrapolate purely from the hardware-characteristic features. (The
/// paper's protocol mixes all GPUs into the CV folds; this stricter
/// variant is provided as an extension.)
pub fn leave_one_gpu_out(
    kind: RegressorKind,
    ds: &RegressionDataset,
    held_out: GpuId,
    seed: u64,
) -> Option<f64> {
    let train_idx: Vec<usize> = (0..ds.len())
        .filter(|&r| ds.keys[r].gpu != held_out)
        .collect();
    let test_idx: Vec<usize> = (0..ds.len())
        .filter(|&r| ds.keys[r].gpu == held_out)
        .collect();
    if train_idx.is_empty() || test_idx.is_empty() {
        return None;
    }
    let mut model = crate::models::TrainedRegressor::train(
        kind,
        ds.dim,
        MlpShape::default(),
        &ds.features,
        &ds.tensors,
        &ds.target_ln_ms,
        &train_idx,
        seed,
    );
    let preds = model.predict_ln(&ds.features, &ds.tensors, &test_idx);
    let pred_ms: Vec<f64> = preds.iter().map(|&p| (p as f64).exp()).collect();
    let true_ms: Vec<f64> = test_idx
        .iter()
        .map(|&i| (ds.target_ln_ms[i] as f64).exp())
        .collect();
    Some(mape(&pred_ms, &true_ms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::dataset::ProfiledCorpus;
    use stencilmart_stencil::pattern::Dim;

    fn tiny_dataset() -> RegressionDataset {
        let cfg = PipelineConfig {
            stencils_per_dim: 10,
            samples_per_oc: 2,
            gpus: vec![GpuId::V100, GpuId::A100],
            max_regression_rows: 600,
            ..PipelineConfig::default()
        };
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        RegressionDataset::build(&corpus, &cfg)
    }

    #[test]
    fn gbregressor_predicts_reasonably() {
        let ds = tiny_dataset();
        let eval = evaluate_regressor(RegressorKind::GbRegressor, &ds, MlpShape::default(), 3, 0);
        assert!(eval.mape_overall < 80.0, "MAPE {}", eval.mape_overall);
        assert_eq!(eval.predictions_ln.len(), ds.len());
        assert_eq!(eval.mape_per_gpu.len(), 2);
    }

    #[test]
    fn per_gpu_mape_covers_profiled_gpus() {
        let ds = tiny_dataset();
        let eval = evaluate_regressor(RegressorKind::GbRegressor, &ds, MlpShape::default(), 3, 1);
        let gpus: Vec<GpuId> = eval.mape_per_gpu.iter().map(|(g, _)| *g).collect();
        assert!(gpus.contains(&GpuId::V100));
        assert!(gpus.contains(&GpuId::A100));
        assert!(eval.mape_per_gpu.iter().all(|(_, m)| m.is_finite()));
    }

    #[test]
    fn leave_one_gpu_out_is_finite_and_harder() {
        let cfg = PipelineConfig {
            stencils_per_dim: 14,
            samples_per_oc: 3,
            gpus: vec![GpuId::V100, GpuId::P100, GpuId::A100],
            max_regression_rows: 3000,
            ..PipelineConfig::default()
        };
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        let ds = RegressionDataset::build(&corpus, &cfg);
        let logo = leave_one_gpu_out(RegressorKind::GbRegressor, &ds, GpuId::A100, 0)
            .expect("A100 rows exist");
        assert!(logo.is_finite() && logo > 0.0);
        // Mixed-GPU CV should be easier than extrapolating to an unseen
        // architecture.
        let mixed = evaluate_regressor(RegressorKind::GbRegressor, &ds, MlpShape::default(), 3, 0);
        assert!(
            logo > 0.5 * mixed.mape_overall,
            "LOGO {logo} vs mixed {}",
            mixed.mape_overall
        );
        // Held-out GPU absent entirely → None.
        let cfg2 = PipelineConfig {
            gpus: vec![GpuId::V100],
            ..cfg
        };
        let corpus2 = ProfiledCorpus::build(&cfg2, Dim::D2);
        let ds2 = RegressionDataset::build(&corpus2, &cfg2);
        assert!(leave_one_gpu_out(RegressorKind::GbRegressor, &ds2, GpuId::A100, 0).is_none());
    }

    #[test]
    fn mlp_trains_without_nan() {
        let ds = tiny_dataset();
        let eval = evaluate_regressor(
            RegressorKind::Mlp,
            &ds,
            MlpShape {
                hidden_layers: 3,
                width: 24,
            },
            3,
            2,
        );
        assert!(eval.mape_overall.is_finite());
    }
}

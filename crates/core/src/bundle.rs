//! Versioned model persistence: the [`ModelBundle`] packages every
//! trained artifact of a [`crate::api::StencilMart`] — per-GPU
//! classifiers, the cross-architecture regressor, the OC merging, the
//! pipeline configuration, and provenance — behind an envelope carrying
//! a format version and an FNV-1a payload checksum (the same hash the
//! observability manifests use). Loading rejects version and checksum
//! mismatches and validates structural invariants *before* any model is
//! asked to predict, so corruption surfaces as a [`MartError`] instead
//! of a panic deep inside a prediction call.

use crate::config::PipelineConfig;
use crate::error::MartError;
use crate::models::{ClassifierState, ClassifierWeights, RegressorState, RegressorWeights};
use crate::pcc::OcMerging;
use crate::persist::write_atomic;
use serde::{Deserialize, Serialize};
use std::path::Path;
use stencilmart_gpusim::{GpuArch, GpuId, OptCombo, ParamSetting};
use stencilmart_obs::manifest::fnv1a;
use stencilmart_stencil::features::{extract, FeatureConfig};
use stencilmart_stencil::pattern::Dim;
use stencilmart_stencil::shapes;

/// The bundle format this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Who produced a bundle, when, and from which configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BundleProvenance {
    /// Emitting tool (e.g. `advisor`).
    pub tool: String,
    /// Git revision of the producing working tree, or `"unknown"`.
    pub git_rev: String,
    /// Wall-clock creation time, milliseconds since the Unix epoch.
    pub created_unix_ms: u64,
    /// FNV-1a hash (16 hex digits) of the serialized training
    /// configuration — lets consumers detect config drift without
    /// diffing the full config.
    pub training_config_hash: String,
}

impl BundleProvenance {
    /// Capture provenance for the current process and configuration.
    pub fn capture(tool: &str, cfg: &PipelineConfig) -> BundleProvenance {
        let created_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        BundleProvenance {
            tool: tool.to_string(),
            git_rev: stencilmart_obs::manifest::git_rev(),
            created_unix_ms,
            training_config_hash: config_hash(cfg),
        }
    }
}

/// FNV-1a hash of the serialized pipeline configuration, as 16 hex
/// digits.
pub fn config_hash(cfg: &PipelineConfig) -> String {
    let repr = serde_json::to_string(cfg).expect("config serializes");
    format!("{:016x}", fnv1a(repr.as_bytes()))
}

/// Every trained artifact of one StencilMART instance, in serializable
/// form. This is the *payload* of the on-disk format; the envelope
/// around it carries the version and checksum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Who/when/what produced this bundle.
    pub provenance: BundleProvenance,
    /// The training configuration.
    pub cfg: PipelineConfig,
    /// Trained dimensionality.
    pub dim: Dim,
    /// PCC-derived OC merging.
    pub merging: OcMerging,
    /// One classifier per trained GPU.
    pub classifiers: Vec<(GpuId, ClassifierState)>,
    /// The cross-architecture regressor.
    pub regressor: RegressorState,
    /// Width of the regression feature rows.
    pub regression_cols: usize,
}

/// The on-disk envelope: version + checksum + training-config hash
/// around the payload JSON. The payload is embedded as a *string* so
/// the checksum is computed over exactly the bytes that are parsed
/// back.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Envelope {
    format_version: u32,
    checksum: String,
    training_config_hash: String,
    payload: String,
}

/// Width of the regression feature rows implied by a configuration and
/// dimensionality — synthesized exactly the way the prediction path
/// builds rows, so a loaded bundle's `regression_cols` can be checked
/// against what queries will produce.
pub fn expected_regression_cols(cfg: &PipelineConfig, dim: Dim) -> usize {
    let pattern = shapes::star(dim, 1);
    let oc = OptCombo::BASE;
    let params = ParamSetting::default_for(&oc);
    let mut n = extract(&pattern, &FeatureConfig::extended()).as_f32().len();
    n += oc.feature_vector().len();
    n += params.feature_vector(&oc).len();
    n += GpuArch::preset(GpuId::V100).feature_vector().len();
    if cfg.include_grid_size {
        n += 1;
    }
    n
}

impl ModelBundle {
    /// Serialize and write atomically (see
    /// [`crate::persist::write_atomic`]).
    pub fn save(&self, path: &Path) -> Result<(), MartError> {
        let payload = serde_json::to_string(self)?;
        let envelope = Envelope {
            format_version: FORMAT_VERSION,
            checksum: format!("{:016x}", fnv1a(payload.as_bytes())),
            training_config_hash: self.provenance.training_config_hash.clone(),
            payload,
        };
        let json = serde_json::to_string(&envelope)?;
        write_atomic(path, &json)?;
        Ok(())
    }

    /// Read, verify (version, checksum), parse, and structurally
    /// validate a bundle. Every failure mode returns a [`MartError`];
    /// nothing in this path panics on corrupt input.
    pub fn load(path: &Path) -> Result<ModelBundle, MartError> {
        let _span = stencilmart_obs::span("bundle_load");
        let json = std::fs::read_to_string(path)?;
        let envelope: Envelope = serde_json::from_str(&json)?;
        if envelope.format_version != FORMAT_VERSION {
            return Err(MartError::WrongVersion {
                found: envelope.format_version,
                expected: FORMAT_VERSION,
            });
        }
        let computed = format!("{:016x}", fnv1a(envelope.payload.as_bytes()));
        if computed != envelope.checksum {
            return Err(MartError::ChecksumMismatch {
                stored: envelope.checksum,
                computed,
            });
        }
        let bundle: ModelBundle = serde_json::from_str(&envelope.payload)?;
        bundle.validate()?;
        Ok(bundle)
    }

    /// Check the structural invariants a well-formed bundle satisfies:
    /// the merging partitions the OC enumeration with in-group
    /// representatives, every classifier agrees with the bundle's
    /// dimensionality and the merging's class count, feature widths
    /// agree with what the prediction path will build, and no boosted
    /// tree reads past its feature row.
    pub fn validate(&self) -> Result<(), MartError> {
        let invalid = |why: String| Err(MartError::InvalidBundle(why));
        if self.dim == Dim::D1 {
            return invalid("1-D bundles are not supported".to_string());
        }
        let n_ocs = OptCombo::enumerate().len();
        if let Err(why) = self.merging.validate(n_ocs) {
            return invalid(format!("OC merging: {why}"));
        }
        if self.classifiers.is_empty() {
            return invalid("bundle contains no classifiers".to_string());
        }
        let mut gpus: Vec<GpuId> = self.classifiers.iter().map(|(g, _)| *g).collect();
        gpus.sort_unstable();
        gpus.dedup();
        if gpus.len() != self.classifiers.len() {
            return invalid("duplicate GPU classifiers".to_string());
        }
        let class_cols = extract(&shapes::star(self.dim, 1), &FeatureConfig::table2())
            .as_f32()
            .len();
        for (gpu, cs) in &self.classifiers {
            if cs.dim != self.dim {
                return invalid(format!(
                    "classifier for {gpu} is {} but bundle is {}",
                    cs.dim, self.dim
                ));
            }
            if cs.classes != self.merging.classes() {
                return invalid(format!(
                    "classifier for {gpu} has {} classes but merging has {}",
                    cs.classes,
                    self.merging.classes()
                ));
            }
            if let ClassifierWeights::Trees(m) = &cs.weights {
                if let Some(max) = m.max_feature_index() {
                    if max >= class_cols {
                        return invalid(format!(
                            "classifier for {gpu} reads feature {max} but rows have {class_cols}"
                        ));
                    }
                }
            }
        }
        if self.regressor.dim != self.dim {
            return invalid(format!(
                "regressor is {} but bundle is {}",
                self.regressor.dim, self.dim
            ));
        }
        let expected_cols = expected_regression_cols(&self.cfg, self.dim);
        if self.regression_cols != expected_cols {
            return invalid(format!(
                "bundle declares {} regression columns but queries build {expected_cols}",
                self.regression_cols
            ));
        }
        if self.regressor.feat_cols != self.regression_cols {
            return invalid(format!(
                "regressor trained on {} columns but bundle declares {}",
                self.regressor.feat_cols, self.regression_cols
            ));
        }
        if let RegressorWeights::Trees(m) = &self.regressor.weights {
            if let Some(max) = m.max_feature_index() {
                if max >= self.regression_cols {
                    return invalid(format!(
                        "regressor reads feature {max} but rows have {}",
                        self.regression_cols
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_hash_is_stable_and_sensitive() {
        let a = PipelineConfig::default();
        let mut b = PipelineConfig::default();
        assert_eq!(config_hash(&a), config_hash(&b));
        b.seed += 1;
        assert_ne!(config_hash(&a), config_hash(&b));
        assert_eq!(config_hash(&a).len(), 16);
    }

    #[test]
    fn expected_regression_cols_tracks_grid_flag() {
        let mut cfg = PipelineConfig {
            include_grid_size: true,
            ..PipelineConfig::default()
        };
        let with = expected_regression_cols(&cfg, Dim::D2);
        cfg.include_grid_size = false;
        assert_eq!(expected_regression_cols(&cfg, Dim::D2), with - 1);
        // Same width in 3-D: the extended feature set is
        // dimensionality-independent.
        cfg.include_grid_size = true;
        assert_eq!(expected_regression_cols(&cfg, Dim::D3), with);
    }
}

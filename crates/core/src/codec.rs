//! Byte-oriented shard codec for the out-of-core bin store: a
//! frame-of-reference + bit-packed encoding for bin-code sections and a
//! delta variant for sorted integer sequences.
//!
//! Bin codes are tiny integers (a 32-bin store needs 5 bits per code,
//! not 8), so subtracting the frame minimum and packing each word at
//! the narrowest sufficient width routinely shrinks CODES sections by
//! 2–3x — which means the bounded shard cache, which stores *encoded*
//! bytes, holds 2–3x more shards per byte of budget. Decoding is a
//! single sequential pass and is amortized across a whole tree level by
//! the shard-major histogram schedule (DESIGN.md §17).
//!
//! Every decode failure — truncation, trailing bytes, impossible bit
//! widths, values overflowing the target word — returns a structured
//! [`MartError`] (`decode` kind), never a panic: encoded shards are
//! on-disk data and on-disk data is hostile until proven otherwise.
//!
//! ## Frame layouts (all integers little-endian)
//!
//! Frame-of-reference ([`encode_for_u16`]):
//!
//! ```text
//! [count: u32][min: u32][bits: u8][packed: ceil(count*bits/8) bytes]
//! ```
//!
//! Each packed word is `value - min` at `bits` bits, LSB-first in the
//! byte stream. `bits == 0` encodes a constant section (every value
//! equals `min`) with an empty payload.
//!
//! Delta for sorted sequences ([`encode_delta_u32`]):
//!
//! ```text
//! [count: u32][first: u32][bits: u8][packed deltas: count-1 words]
//! ```
//!
//! Deltas of a non-decreasing sequence are non-negative, so they pack
//! plainly (no zigzag needed).

use crate::error::MartError;

/// Header bytes preceding the packed payload of either frame.
const FRAME_HEADER: usize = 9;

fn bad(why: String) -> MartError {
    MartError::Decode(why)
}

/// Minimum bits to represent `v` (0 for `v == 0`).
fn bits_for(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// Pack `values` (each `< 2^bits`) LSB-first into `out`.
fn pack_lsb(out: &mut Vec<u8>, values: impl Iterator<Item = u64>, bits: u8) {
    debug_assert!(bits <= 32);
    let mut acc: u64 = 0;
    let mut filled: u32 = 0;
    for v in values {
        debug_assert!(bits == 64 || v < (1u64 << bits));
        acc |= v << filled;
        filled += u32::from(bits);
        while filled >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            filled -= 8;
        }
    }
    if filled > 0 {
        out.push((acc & 0xFF) as u8);
    }
}

/// Unpack `count` words of `bits` bits, LSB-first, from `bytes`.
/// `bytes` must be exactly `ceil(count*bits/8)` long (checked by the
/// callers against the frame header before unpacking).
fn unpack_lsb(bytes: &[u8], count: usize, bits: u8) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let mut acc: u64 = 0;
    let mut filled: u32 = 0;
    let mut iter = bytes.iter();
    for _ in 0..count {
        while filled < u32::from(bits) {
            acc |= u64::from(*iter.next().expect("length checked")) << filled;
            filled += 8;
        }
        out.push(acc & mask);
        acc >>= bits;
        filled -= u32::from(bits);
    }
    out
}

/// Packed payload length of `count` words at `bits` bits.
fn payload_len(count: usize, bits: u8) -> usize {
    (count * usize::from(bits)).div_ceil(8)
}

/// Encode a `u16` word sequence with frame-of-reference bit-packing.
/// Empty input encodes to a valid empty frame.
pub fn encode_for_u16(values: &[u16]) -> Vec<u8> {
    let min = values.iter().copied().min().unwrap_or(0);
    let max = values.iter().copied().max().unwrap_or(0);
    let bits = bits_for(u64::from(max - min));
    let mut out = Vec::with_capacity(FRAME_HEADER + payload_len(values.len(), bits));
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    out.extend_from_slice(&u32::from(min).to_le_bytes());
    out.push(bits);
    pack_lsb(&mut out, values.iter().map(|&v| u64::from(v - min)), bits);
    out
}

/// Decode a [`encode_for_u16`] frame, checking the count against
/// `expect` (the word count the caller derived from shard shape).
pub fn decode_for_u16(bytes: &[u8], expect: usize) -> Result<Vec<u16>, MartError> {
    let (count, base, bits, packed) = split_frame(bytes, "FOR frame")?;
    if count != expect {
        return Err(bad(format!(
            "FOR frame holds {count} words, shard shape implies {expect}"
        )));
    }
    if bits > 16 {
        return Err(bad(format!("FOR frame claims {bits} bits per u16 word")));
    }
    let mut out = Vec::with_capacity(count);
    for delta in unpack_lsb(packed, count, bits) {
        let v = u64::from(base) + delta;
        let v = u16::try_from(v)
            .map_err(|_| bad(format!("FOR word {v} overflows u16 (base {base})")))?;
        out.push(v);
    }
    Ok(out)
}

/// Encode a non-decreasing `u32` sequence as first value + bit-packed
/// deltas. Panics on a decreasing input (caller bug, not hostile data).
pub fn encode_delta_u32(values: &[u32]) -> Vec<u8> {
    assert!(
        values.windows(2).all(|w| w[0] <= w[1]),
        "delta codec requires a sorted sequence"
    );
    let first = values.first().copied().unwrap_or(0);
    let max_delta = values
        .windows(2)
        .map(|w| u64::from(w[1]) - u64::from(w[0]))
        .max()
        .unwrap_or(0);
    let bits = bits_for(max_delta);
    let deltas = values.len().saturating_sub(1);
    let mut out = Vec::with_capacity(FRAME_HEADER + payload_len(deltas, bits));
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    out.extend_from_slice(&first.to_le_bytes());
    out.push(bits);
    pack_lsb(
        &mut out,
        values.windows(2).map(|w| u64::from(w[1]) - u64::from(w[0])),
        bits,
    );
    out
}

/// Decode a [`encode_delta_u32`] frame, checking the count against
/// `expect`.
pub fn decode_delta_u32(bytes: &[u8], expect: usize) -> Result<Vec<u32>, MartError> {
    let (count, first, bits, packed) = split_frame(bytes, "delta frame")?;
    if count != expect {
        return Err(bad(format!(
            "delta frame holds {count} values, caller expects {expect}"
        )));
    }
    if bits > 32 {
        return Err(bad(format!("delta frame claims {bits} bits per delta")));
    }
    if count == 0 {
        return Ok(Vec::new());
    }
    let mut out = Vec::with_capacity(count);
    let mut cur = u64::from(first);
    out.push(first);
    for delta in unpack_lsb(packed, count - 1, bits) {
        cur += delta;
        let v = u32::try_from(cur)
            .map_err(|_| bad(format!("delta sequence overflows u32 at {cur}")))?;
        out.push(v);
    }
    Ok(out)
}

/// Validate a frame's header and payload length, returning
/// `(count, base, bits, packed)`. The payload must be *exactly* the
/// packed length the header implies — trailing bytes are as much a
/// corruption signal as truncation.
fn split_frame<'a>(bytes: &'a [u8], what: &str) -> Result<(usize, u32, u8, &'a [u8]), MartError> {
    if bytes.len() < FRAME_HEADER {
        return Err(bad(format!(
            "{what} truncated: {} bytes < {FRAME_HEADER}-byte header",
            bytes.len()
        )));
    }
    let count = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let base = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let bits = bytes[8];
    let words = if what.starts_with("delta") {
        count.saturating_sub(1)
    } else {
        count
    };
    let expect_payload = payload_len(words, bits);
    let packed = &bytes[FRAME_HEADER..];
    if packed.len() != expect_payload {
        return Err(bad(format!(
            "{what} payload is {} bytes, header implies {expect_payload}",
            packed.len()
        )));
    }
    Ok((count, base, bits, packed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_roundtrips_awkward_shapes() {
        let cases: Vec<Vec<u16>> = vec![
            vec![],
            vec![0],
            vec![7; 100],                                          // constant → 0 bits
            (0..1000).map(|i| (i % 32) as u16).collect(),          // 5-bit codes
            (0..257).map(|i| i as u16).collect(),                  // 9-bit span
            vec![u16::MAX, 0, u16::MAX, 12345],                    // full range
            (0..77).map(|i| 400 + (i * 13 % 29) as u16).collect(), // offset frame
        ];
        for values in cases {
            let enc = encode_for_u16(&values);
            let dec = decode_for_u16(&enc, values.len()).unwrap();
            assert_eq!(dec, values);
        }
    }

    #[test]
    fn for_saves_bytes_on_small_codes() {
        let values: Vec<u16> = (0..4096).map(|i| (i % 32) as u16).collect();
        let enc = encode_for_u16(&values);
        assert!(
            enc.len() < values.len() * 3 / 4,
            "5-bit codes must pack well below byte width ({} vs {})",
            enc.len(),
            values.len()
        );
    }

    #[test]
    fn delta_roundtrips_sorted_sequences() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![42],
            vec![0, 0, 0, 5, 5, 1000],
            (0..500).map(|i| i * i).collect(),
            vec![u32::MAX - 2, u32::MAX - 1, u32::MAX],
        ];
        for values in cases {
            let enc = encode_delta_u32(&values);
            let dec = decode_delta_u32(&enc, values.len()).unwrap();
            assert_eq!(dec, values);
        }
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn delta_rejects_unsorted_input() {
        encode_delta_u32(&[3, 1, 2]);
    }

    #[test]
    fn hostile_frames_are_structured_errors() {
        let good = encode_for_u16(&[1, 2, 3, 4, 5]);
        // Truncated header and payload.
        for cut in [0, 4, FRAME_HEADER - 1, good.len() - 1] {
            let err = decode_for_u16(&good[..cut], 5).unwrap_err();
            assert_eq!(err.kind(), "decode", "cut at {cut}");
        }
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0xAB);
        assert_eq!(decode_for_u16(&long, 5).unwrap_err().kind(), "decode");
        // Count disagrees with the caller's shape.
        assert_eq!(decode_for_u16(&good, 6).unwrap_err().kind(), "decode");
        // Impossible bit width.
        let mut wide = good.clone();
        wide[8] = 17;
        assert_eq!(decode_for_u16(&wide, 5).unwrap_err().kind(), "decode");
        // Base + delta overflowing u16.
        let mut overflow = encode_for_u16(&[u16::MAX - 1, u16::MAX]);
        overflow[4..8].copy_from_slice(&(u32::from(u16::MAX) + 1).to_le_bytes());
        assert_eq!(decode_for_u16(&overflow, 2).unwrap_err().kind(), "decode");
        // Delta frames reject the same classes.
        let dgood = encode_delta_u32(&[1, 5, 9]);
        assert_eq!(
            decode_delta_u32(&dgood[..3], 3).unwrap_err().kind(),
            "decode"
        );
        assert_eq!(decode_delta_u32(&dgood, 4).unwrap_err().kind(), "decode");
        let mut dwide = dgood.clone();
        dwide[8] = 33;
        assert_eq!(decode_delta_u32(&dwide, 3).unwrap_err().kind(), "decode");
    }

    #[test]
    fn bit_flips_never_panic() {
        let values: Vec<u16> = (0..200).map(|i| (i * 7 % 300) as u16).collect();
        let good = encode_for_u16(&values);
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut evil = good.clone();
                evil[byte] ^= 1 << bit;
                // Must return — any Ok is a (detected-elsewhere) silent
                // flip inside the packed payload; Err must be decode.
                if let Err(e) = decode_for_u16(&evil, values.len()) {
                    assert_eq!(e.kind(), "decode");
                }
            }
        }
    }
}

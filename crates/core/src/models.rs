//! The six prediction mechanisms of StencilMART.
//!
//! Classifiers for OC selection (paper §IV-D): **ConvNet** (CNN over the
//! binary stencil tensor), **FcNet** (dense layers over the tensor), and
//! **GBDT** (boosted trees over the Table II features).
//!
//! Regressors for cross-architecture performance prediction (paper §IV-E):
//! **MLP** (dense net over stencil + parameter + hardware features),
//! **ConvMLP** (CNN branch over the tensor joined with an MLP branch over
//! parameter + hardware features, Fig. 8), and **GBRegressor** (boosted
//! trees over the full feature vector).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use stencilmart_ml::data::{FeatureMatrix, MaxNormalizer};
use stencilmart_ml::gbdt::tree::TreeConfig;
use stencilmart_ml::nn::{
    export_params, import_params, predict_classes, predict_scalars, train_classifier,
    train_regressor, Conv2d, Conv3d, Dense, Flatten, Net, Relu, Reshape, Sequential, TrainConfig,
    TwoBranch,
};
use stencilmart_ml::tensor::Tensor;
use stencilmart_ml::{GbdtClassifier, GbdtConfig, GbdtRegressor};
use stencilmart_stencil::pattern::Dim;

/// Classification mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassifierKind {
    /// CNN over the binary stencil tensor.
    ConvNet,
    /// Dense net over the (flattened) tensor.
    FcNet,
    /// Gradient-boosted trees over Table II features.
    Gbdt,
}

impl ClassifierKind {
    /// All classifiers in the paper's Fig. 9 order.
    pub const ALL: [ClassifierKind; 3] = [
        ClassifierKind::ConvNet,
        ClassifierKind::FcNet,
        ClassifierKind::Gbdt,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ClassifierKind::ConvNet => "ConvNet",
            ClassifierKind::FcNet => "FcNet",
            ClassifierKind::Gbdt => "GBDT",
        }
    }
}

/// Regression mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegressorKind {
    /// Dense net over feature vectors.
    Mlp,
    /// Two-branch CNN + MLP (Fig. 8).
    ConvMlp,
    /// Gradient-boosted regression trees.
    GbRegressor,
}

impl RegressorKind {
    /// All regressors in the paper's Fig. 12 order.
    pub const ALL: [RegressorKind; 3] = [
        RegressorKind::ConvMlp,
        RegressorKind::Mlp,
        RegressorKind::GbRegressor,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RegressorKind::Mlp => "MLP",
            RegressorKind::ConvMlp => "ConvMLP",
            RegressorKind::GbRegressor => "GBRegressor",
        }
    }
}

/// MLP topology (swept in the paper's Fig. 13 sensitivity study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpShape {
    /// Number of hidden layers (paper sweeps 4–10; 7 is the paper's
    /// recommendation).
    pub hidden_layers: usize,
    /// Units per hidden layer (paper sweeps 2⁴–2¹⁰).
    pub width: usize,
}

impl Default for MlpShape {
    fn default() -> Self {
        MlpShape {
            hidden_layers: 7,
            width: 64,
        }
    }
}

/// Canvas side for the fixed-size tensor inputs (order 4 → 9).
fn canvas_side() -> usize {
    2 * stencilmart_stencil::MAX_ORDER as usize + 1
}

/// Flattened canvas length for a dimensionality.
pub fn canvas_len(dim: Dim) -> usize {
    canvas_side().pow(dim.rank() as u32)
}

/// Build the ConvNet classifier for a dimensionality (Fig. 7): conv →
/// ReLU → conv → ReLU → flatten → dense → softmax head.
pub fn build_convnet(dim: Dim, classes: usize, seed: u64) -> Sequential {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let s = canvas_side();
    match dim {
        Dim::D2 => {
            let c1 = Conv2d::new(1, 8, 3, &mut rng);
            let c2 = Conv2d::new(8, 8, 3, &mut rng);
            let flat = 8 * (s - 4) * (s - 4);
            Sequential::new()
                .push(Reshape::new(vec![1, s, s]))
                .push(c1)
                .push(Relu::new())
                .push(c2)
                .push(Relu::new())
                .push(Flatten::new())
                .push(Dense::new(flat, 64, &mut rng))
                .push(Relu::new())
                .push(Dense::new(64, classes, &mut rng))
        }
        Dim::D3 => {
            let c1 = Conv3d::new(1, 4, 3, &mut rng);
            let c2 = Conv3d::new(4, 4, 3, &mut rng);
            let flat = 4 * (s - 4).pow(3);
            Sequential::new()
                .push(Reshape::new(vec![1, s, s, s]))
                .push(c1)
                .push(Relu::new())
                .push(c2)
                .push(Relu::new())
                .push(Flatten::new())
                .push(Dense::new(flat, 64, &mut rng))
                .push(Relu::new())
                .push(Dense::new(64, classes, &mut rng))
        }
        Dim::D1 => unimplemented!("1-D stencils are not part of the evaluation"),
    }
}

/// Build the FcNet classifier: dense layers over the flattened tensor
/// (no convolution — the paper's weaker alternative).
pub fn build_fcnet(dim: Dim, classes: usize, seed: u64) -> Sequential {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let input = canvas_len(dim);
    Sequential::new()
        .push(Dense::new(input, 64, &mut rng))
        .push(Relu::new())
        .push(Dense::new(64, 64, &mut rng))
        .push(Relu::new())
        .push(Dense::new(64, classes, &mut rng))
}

/// Build the MLP regressor with the given shape.
pub fn build_mlp(in_dim: usize, shape: MlpShape, seed: u64) -> Sequential {
    assert!(shape.hidden_layers >= 1, "need at least one hidden layer");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = Sequential::new()
        .push(Dense::new(in_dim, shape.width, &mut rng))
        .push(Relu::new());
    for _ in 1..shape.hidden_layers {
        net = net
            .push(Dense::new(shape.width, shape.width, &mut rng))
            .push(Relu::new());
    }
    net.push(Dense::new(shape.width, 1, &mut rng))
}

/// Build the ConvMLP regressor (Fig. 8): a conv branch over the stencil
/// tensor merged with an MLP branch over parameter + hardware features.
pub fn build_convmlp(dim: Dim, feat_dim: usize, seed: u64) -> TwoBranch {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let s = canvas_side();
    let (conv, conv_out, conv_shape): (Sequential, usize, Vec<usize>) = match dim {
        Dim::D2 => {
            let c = Conv2d::new(1, 8, 3, &mut rng);
            (
                Sequential::new().push(c).push(Relu::new()),
                8 * (s - 2) * (s - 2),
                vec![1, s, s],
            )
        }
        Dim::D3 => {
            let c = Conv3d::new(1, 4, 3, &mut rng);
            (
                Sequential::new().push(c).push(Relu::new()),
                4 * (s - 2).pow(3),
                vec![1, s, s, s],
            )
        }
        Dim::D1 => unimplemented!("1-D stencils are not part of the evaluation"),
    };
    let mlp = Sequential::new()
        .push(Dense::new(feat_dim, 64, &mut rng))
        .push(Relu::new());
    let head = Sequential::new()
        .push(Dense::new(conv_out + 64, 64, &mut rng))
        .push(Relu::new())
        .push(Dense::new(64, 1, &mut rng));
    TwoBranch::new(canvas_len(dim), conv_shape, conv, mlp, head)
}

/// Default GBDT configuration for OC classification.
pub fn gbdt_classifier_config(seed: u64) -> GbdtConfig {
    GbdtConfig {
        rounds: 60,
        eta: 0.15,
        subsample: 0.9,
        tree: TreeConfig {
            max_depth: 4,
            min_child_weight: 1.0,
            lambda: 1.0,
            gamma: 0.0,
        },
        bins: 16,
        seed,
    }
}

/// Default GBDT configuration for performance regression.
pub fn gbdt_regressor_config(seed: u64) -> GbdtConfig {
    GbdtConfig {
        rounds: 250,
        eta: 0.08,
        subsample: 0.8,
        tree: TreeConfig {
            max_depth: 7,
            min_child_weight: 2.0,
            lambda: 1.0,
            gamma: 0.0,
        },
        bins: 64,
        seed,
    }
}

/// Default network training configuration for classifiers.
pub fn classifier_train_config(seed: u64) -> TrainConfig {
    TrainConfig {
        epochs: 60,
        batch_size: 32,
        lr: 2e-3,
        seed,
    }
}

/// Default network training configuration for regressors.
pub fn regressor_train_config(seed: u64) -> TrainConfig {
    TrainConfig {
        epochs: 40,
        batch_size: 128,
        lr: 1.5e-3,
        seed,
    }
}

/// The model half of a trained classifier.
enum ClassifierModel {
    /// Tensor-input network (ConvNet or FcNet).
    Network(Box<dyn Net>),
    /// Feature-input boosted trees.
    Trees(GbdtClassifier),
}

/// A trained OC-selection classifier, carrying the rebuild spec (kind,
/// dimensionality, class count, seed) alongside the fitted model so it
/// can be serialized as spec + weights and restored bit-identically.
pub struct TrainedClassifier {
    kind: ClassifierKind,
    dim: Dim,
    classes: usize,
    seed: u64,
    model: ClassifierModel,
}

/// Serializable weights of one [`TrainedClassifier`]. Networks store a
/// flat parameter vector (the architecture is rebuilt from the spec);
/// boosted trees serialize their full structure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ClassifierWeights {
    /// Flat parameter vector in `visit_params` order.
    Network(Vec<f32>),
    /// Full boosted-tree model.
    Trees(GbdtClassifier),
}

/// The serializable state of a [`TrainedClassifier`]: rebuild spec plus
/// weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifierState {
    /// Classification mechanism.
    pub kind: ClassifierKind,
    /// Trained dimensionality.
    pub dim: Dim,
    /// Number of prediction classes.
    pub classes: usize,
    /// Architecture/initialization seed.
    pub seed: u64,
    /// Model weights.
    pub weights: ClassifierWeights,
}

impl TrainedClassifier {
    /// Train the given mechanism on the selected rows.
    #[allow(clippy::too_many_arguments)]
    pub fn train(
        kind: ClassifierKind,
        dim: Dim,
        classes: usize,
        features: &FeatureMatrix,
        tensors: &FeatureMatrix,
        labels: &[usize],
        train_idx: &[usize],
        seed: u64,
    ) -> TrainedClassifier {
        let train_labels: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
        let model = match kind {
            ClassifierKind::Gbdt => {
                let x = features.select(train_idx);
                ClassifierModel::Trees(GbdtClassifier::fit(
                    &x,
                    &train_labels,
                    classes,
                    &gbdt_classifier_config(seed),
                ))
            }
            ClassifierKind::ConvNet | ClassifierKind::FcNet => {
                let x = matrix_to_tensor(&tensors.select(train_idx));
                let mut net = build_classifier_net(kind, dim, classes, seed);
                train_classifier(
                    net.as_mut(),
                    &x,
                    &train_labels,
                    &classifier_train_config(seed),
                );
                ClassifierModel::Network(net)
            }
        };
        TrainedClassifier {
            kind,
            dim,
            classes,
            seed,
            model,
        }
    }

    /// Predict classes for the selected rows.
    pub fn predict(
        &mut self,
        features: &FeatureMatrix,
        tensors: &FeatureMatrix,
        idx: &[usize],
    ) -> Vec<usize> {
        match &mut self.model {
            ClassifierModel::Trees(m) => m.predict(&features.select(idx)),
            ClassifierModel::Network(net) => {
                let x = matrix_to_tensor(&tensors.select(idx));
                predict_classes(net.as_mut(), &x)
            }
        }
    }

    /// Classification mechanism.
    pub fn kind(&self) -> ClassifierKind {
        self.kind
    }

    /// Number of prediction classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Highest feature index the boosted trees read (`None` for
    /// networks and pure-leaf trees) — bundle loading validates this
    /// against the feature width before any prediction.
    pub fn max_feature_index(&self) -> Option<usize> {
        match &self.model {
            ClassifierModel::Trees(m) => m.max_feature_index(),
            ClassifierModel::Network(_) => None,
        }
    }

    /// Snapshot the serializable state (spec + weights).
    pub fn to_state(&mut self) -> ClassifierState {
        let weights = match &mut self.model {
            ClassifierModel::Trees(m) => ClassifierWeights::Trees(m.clone()),
            ClassifierModel::Network(net) => {
                ClassifierWeights::Network(export_params(net.as_mut()))
            }
        };
        ClassifierState {
            kind: self.kind,
            dim: self.dim,
            classes: self.classes,
            seed: self.seed,
            weights,
        }
    }

    /// Restore from a state snapshot: rebuild the architecture from the
    /// spec, then overwrite the weights. Errors (never panics) when the
    /// spec and weights disagree — the symptom of a corrupt or
    /// hand-edited bundle.
    pub fn from_state(state: ClassifierState) -> Result<TrainedClassifier, String> {
        if state.classes == 0 {
            return Err("classifier state declares zero classes".to_string());
        }
        let model = match (state.kind, state.weights) {
            (ClassifierKind::Gbdt, ClassifierWeights::Trees(m)) => {
                if m.classes() != state.classes {
                    return Err(format!(
                        "classifier state declares {} classes but trees have {}",
                        state.classes,
                        m.classes()
                    ));
                }
                ClassifierModel::Trees(m)
            }
            (ClassifierKind::ConvNet | ClassifierKind::FcNet, ClassifierWeights::Network(flat)) => {
                if state.dim == Dim::D1 {
                    return Err("1-D classifiers are not supported".to_string());
                }
                let mut net =
                    build_classifier_net(state.kind, state.dim, state.classes, state.seed);
                import_params(net.as_mut(), &flat)?;
                ClassifierModel::Network(net)
            }
            (kind, _) => {
                return Err(format!(
                    "classifier weights do not match mechanism {}",
                    kind.name()
                ));
            }
        };
        Ok(TrainedClassifier {
            kind: state.kind,
            dim: state.dim,
            classes: state.classes,
            seed: state.seed,
            model,
        })
    }
}

/// Build the (untrained) network for a network-based classifier kind.
fn build_classifier_net(kind: ClassifierKind, dim: Dim, classes: usize, seed: u64) -> Box<dyn Net> {
    match kind {
        ClassifierKind::ConvNet => Box::new(build_convnet(dim, classes, seed)),
        ClassifierKind::FcNet => Box::new(build_fcnet(dim, classes, seed)),
        ClassifierKind::Gbdt => unreachable!("GBDT classifiers have no network"),
    }
}

/// The model half of a trained regressor.
enum RegressorModel {
    /// Feature-input MLP with its input normalizer.
    Mlp {
        /// The trained network.
        net: Sequential,
        /// Fitted on the training features.
        norm: MaxNormalizer,
    },
    /// Two-branch ConvMLP: tensor branch raw, feature branch normalized.
    ConvMlp {
        /// The trained network.
        net: TwoBranch,
        /// Fitted on the training features.
        norm: MaxNormalizer,
    },
    /// Boosted trees over raw features.
    Trees(GbdtRegressor),
}

/// A trained performance regressor (predicts `ln(time_ms)`), carrying
/// its rebuild spec (kind, dimensionality, MLP shape, feature width,
/// seed) alongside the fitted model.
pub struct TrainedRegressor {
    kind: RegressorKind,
    dim: Dim,
    shape: MlpShape,
    feat_cols: usize,
    seed: u64,
    model: RegressorModel,
}

/// Serializable weights of one [`TrainedRegressor`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RegressorWeights {
    /// MLP: flat parameter vector plus the fitted input normalizer.
    Mlp {
        /// Flat parameters in `visit_params` order.
        params: Vec<f32>,
        /// Fitted input normalizer.
        norm: MaxNormalizer,
    },
    /// ConvMLP: flat parameter vector plus the fitted input normalizer.
    ConvMlp {
        /// Flat parameters in `visit_params` order.
        params: Vec<f32>,
        /// Fitted input normalizer.
        norm: MaxNormalizer,
    },
    /// Full boosted-tree model.
    Trees(GbdtRegressor),
}

/// The serializable state of a [`TrainedRegressor`]: rebuild spec plus
/// weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressorState {
    /// Regression mechanism.
    pub kind: RegressorKind,
    /// Trained dimensionality.
    pub dim: Dim,
    /// MLP topology.
    pub shape: MlpShape,
    /// Width of the regression feature rows.
    pub feat_cols: usize,
    /// Architecture/initialization seed.
    pub seed: u64,
    /// Model weights.
    pub weights: RegressorWeights,
}

impl TrainedRegressor {
    /// Train the given mechanism on the selected rows.
    #[allow(clippy::too_many_arguments)]
    pub fn train(
        kind: RegressorKind,
        dim: Dim,
        shape: MlpShape,
        features: &FeatureMatrix,
        tensors: &FeatureMatrix,
        targets_ln: &[f32],
        train_idx: &[usize],
        seed: u64,
    ) -> TrainedRegressor {
        let y: Vec<f32> = train_idx.iter().map(|&i| targets_ln[i]).collect();
        let model = match kind {
            RegressorKind::GbRegressor => {
                let x = features.select(train_idx);
                RegressorModel::Trees(GbdtRegressor::fit(&x, &y, &gbdt_regressor_config(seed)))
            }
            RegressorKind::Mlp => {
                let x_raw = features.select(train_idx);
                let norm = MaxNormalizer::fit(&x_raw);
                let x = matrix_to_tensor(&norm.transform(&x_raw));
                let mut net = build_mlp(features.cols(), shape, seed);
                train_regressor(&mut net, &x, &y, &regressor_train_config(seed));
                RegressorModel::Mlp { net, norm }
            }
            RegressorKind::ConvMlp => {
                let f_raw = features.select(train_idx);
                let norm = MaxNormalizer::fit(&f_raw);
                let f = norm.transform(&f_raw);
                let t = tensors.select(train_idx);
                let x = concat_tensor(&t, &f);
                let mut net = build_convmlp(dim, features.cols(), seed);
                train_regressor(&mut net, &x, &y, &regressor_train_config(seed));
                RegressorModel::ConvMlp { net, norm }
            }
        };
        TrainedRegressor {
            kind,
            dim,
            shape,
            feat_cols: features.cols(),
            seed,
            model,
        }
    }

    /// Predict `ln(time_ms)` for the selected rows.
    pub fn predict_ln(
        &mut self,
        features: &FeatureMatrix,
        tensors: &FeatureMatrix,
        idx: &[usize],
    ) -> Vec<f32> {
        match &mut self.model {
            RegressorModel::Trees(m) => m.predict(&features.select(idx)),
            RegressorModel::Mlp { net, norm } => {
                let x = matrix_to_tensor(&norm.transform(&features.select(idx)));
                predict_scalars(net, &x)
            }
            RegressorModel::ConvMlp { net, norm } => {
                let f = norm.transform(&features.select(idx));
                let t = tensors.select(idx);
                predict_scalars(net, &concat_tensor(&t, &f))
            }
        }
    }

    /// Predict `ln(time_ms)` for ad-hoc rows (e.g. hardware-swapped
    /// what-if rows from the rental advisor).
    pub fn predict_ln_rows(
        &mut self,
        feature_rows: &FeatureMatrix,
        tensor_rows: &FeatureMatrix,
    ) -> Vec<f32> {
        let idx: Vec<usize> = (0..feature_rows.rows()).collect();
        self.predict_ln(feature_rows, tensor_rows, &idx)
    }

    /// Regression mechanism.
    pub fn kind(&self) -> RegressorKind {
        self.kind
    }

    /// Width of the regression feature rows the model was trained on.
    pub fn feat_cols(&self) -> usize {
        self.feat_cols
    }

    /// Highest feature index the boosted trees read (`None` for
    /// networks and pure-leaf trees).
    pub fn max_feature_index(&self) -> Option<usize> {
        match &self.model {
            RegressorModel::Trees(m) => m.max_feature_index(),
            _ => None,
        }
    }

    /// Snapshot the serializable state (spec + weights).
    pub fn to_state(&mut self) -> RegressorState {
        let weights = match &mut self.model {
            RegressorModel::Trees(m) => RegressorWeights::Trees(m.clone()),
            RegressorModel::Mlp { net, norm } => RegressorWeights::Mlp {
                params: export_params(net),
                norm: norm.clone(),
            },
            RegressorModel::ConvMlp { net, norm } => RegressorWeights::ConvMlp {
                params: export_params(net),
                norm: norm.clone(),
            },
        };
        RegressorState {
            kind: self.kind,
            dim: self.dim,
            shape: self.shape,
            feat_cols: self.feat_cols,
            seed: self.seed,
            weights,
        }
    }

    /// Restore from a state snapshot: rebuild the architecture from the
    /// spec, then overwrite the weights. Errors (never panics) when the
    /// spec and weights disagree.
    pub fn from_state(state: RegressorState) -> Result<TrainedRegressor, String> {
        let model = match (state.kind, state.weights) {
            (RegressorKind::GbRegressor, RegressorWeights::Trees(m)) => RegressorModel::Trees(m),
            (RegressorKind::Mlp, RegressorWeights::Mlp { params, norm }) => {
                if state.shape.hidden_layers < 1 {
                    return Err("MLP state declares zero hidden layers".to_string());
                }
                if state.feat_cols == 0 {
                    return Err("MLP state declares zero feature columns".to_string());
                }
                let mut net = build_mlp(state.feat_cols, state.shape, state.seed);
                import_params(&mut net, &params)?;
                RegressorModel::Mlp { net, norm }
            }
            (RegressorKind::ConvMlp, RegressorWeights::ConvMlp { params, norm }) => {
                if state.dim == Dim::D1 {
                    return Err("1-D regressors are not supported".to_string());
                }
                if state.feat_cols == 0 {
                    return Err("ConvMLP state declares zero feature columns".to_string());
                }
                let mut net = build_convmlp(state.dim, state.feat_cols, state.seed);
                import_params(&mut net, &params)?;
                RegressorModel::ConvMlp { net, norm }
            }
            (kind, _) => {
                return Err(format!(
                    "regressor weights do not match mechanism {}",
                    kind.name()
                ));
            }
        };
        Ok(TrainedRegressor {
            kind: state.kind,
            dim: state.dim,
            shape: state.shape,
            feat_cols: state.feat_cols,
            seed: state.seed,
            model,
        })
    }
}

/// Train the GBDT performance regressor from an on-disk
/// [`BinStore`](crate::binstore::BinStore) without ever
/// materializing the feature matrix: targets stream out
/// shard by shard, and the level-wise engine pulls bin codes through
/// the store's bounded shard cache. `cfg.bins` is taken from the store
/// (binning happened at store-build time); with the store built at
/// [`gbdt_regressor_config`]`(seed).bins` the fitted model is
/// bit-identical to the resident [`GbdtRegressor::fit`].
pub fn train_gb_regressor_streamed(
    store: &crate::binstore::BinStore,
    seed: u64,
    cache_shards: usize,
) -> Result<GbdtRegressor, crate::error::MartError> {
    let mut cfg = gbdt_regressor_config(seed);
    cfg.bins = store.n_bins();
    let y = store.all_targets()?;
    let bins = store.sharded_bins(cache_shards);
    Ok(GbdtRegressor::fit_streamed(&bins, &y, &cfg))
}

/// Train the GBDT OC classifier from an on-disk
/// [`BinStore`](crate::binstore::BinStore), using the
/// store's per-row labels. Same streaming + bit-identity contract as
/// [`train_gb_regressor_streamed`].
pub fn train_gbdt_classifier_streamed(
    store: &crate::binstore::BinStore,
    classes: usize,
    seed: u64,
    cache_shards: usize,
) -> Result<GbdtClassifier, crate::error::MartError> {
    let mut cfg = gbdt_classifier_config(seed);
    cfg.bins = store.n_bins();
    let labels: Vec<usize> = store.all_labels()?.iter().map(|&l| l as usize).collect();
    let bins = store.sharded_bins(cache_shards);
    Ok(GbdtClassifier::fit_streamed(&bins, &labels, classes, &cfg))
}

/// Train the MLP performance regressor by streaming minibatches from
/// the store's raw-feature chunks (one shard resident, the next
/// prefetched on a background thread). Returns the trained network and
/// the per-epoch loss history.
pub fn train_mlp_regressor_streamed(
    store: &crate::binstore::BinStore,
    shape: MlpShape,
    seed: u64,
) -> Result<(Sequential, Vec<f32>), crate::error::MartError> {
    let mut net = build_mlp(store.cols(), shape, seed);
    let history = stencilmart_ml::nn::train_regressor_streamed(
        &mut net,
        store,
        &regressor_train_config(seed),
    )?;
    Ok((net, history))
}

/// Convert a feature matrix into a 2-D training tensor.
pub fn matrix_to_tensor(m: &FeatureMatrix) -> Tensor {
    Tensor::from_vec(&[m.rows(), m.cols()], m.data().to_vec())
}

/// Concatenate tensor columns before feature columns (TwoBranch layout).
fn concat_tensor(tensors: &FeatureMatrix, features: &FeatureMatrix) -> Tensor {
    let a = matrix_to_tensor(tensors);
    let b = matrix_to_tensor(features);
    Tensor::concat_cols(&a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencilmart_ml::nn::Net;

    #[test]
    fn convnet_shapes_for_both_dims() {
        for dim in [Dim::D2, Dim::D3] {
            let mut net = build_convnet(dim, 5, 0);
            let n = canvas_len(dim);
            let x = Tensor::from_vec(&[2, n], vec![0.5; 2 * n]);
            let y = net.forward(&x, true);
            assert_eq!(y.shape(), &[2, 5], "{dim}");
            net.backward(&y);
        }
    }

    #[test]
    fn fcnet_and_mlp_shapes() {
        let mut fc = build_fcnet(Dim::D2, 5, 0);
        let x = Tensor::from_vec(&[1, 81], vec![0.0; 81]);
        assert_eq!(fc.forward(&x, false).shape(), &[1, 5]);

        let mut mlp = build_mlp(23, MlpShape::default(), 0);
        let x = Tensor::from_vec(&[3, 23], vec![0.1; 69]);
        assert_eq!(mlp.forward(&x, false).shape(), &[3, 1]);
        // 7 hidden layers → 8 dense layers → 8 ReLU-less head: count
        // layers = 7×(dense+relu) + final dense = 15.
        assert_eq!(mlp.len(), 15);
    }

    #[test]
    fn convmlp_accepts_joint_input() {
        for dim in [Dim::D2, Dim::D3] {
            let mut net = build_convmlp(dim, 23, 0);
            let n = canvas_len(dim) + 23;
            let x = Tensor::from_vec(&[2, n], vec![0.25; 2 * n]);
            let y = net.forward(&x, true);
            assert_eq!(y.shape(), &[2, 1], "{dim}");
            net.backward(&y);
        }
    }

    #[test]
    fn trained_classifier_learns_feature_rule() {
        // Label = 1 when feature 0 > 0.5: all three mechanisms must beat
        // chance easily.
        let n = 120;
        let mut feat_rows = Vec::new();
        let mut tensor_rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let v = i as f32 / n as f32;
            feat_rows.push(vec![v; 11]);
            // Put the signal in the tensor too (count of ones).
            let mut t = vec![0.0f32; 81];
            let ones = (v * 80.0) as usize;
            t[..ones].fill(1.0);
            tensor_rows.push(t);
            labels.push(usize::from(v > 0.5));
        }
        let features = FeatureMatrix::from_rows(feat_rows.iter().map(Vec::as_slice));
        let tensors = FeatureMatrix::from_rows(tensor_rows.iter().map(Vec::as_slice));
        let idx: Vec<usize> = (0..n).collect();
        for kind in ClassifierKind::ALL {
            let mut model =
                TrainedClassifier::train(kind, Dim::D2, 2, &features, &tensors, &labels, &idx, 1);
            let preds = model.predict(&features, &tensors, &idx);
            let acc = preds.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / n as f64;
            assert!(acc > 0.9, "{} accuracy {acc}", kind.name());
        }
    }

    #[test]
    fn trained_regressor_fits_simple_target() {
        let n = 200;
        let mut feat_rows = Vec::new();
        let mut tensor_rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let v = i as f32 / n as f32;
            feat_rows.push(vec![v, 1.0 - v, 0.5]);
            tensor_rows.push(vec![v; 81]);
            y.push(2.0 * v - 1.0);
        }
        let features = FeatureMatrix::from_rows(feat_rows.iter().map(Vec::as_slice));
        let tensors = FeatureMatrix::from_rows(tensor_rows.iter().map(Vec::as_slice));
        let idx: Vec<usize> = (0..n).collect();
        for kind in RegressorKind::ALL {
            let mut model = TrainedRegressor::train(
                kind,
                Dim::D2,
                MlpShape {
                    hidden_layers: 3,
                    width: 32,
                },
                &features,
                &tensors,
                &y,
                &idx,
                2,
            );
            let preds = model.predict_ln(&features, &tensors, &idx);
            let mse: f32 = preds
                .iter()
                .zip(&y)
                .map(|(p, t)| (p - t) * (p - t))
                .sum::<f32>()
                / n as f32;
            assert!(mse < 0.1, "{} mse {mse}", kind.name());
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ClassifierKind::ConvNet.name(), "ConvNet");
        assert_eq!(RegressorKind::GbRegressor.name(), "GBRegressor");
    }

    fn tiny_classification_data() -> (FeatureMatrix, FeatureMatrix, Vec<usize>) {
        let n = 40;
        let mut feat_rows = Vec::new();
        let mut tensor_rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let v = i as f32 / n as f32;
            feat_rows.push(vec![v; 11]);
            let mut t = vec![0.0f32; 81];
            t[..(v * 80.0) as usize].fill(1.0);
            tensor_rows.push(t);
            labels.push(usize::from(v > 0.5));
        }
        (
            FeatureMatrix::from_rows(feat_rows.iter().map(Vec::as_slice)),
            FeatureMatrix::from_rows(tensor_rows.iter().map(Vec::as_slice)),
            labels,
        )
    }

    #[test]
    fn classifier_state_roundtrip_is_bit_identical() {
        let (features, tensors, labels) = tiny_classification_data();
        let idx: Vec<usize> = (0..labels.len()).collect();
        for kind in ClassifierKind::ALL {
            let mut model =
                TrainedClassifier::train(kind, Dim::D2, 2, &features, &tensors, &labels, &idx, 1);
            let state = model.to_state();
            let json = serde_json::to_string(&state).unwrap();
            let restored_state: ClassifierState = serde_json::from_str(&json).unwrap();
            let mut restored = TrainedClassifier::from_state(restored_state).unwrap();
            assert_eq!(
                model.predict(&features, &tensors, &idx),
                restored.predict(&features, &tensors, &idx),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn regressor_state_roundtrip_is_bit_identical() {
        let n = 60;
        let mut feat_rows = Vec::new();
        let mut tensor_rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let v = i as f32 / n as f32;
            feat_rows.push(vec![v, 1.0 - v, 0.5]);
            tensor_rows.push(vec![v; 81]);
            y.push(2.0 * v - 1.0);
        }
        let features = FeatureMatrix::from_rows(feat_rows.iter().map(Vec::as_slice));
        let tensors = FeatureMatrix::from_rows(tensor_rows.iter().map(Vec::as_slice));
        let idx: Vec<usize> = (0..n).collect();
        let shape = MlpShape {
            hidden_layers: 2,
            width: 16,
        };
        for kind in RegressorKind::ALL {
            let mut model =
                TrainedRegressor::train(kind, Dim::D2, shape, &features, &tensors, &y, &idx, 2);
            let state = model.to_state();
            let json = serde_json::to_string(&state).unwrap();
            let restored_state: RegressorState = serde_json::from_str(&json).unwrap();
            let mut restored = TrainedRegressor::from_state(restored_state).unwrap();
            let a = model.predict_ln(&features, &tensors, &idx);
            let b = restored.predict_ln(&features, &tensors, &idx);
            assert_eq!(a, b, "{} predictions must be bit-identical", kind.name());
        }
    }

    #[test]
    fn from_state_rejects_spec_weight_mismatches() {
        let (features, tensors, labels) = tiny_classification_data();
        let idx: Vec<usize> = (0..labels.len()).collect();
        let mut gbdt = TrainedClassifier::train(
            ClassifierKind::Gbdt,
            Dim::D2,
            2,
            &features,
            &tensors,
            &labels,
            &idx,
            1,
        );
        // Tree weights declared as a network mechanism.
        let mut state = gbdt.to_state();
        state.kind = ClassifierKind::ConvNet;
        assert!(TrainedClassifier::from_state(state)
            .err()
            .unwrap()
            .contains("do not match"));
        // Wrong class count.
        let mut state = gbdt.to_state();
        state.classes = 7;
        assert!(TrainedClassifier::from_state(state)
            .err()
            .unwrap()
            .contains("classes"));
        // Truncated network parameters.
        let mut fc = TrainedClassifier::train(
            ClassifierKind::FcNet,
            Dim::D2,
            2,
            &features,
            &tensors,
            &labels,
            &idx,
            1,
        );
        let mut state = fc.to_state();
        if let ClassifierWeights::Network(p) = &mut state.weights {
            p.truncate(10);
        }
        assert!(TrainedClassifier::from_state(state)
            .err()
            .unwrap()
            .contains("parameter count mismatch"));
    }
}

//! Drivers that regenerate every table and figure of the paper's
//! evaluation. Each driver returns a structured result with a `render()`
//! method producing the text table the `experiments` binary prints.

use crate::advisor::{evaluate_advisor, AdvisorResult, Criterion};
use crate::baselines::{speedups_over_baseline, BaselinePolicy};
use crate::classify::{evaluate_classifier, ClassifierEval};
use crate::config::PipelineConfig;
use crate::dataset::{ClassificationDataset, ProfiledCorpus, RegressionDataset};
use crate::models::{ClassifierKind, MlpShape, RegressorKind};
use crate::pcc;
use crate::regress::{evaluate_regressor, RegressorEval};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use stencilmart_gpusim::{
    host_machines, profile_stencil, GpuArch, GpuId, OptCombo, ProfileConfig, Vendor,
};
use stencilmart_obs as obs;
use stencilmart_stencil::canonical::{suite, CanonicalStencil};
use stencilmart_stencil::features::FeatureConfig;
use stencilmart_stencil::pattern::Dim;

/// Shared experiment state: the profiled corpora and OC mergings, built
/// once and reused across figures.
pub struct ExperimentContext {
    /// The pipeline configuration.
    pub cfg: PipelineConfig,
    /// One corpus per dimensionality (2-D, 3-D).
    pub corpora: Vec<ProfiledCorpus>,
    /// Matching OC mergings.
    pub mergings: Vec<pcc::OcMerging>,
}

impl ExperimentContext {
    /// Build the corpora and mergings for 2-D and 3-D stencils.
    pub fn build(cfg: PipelineConfig) -> ExperimentContext {
        let _span = obs::span("context_build");
        let mut corpora = Vec::new();
        let mut mergings = Vec::new();
        for dim in [Dim::D2, Dim::D3] {
            let corpus = ProfiledCorpus::build(&cfg, dim);
            let merging = corpus.derive_merging(cfg.oc_classes);
            corpora.push(corpus);
            mergings.push(merging);
        }
        ExperimentContext {
            cfg,
            corpora,
            mergings,
        }
    }

    /// The corpus for a dimensionality.
    pub fn corpus(&self, dim: Dim) -> &ProfiledCorpus {
        self.corpora
            .iter()
            .find(|c| c.dim == dim)
            .expect("dimensionality was built")
    }

    /// The OC merging for a dimensionality.
    pub fn merging(&self, dim: Dim) -> &pcc::OcMerging {
        let idx = self
            .corpora
            .iter()
            .position(|c| c.dim == dim)
            .expect("dimensionality was built");
        &self.mergings[idx]
    }

    /// Dimensionalities in evaluation order.
    pub fn dims(&self) -> Vec<Dim> {
        self.corpora.iter().map(|c| c.dim).collect()
    }
}

fn fmt_row(cells: &[String], widths: &[usize]) -> String {
    let mut s = String::new();
    for (c, w) in cells.iter().zip(widths) {
        let _ = write!(s, "{c:>w$}  ", w = w);
    }
    s.trim_end().to_string()
}

// ---------------------------------------------------------------------------
// Tables I–IV
// ---------------------------------------------------------------------------

/// Render Table I: the optimizations, their abbreviations, constraints,
/// and the enumerated valid OCs.
pub fn table1() -> String {
    let mut s = String::from(
        "Table I: optimizations of stencil computation on GPUs\n\
         No.  Optimization        Abbrev  Constraint\n\
         1    Streaming           ST      -\n\
         2    Block Merging       BM      not valid when CM enabled\n\
         3    Cyclic Merging      CM      not valid when BM enabled\n\
         4    Retiming            RT      only valid when ST enabled\n\
         5    Prefetching         PR      only valid when ST enabled\n\
         6    Temporal Blocking   TB      -\n\n",
    );
    let ocs = OptCombo::enumerate();
    let _ = writeln!(s, "Valid optimization combinations ({}):", ocs.len());
    for (i, oc) in ocs.iter().enumerate() {
        let _ = writeln!(s, "  {:>2}  {}", i, oc.name());
    }
    s
}

/// Render Table II: the candidate feature set.
pub fn table2() -> String {
    let cfg = FeatureConfig::table2();
    let mut s = String::from("Table II: the candidate feature set of a stencil\n");
    for (i, name) in cfg.names().iter().enumerate() {
        let _ = writeln!(s, "  {:>2}  {name}", i + 1);
    }
    s
}

/// Render Tables III and IV: GPUs and host machines.
pub fn table3_and_4() -> String {
    let mut s = String::from(
        "Table III: the GPUs used for evaluation\n\
         GPU      Gen      Mem     Mem BW      SMs  FP64 TFLOPS  Rental\n",
    );
    for arch in GpuArch::all() {
        let rental = arch
            .rental_per_hr
            .map_or("-".to_string(), |r| format!("${r:.2}/hr"));
        let _ = writeln!(
            s,
            "{:<8} {:<8} {:>3.0} GB  {:>5.0} GB/s  {:>3}  {:>11.2}  {rental}",
            arch.id.name(),
            arch.generation,
            arch.mem_gib,
            arch.mem_bw_gbs,
            arch.sms,
            arch.fp64_tflops,
        );
    }
    s.push_str("\nTable IV: the machines used for evaluation\n");
    for h in host_machines() {
        let gpus: Vec<&str> = h.gpus.iter().map(|g| g.name()).collect();
        let _ = writeln!(
            s,
            "{:<18} {:.1} GHz  {:>2} cores  {:>3} GB  {}",
            h.cpu,
            h.freq_ghz,
            h.cores,
            h.main_mem_gib,
            gpus.join(", ")
        );
    }
    s
}

// ---------------------------------------------------------------------------
// Fig. 1 — best-vs-worst OC gap per canonical stencil on V100
// ---------------------------------------------------------------------------

/// Result of the Fig. 1 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Result {
    /// `(stencil name, worst/best speedup)` per canonical stencil.
    pub gaps: Vec<(String, f64)>,
    /// Arithmetic mean gap (paper: ≈9.95×).
    pub average: f64,
}

/// Run Fig. 1: profile the canonical suite on V100 and report the
/// best-OC speedup over the worst surviving OC.
pub fn fig1(profile_cfg: &ProfileConfig) -> Fig1Result {
    let _span = obs::span("fig1");
    let arch = GpuArch::preset(GpuId::V100);
    let mut gaps = Vec::new();
    for (i, c) in suite().iter().enumerate() {
        let p = profile_stencil(&c.pattern, c.grid, &arch, profile_cfg, 1000 + i as u64);
        let best = p.best_time_ms().expect("canonical stencils run");
        let worst = p.worst_best_time_ms().expect("canonical stencils run");
        gaps.push((c.name.clone(), worst / best));
    }
    let average = gaps.iter().map(|(_, g)| g).sum::<f64>() / gaps.len() as f64;
    Fig1Result { gaps, average }
}

impl Fig1Result {
    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut s =
            String::from("Fig. 1: performance of the best OC normalized to the worst OC (V100)\n");
        for (name, gap) in &self.gaps {
            let _ = writeln!(s, "  {name:<12} {gap:>8.2}x");
        }
        let _ = writeln!(s, "  {:<12} {:>8.2}x", "AVERAGE", self.average);
        s
    }
}

// ---------------------------------------------------------------------------
// Fig. 2 — distribution of best OCs per GPU
// ---------------------------------------------------------------------------

/// Result of the Fig. 2 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Per GPU: `(oc name, number of stencils where it is best)` for OCs
    /// with at least one win.
    pub wins: Vec<(GpuId, Vec<(String, usize)>)>,
    /// Fraction of stencils whose best OC enables streaming, per GPU.
    pub streaming_share: Vec<(GpuId, f64)>,
}

/// Run Fig. 2 over the context's corpora (both dimensionalities pooled).
pub fn fig2(ctx: &ExperimentContext) -> Fig2Result {
    let ocs = OptCombo::enumerate();
    let mut wins = Vec::new();
    let mut streaming_share = Vec::new();
    for &gpu in &ctx.cfg.gpus {
        let mut counts = vec![0usize; ocs.len()];
        let mut st_wins = 0usize;
        let mut total = 0usize;
        for corpus in &ctx.corpora {
            for p in corpus.profiles_for(gpu) {
                if let Some(best) = p.best_oc() {
                    counts[best.oc.index()] += 1;
                    if best.oc.st {
                        st_wins += 1;
                    }
                    total += 1;
                }
            }
        }
        let list = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (ocs[i].name(), c))
            .collect();
        wins.push((gpu, list));
        streaming_share.push((gpu, st_wins as f64 / total.max(1) as f64));
    }
    Fig2Result {
        wins,
        streaming_share,
    }
}

impl Fig2Result {
    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Fig. 2: number of stencils for which each OC achieves the best performance\n",
        );
        for (gpu, list) in &self.wins {
            let _ = writeln!(s, "  {gpu}:");
            let mut sorted = list.clone();
            sorted.sort_by_key(|x| std::cmp::Reverse(x.1));
            for (name, count) in sorted {
                let _ = writeln!(s, "    {name:<16} {count:>4}");
            }
        }
        s.push_str("  share of stencils won by streaming OCs:\n");
        for (gpu, share) in &self.streaming_share {
            let _ = writeln!(s, "    {gpu:<8} {:>5.1}%", share * 100.0);
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Fig. 3 — top-100 pairwise-OC PCC distribution
// ---------------------------------------------------------------------------

/// Result of the Fig. 3 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Per GPU: summary of its top-k PCC values (min, median, max).
    pub per_gpu: Vec<(GpuId, PccSummary)>,
    /// Fraction of top-k pairs common to all GPUs (paper: ≈28%).
    pub intersection: f64,
    /// The k used (paper: 100).
    pub k: usize,
}

/// Five-number-ish summary of a PCC value list.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PccSummary {
    /// Smallest value in the top-k list.
    pub min: f64,
    /// Median value.
    pub median: f64,
    /// Largest value.
    pub max: f64,
}

/// Run Fig. 3 over the context's corpora (pooling dimensionalities).
pub fn fig3(ctx: &ExperimentContext, k: usize) -> Fig3Result {
    let mut per_gpu = Vec::new();
    let mut pcc_mats = Vec::new();
    for &gpu in &ctx.cfg.gpus {
        // Pool both dims' stencils into one time matrix.
        let mut matrix = Vec::new();
        for corpus in &ctx.corpora {
            matrix.extend(pcc::oc_time_matrix(corpus.profiles_for(gpu)));
        }
        let mat = pcc::pairwise_pcc(&matrix);
        let mut values: Vec<f64> = pcc::top_pairs(&mat, k)
            .into_iter()
            .map(|(_, _, v)| v)
            .collect();
        values.sort_by(f64::total_cmp);
        per_gpu.push((
            gpu,
            PccSummary {
                min: *values.first().unwrap_or(&0.0),
                median: values.get(values.len() / 2).copied().unwrap_or(0.0),
                max: *values.last().unwrap_or(&0.0),
            },
        ));
        pcc_mats.push(mat);
    }
    let intersection = pcc::top_pair_intersection(&pcc_mats, k);
    Fig3Result {
        per_gpu,
        intersection,
        k,
    }
}

impl Fig3Result {
    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Fig. 3: value distribution of top-{} PCCs achieved by pairwise OCs\n",
            self.k
        );
        let _ = writeln!(
            s,
            "  {:<8} {:>8} {:>8} {:>8}",
            "GPU", "min", "median", "max"
        );
        for (gpu, v) in &self.per_gpu {
            let _ = writeln!(
                s,
                "  {:<8} {:>8.3} {:>8.3} {:>8.3}",
                gpu.name(),
                v.min,
                v.median,
                v.max
            );
        }
        let _ = writeln!(
            s,
            "  intersection of top-{} pairs across GPUs: {:.1}%",
            self.k,
            self.intersection * 100.0
        );
        s
    }
}

// ---------------------------------------------------------------------------
// Fig. 4 — best performance across GPUs normalized to 2080 Ti
// ---------------------------------------------------------------------------

/// Result of the Fig. 4 experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// GPUs in column order.
    pub gpus: Vec<GpuId>,
    /// `(stencil name, speedup over 2080 Ti per GPU)` rows.
    pub rows: Vec<(String, Vec<f64>)>,
}

/// Run Fig. 4: best OC time per canonical stencil per GPU, normalized to
/// the 2080 Ti.
pub fn fig4(profile_cfg: &ProfileConfig) -> Fig4Result {
    let _span = obs::span("fig4");
    let gpus = GpuId::ALL.to_vec();
    let canon: Vec<CanonicalStencil> = suite();
    let mut rows = Vec::new();
    for (i, c) in canon.iter().enumerate() {
        let times: Vec<f64> = gpus
            .iter()
            .map(|&g| {
                profile_stencil(
                    &c.pattern,
                    c.grid,
                    &GpuArch::preset(g),
                    profile_cfg,
                    2000 + i as u64,
                )
                .best_time_ms()
                .expect("canonical stencils run")
            })
            .collect();
        let ti = times[gpus.iter().position(|&g| g == GpuId::Rtx2080Ti).unwrap()];
        rows.push((c.name.clone(), times.iter().map(|t| ti / t).collect()));
    }
    Fig4Result { gpus, rows }
}

impl Fig4Result {
    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 4: best performance under each GPU normalized to 2080 Ti\n");
        let header: Vec<String> = std::iter::once("stencil".to_string())
            .chain(self.gpus.iter().map(|g| g.name().to_string()))
            .collect();
        // One width per column — `fmt_row` zips, so a short width list
        // would silently drop the extra GPUs' columns.
        let widths: Vec<usize> = std::iter::once(12)
            .chain(self.gpus.iter().map(|_| 8))
            .collect();
        let _ = writeln!(s, "  {}", fmt_row(&header, &widths));
        for (name, speedups) in &self.rows {
            let cells: Vec<String> = std::iter::once(name.clone())
                .chain(speedups.iter().map(|v| format!("{v:.2}")))
                .collect();
            let _ = writeln!(s, "  {}", fmt_row(&cells, &widths));
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Fig. 9–11 — OC selection: accuracy and speedup over baselines
// ---------------------------------------------------------------------------

/// All classification evaluations, keyed by (mechanism, GPU, dim).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassificationSuite {
    /// `(kind, gpu, dim, eval)` entries.
    pub evals: Vec<(ClassifierKind, GpuId, Dim, ClassifierEval)>,
}

/// Train and cross-validate every classification mechanism on every
/// (GPU, dimensionality) dataset.
pub fn classification_suite(ctx: &ExperimentContext) -> ClassificationSuite {
    let _span = obs::span("classification_suite");
    let mut evals = Vec::new();
    for dim in ctx.dims() {
        let corpus = ctx.corpus(dim);
        let merging = ctx.merging(dim);
        for &gpu in &ctx.cfg.gpus {
            let ds = ClassificationDataset::build(corpus, merging, gpu);
            for kind in ClassifierKind::ALL {
                let eval = evaluate_classifier(kind, &ds, ctx.cfg.folds, ctx.cfg.seed);
                evals.push((kind, gpu, dim, eval));
            }
        }
    }
    ClassificationSuite { evals }
}

impl ClassificationSuite {
    /// Look up one evaluation.
    pub fn get(&self, kind: ClassifierKind, gpu: GpuId, dim: Dim) -> &ClassifierEval {
        &self
            .evals
            .iter()
            .find(|(k, g, d, _)| *k == kind && *g == gpu && *d == dim)
            .expect("evaluation exists")
            .3
    }

    /// Render the Fig. 9 accuracy table.
    pub fn render_fig9(&self, ctx: &ExperimentContext) -> String {
        let mut s = String::from("Fig. 9: prediction accuracy of classification mechanisms (%)\n");
        for dim in ctx.dims() {
            let _ = writeln!(s, "  {dim} stencils:");
            let _ = writeln!(
                s,
                "    {:<8} {:>8} {:>8} {:>8}",
                "GPU", "ConvNet", "FcNet", "GBDT"
            );
            let mut sums = [0.0f64; 3];
            for &gpu in &ctx.cfg.gpus {
                let accs: Vec<f64> = ClassifierKind::ALL
                    .iter()
                    .map(|&k| self.get(k, gpu, dim).accuracy * 100.0)
                    .collect();
                for (i, a) in accs.iter().enumerate() {
                    sums[i] += a;
                }
                let _ = writeln!(
                    s,
                    "    {:<8} {:>8.1} {:>8.1} {:>8.1}",
                    gpu.name(),
                    accs[0],
                    accs[1],
                    accs[2]
                );
            }
            let n = ctx.cfg.gpus.len() as f64;
            let _ = writeln!(
                s,
                "    {:<8} {:>8.1} {:>8.1} {:>8.1}",
                "AVG",
                sums[0] / n,
                sums[1] / n,
                sums[2] / n
            );
        }
        s
    }
}

/// Result of the Fig. 10 / Fig. 11 speedup experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupResult {
    /// The baseline policy.
    pub policy: BaselinePolicy,
    /// `(kind, gpu, dim, mean speedup)` entries (ConvNet and GBDT, per
    /// the paper).
    pub entries: Vec<(ClassifierKind, GpuId, Dim, f64)>,
}

/// Compute speedups of the predicted OCs over a baseline policy.
pub fn speedup_over(
    ctx: &ExperimentContext,
    suite: &ClassificationSuite,
    policy: BaselinePolicy,
) -> SpeedupResult {
    let kinds = [ClassifierKind::ConvNet, ClassifierKind::Gbdt];
    let mut entries = Vec::new();
    for dim in ctx.dims() {
        let corpus = ctx.corpus(dim);
        let merging = ctx.merging(dim);
        for &gpu in &ctx.cfg.gpus {
            // Dataset rows align with corpus patterns (crash-free corpora
            // keep them 1:1; assert to be safe).
            let ds = ClassificationDataset::build(corpus, merging, gpu);
            let profiles: Vec<_> = ds
                .stencil_of_row
                .iter()
                .map(|&i| corpus.profiles_for(gpu)[i].clone())
                .collect();
            for kind in kinds {
                let eval = suite.get(kind, gpu, dim);
                let sp = speedups_over_baseline(
                    &profiles,
                    &eval.predictions,
                    merging,
                    policy,
                    ctx.cfg.samples_per_oc,
                );
                let mean = sp.iter().sum::<f64>() / sp.len().max(1) as f64;
                entries.push((kind, gpu, dim, mean));
            }
        }
    }
    SpeedupResult { policy, entries }
}

impl SpeedupResult {
    /// Mean speedup for one mechanism and dimensionality across GPUs.
    pub fn average(&self, kind: ClassifierKind, dim: Dim) -> f64 {
        let vals: Vec<f64> = self
            .entries
            .iter()
            .filter(|(k, _, d, _)| *k == kind && *d == dim)
            .map(|(_, _, _, v)| *v)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }

    /// Render the figure table.
    pub fn render(&self, fig_no: usize, ctx: &ExperimentContext) -> String {
        let mut s = format!(
            "Fig. {fig_no}: speedup of ConvNet and GBDT over {}\n",
            self.policy.name()
        );
        for dim in ctx.dims() {
            let _ = writeln!(s, "  {dim} stencils:");
            let _ = writeln!(s, "    {:<8} {:>8} {:>8}", "GPU", "ConvNet", "GBDT");
            for &gpu in &ctx.cfg.gpus {
                let get = |k: ClassifierKind| {
                    self.entries
                        .iter()
                        .find(|(kk, g, d, _)| *kk == k && *g == gpu && *d == dim)
                        .map(|(_, _, _, v)| *v)
                        .unwrap_or(f64::NAN)
                };
                let _ = writeln!(
                    s,
                    "    {:<8} {:>7.2}x {:>7.2}x",
                    gpu.name(),
                    get(ClassifierKind::ConvNet),
                    get(ClassifierKind::Gbdt)
                );
            }
            let _ = writeln!(
                s,
                "    {:<8} {:>7.2}x {:>7.2}x",
                "AVG",
                self.average(ClassifierKind::ConvNet, dim),
                self.average(ClassifierKind::Gbdt, dim)
            );
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Fig. 12–13 — regression error
// ---------------------------------------------------------------------------

/// All regression evaluations (Fig. 12).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionSuite {
    /// `(dim, eval)` entries for each mechanism.
    pub evals: Vec<(Dim, RegressorEval)>,
}

/// Train and cross-validate every regression mechanism per
/// dimensionality.
pub fn regression_suite(ctx: &ExperimentContext) -> RegressionSuite {
    let _span = obs::span("regression_suite");
    let mut evals = Vec::new();
    for dim in ctx.dims() {
        let ds = RegressionDataset::build(ctx.corpus(dim), &ctx.cfg);
        for kind in RegressorKind::ALL {
            let eval =
                evaluate_regressor(kind, &ds, MlpShape::default(), ctx.cfg.folds, ctx.cfg.seed);
            evals.push((dim, eval));
        }
    }
    RegressionSuite { evals }
}

impl RegressionSuite {
    /// Look up one evaluation.
    pub fn get(&self, kind: RegressorKind, dim: Dim) -> &RegressorEval {
        self.evals
            .iter()
            .find(|(d, e)| *d == dim && e.kind == kind)
            .map(|(_, e)| e)
            .expect("evaluation exists")
    }

    /// Render the Fig. 12 MAPE table.
    pub fn render_fig12(&self, ctx: &ExperimentContext) -> String {
        let mut s = String::from("Fig. 12: test error (MAPE %) of regression mechanisms\n");
        for dim in ctx.dims() {
            let _ = writeln!(s, "  {dim} stencils:");
            let _ = writeln!(
                s,
                "    {:<8} {:>8} {:>8} {:>12}",
                "GPU", "ConvMLP", "MLP", "GBRegressor"
            );
            for &gpu in &ctx.cfg.gpus {
                let get = |k: RegressorKind| {
                    self.get(k, dim)
                        .mape_per_gpu
                        .iter()
                        .find(|(g, _)| *g == gpu)
                        .map(|(_, m)| *m)
                        .unwrap_or(f64::NAN)
                };
                let _ = writeln!(
                    s,
                    "    {:<8} {:>8.1} {:>8.1} {:>12.1}",
                    gpu.name(),
                    get(RegressorKind::ConvMlp),
                    get(RegressorKind::Mlp),
                    get(RegressorKind::GbRegressor)
                );
            }
            let _ = writeln!(
                s,
                "    {:<8} {:>8.1} {:>8.1} {:>12.1}",
                "AVG",
                self.get(RegressorKind::ConvMlp, dim).mape_overall,
                self.get(RegressorKind::Mlp, dim).mape_overall,
                self.get(RegressorKind::GbRegressor, dim).mape_overall
            );
        }
        s
    }
}

/// Result of the Fig. 13 MLP design sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13Result {
    /// Layer counts swept.
    pub layers: Vec<usize>,
    /// Widths swept.
    pub widths: Vec<usize>,
    /// `grid[dim_index][layer_index][width_index]` = MAPE (%).
    pub grid: Vec<Vec<Vec<f64>>>,
    /// The dims in row order.
    pub dims: Vec<Dim>,
}

/// Run Fig. 13: sweep MLP hidden-layer counts and widths, reporting MAPE
/// per configuration (averaged across GPUs by construction, as the model
/// is cross-architecture).
pub fn fig13(ctx: &ExperimentContext, layers: &[usize], widths: &[usize]) -> Fig13Result {
    let _span = obs::span("mlp_sweep");
    let mut grid = Vec::new();
    for dim in ctx.dims() {
        // The sweep trains layers × widths models; cap the training-set
        // size so wide configurations stay tractable.
        let ds = RegressionDataset::build(ctx.corpus(dim), &ctx.cfg)
            .subsample(3000, ctx.cfg.seed ^ 0xF13);
        let mut rows = Vec::new();
        for &l in layers {
            let mut row = Vec::new();
            for &w in widths {
                let eval = evaluate_regressor(
                    RegressorKind::Mlp,
                    &ds,
                    MlpShape {
                        hidden_layers: l,
                        width: w,
                    },
                    // Single split keeps the sweep tractable; the paper
                    // fixes the training protocol and varies topology.
                    2,
                    ctx.cfg.seed,
                );
                row.push(eval.mape_overall);
            }
            rows.push(row);
        }
        grid.push(rows);
    }
    Fig13Result {
        layers: layers.to_vec(),
        widths: widths.to_vec(),
        grid,
        dims: ctx.dims(),
    }
}

impl Fig13Result {
    /// Render the sweep table.
    pub fn render(&self) -> String {
        let mut s =
            String::from("Fig. 13: MLP test error (MAPE %) vs hidden layers and layer size\n");
        for (di, dim) in self.dims.iter().enumerate() {
            let _ = writeln!(s, "  {dim} stencils:");
            let header: Vec<String> = std::iter::once("layers\\width".to_string())
                .chain(self.widths.iter().map(|w| w.to_string()))
                .collect();
            let widths_fmt = vec![12; header.len()];
            let _ = writeln!(s, "    {}", fmt_row(&header, &widths_fmt));
            for (li, &l) in self.layers.iter().enumerate() {
                let cells: Vec<String> = std::iter::once(l.to_string())
                    .chain(self.grid[di][li].iter().map(|v| format!("{v:.1}")))
                    .collect();
                let _ = writeln!(s, "    {}", fmt_row(&cells, &widths_fmt));
            }
        }
        s
    }
}

// ---------------------------------------------------------------------------
// Fig. 14–15 — rental advisor
// ---------------------------------------------------------------------------

/// Run Fig. 14 (pure performance) or Fig. 15 (cost efficiency) for every
/// dimensionality.
pub fn fig14_15(ctx: &ExperimentContext, criterion: Criterion) -> Vec<(Dim, AdvisorResult)> {
    let _span = obs::span("advisor_eval");
    ctx.dims()
        .into_iter()
        .map(|dim| {
            let corpus = ctx.corpus(dim);
            let ds = RegressionDataset::build(corpus, &ctx.cfg);
            let res = evaluate_advisor(
                corpus,
                &ds,
                &ctx.cfg,
                RegressorKind::Mlp,
                criterion,
                ctx.cfg.seed,
            );
            (dim, res)
        })
        .collect()
}

/// Render the advisor result table.
pub fn render_advisor(results: &[(Dim, AdvisorResult)], fig_no: usize) -> String {
    let label = match results.first().map(|(_, r)| r.criterion) {
        Some(Criterion::CostEfficiency) => "cost efficiency",
        _ => "pure performance",
    };
    let mut s = format!("Fig. {fig_no}: ground truth and prediction accuracy ({label})\n");
    for (dim, r) in results {
        let _ = writeln!(s, "  {dim} stencil instances ({}):", r.instances);
        let _ = writeln!(s, "    {:<8} {:>10} {:>10}", "GPU", "share", "accuracy");
        for ((g, share), (_, acc)) in r.share.iter().zip(&r.accuracy) {
            let acc_s = if acc.is_nan() {
                "-".to_string()
            } else {
                format!("{:.1}%", acc * 100.0)
            };
            let _ = writeln!(
                s,
                "    {:<8} {:>9.1}% {:>10}",
                g.name(),
                share * 100.0,
                acc_s
            );
        }
        let _ = writeln!(
            s,
            "    overall accuracy: {:.1}%",
            r.overall_accuracy * 100.0
        );
    }
    s
}

// ---------------------------------------------------------------------------
// Multi-vendor leave-one-GPU-out transfer
// ---------------------------------------------------------------------------

/// One leave-one-GPU-out transfer measurement: the named GPU contributes
/// zero training rows and both model families must extrapolate to it
/// from the hardware-characteristic features alone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogoEntry {
    /// Stencil dimensionality.
    pub dim: Dim,
    /// The held-out GPU.
    pub gpu: GpuId,
    /// The held-out GPU's vendor.
    pub vendor: Vendor,
    /// Whether the training pool contains at least one GPU of the
    /// *other* vendor — a genuine cross-vendor transfer.
    pub cross_vendor: bool,
    /// OC-selection accuracy on the held-out GPU (GBDT), if it was
    /// profiled.
    pub class_accuracy: Option<f64>,
    /// Execution-time MAPE (%) on the held-out GPU (GBRegressor), if it
    /// was profiled.
    pub regr_mape: Option<f64>,
}

/// Leave-one-GPU-out results across the full matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogoSuite {
    /// One entry per `(dim, held-out GPU)`.
    pub entries: Vec<LogoEntry>,
}

/// Hold out each GPU of the matrix in turn and measure how well
/// OC-selection classification and execution-time regression transfer to
/// it from the remaining GPUs. With AMD presets in the configured matrix
/// every holdout is a cross-vendor transfer: the pool mixes warp-32 and
/// wavefront-64 parts and the held-out architecture is represented only
/// through [`GpuArch::feature_vector`].
pub fn logo_suite(ctx: &ExperimentContext) -> LogoSuite {
    let _span = obs::span("logo_suite");
    let mut entries = Vec::new();
    for dim in ctx.dims() {
        let corpus = ctx.corpus(dim);
        let merging = ctx.merging(dim);
        let ds = RegressionDataset::build(corpus, &ctx.cfg);
        for &gpu in &ctx.cfg.gpus {
            let class_accuracy = crate::classify::leave_one_gpu_out(
                ClassifierKind::Gbdt,
                corpus,
                merging,
                gpu,
                ctx.cfg.seed,
            );
            let regr_mape = crate::regress::leave_one_gpu_out(
                RegressorKind::GbRegressor,
                &ds,
                gpu,
                ctx.cfg.seed,
            );
            let cross_vendor = ctx
                .cfg
                .gpus
                .iter()
                .any(|&g| g != gpu && g.vendor() != gpu.vendor());
            entries.push(LogoEntry {
                dim,
                gpu,
                vendor: gpu.vendor(),
                cross_vendor,
                class_accuracy,
                regr_mape,
            });
        }
    }
    LogoSuite { entries }
}

impl LogoSuite {
    /// Render the leave-one-GPU-out transfer table.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Leave-one-GPU-out transfer across the multi-vendor matrix\n\
             (held-out GPU contributes zero training rows; GBDT classifier,\n\
             GBRegressor; cross-vendor = training pool spans the other vendor)\n",
        );
        let mut last_dim = None;
        for e in &self.entries {
            if last_dim != Some(e.dim) {
                let _ = writeln!(s, "  {} stencils:", e.dim);
                let _ = writeln!(
                    s,
                    "    {:<8} {:<7} {:>12} {:>10} {:>10}",
                    "held-out", "vendor", "cross-vendor", "class acc", "MAPE %"
                );
                last_dim = Some(e.dim);
            }
            let acc = e
                .class_accuracy
                .map(|a| format!("{:.3}", a))
                .unwrap_or_else(|| "-".to_string());
            let mape = e
                .regr_mape
                .map(|m| format!("{:.1}", m))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                s,
                "    {:<8} {:<7} {:>12} {:>10} {:>10}",
                e.gpu.name(),
                e.vendor.name(),
                if e.cross_vendor { "yes" } else { "no" },
                acc,
                mape
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ctx() -> ExperimentContext {
        let cfg = PipelineConfig {
            stencils_per_dim: 12,
            samples_per_oc: 2,
            folds: 2,
            max_regression_rows: 800,
            gpus: vec![GpuId::V100, GpuId::Rtx2080Ti],
            ..PipelineConfig::default()
        };
        ExperimentContext::build(cfg)
    }

    #[test]
    fn tables_render() {
        let t1 = table1();
        assert!(t1.contains("ST_BM_RT_PR_TB"));
        assert!(table2().contains("nnz_ratio_order_4"));
        let t34 = table3_and_4();
        assert!(t34.contains("1555 GB/s") || t34.contains("1555"));
        assert!(t34.contains("Xeon E5-2680 v4"));
    }

    #[test]
    fn fig1_reports_large_gaps() {
        let pc = ProfileConfig {
            samples_per_oc: 3,
            ..ProfileConfig::default()
        };
        let r = fig1(&pc);
        assert_eq!(r.gaps.len(), 24);
        assert!(r.average > 2.0, "average gap {}", r.average);
        assert!(r.render().contains("AVERAGE"));
    }

    #[test]
    fn fig2_and_3_run_on_context() {
        let ctx = quick_ctx();
        let f2 = fig2(&ctx);
        assert_eq!(f2.wins.len(), 2);
        for (_, share) in &f2.streaming_share {
            assert!(*share > 0.3, "streaming share {share}");
        }
        let f3 = fig3(&ctx, 50);
        assert_eq!(f3.per_gpu.len(), 2);
        assert!(f3.intersection >= 0.0 && f3.intersection <= 1.0);
        assert!(f3.render().contains("intersection"));
    }

    #[test]
    fn fig4_normalizes_to_2080ti() {
        let pc = ProfileConfig {
            samples_per_oc: 2,
            ..ProfileConfig::default()
        };
        let r = fig4(&pc);
        let ti_col = r.gpus.iter().position(|&g| g == GpuId::Rtx2080Ti).unwrap();
        for (_, speedups) in &r.rows {
            assert!((speedups[ti_col] - 1.0).abs() < 1e-9);
        }
        let table = r.render();
        assert!(table.contains("star2d1r"));
        // Every GPU of the matrix gets a rendered column — a fixed-width
        // row format once silently truncated the table to four GPUs.
        for gpu in GpuId::ALL {
            assert!(table.contains(gpu.name()), "{} column missing", gpu.name());
        }
        let header_cols = table.lines().nth(1).unwrap().split_whitespace().count();
        assert_eq!(header_cols, 1 + GpuId::ALL.len());
    }

    #[test]
    fn classification_and_speedup_suites_run() {
        let ctx = quick_ctx();
        let suite = classification_suite(&ctx);
        // 3 mechanisms × 2 GPUs × 2 dims.
        assert_eq!(suite.evals.len(), 12);
        let fig9 = suite.render_fig9(&ctx);
        assert!(fig9.contains("ConvNet"));
        let sp = speedup_over(&ctx, &suite, BaselinePolicy::ArtemisLike);
        assert_eq!(sp.entries.len(), 8);
        assert!(sp.render(10, &ctx).contains("Artemis"));
        for (_, _, _, v) in &sp.entries {
            assert!(*v > 0.3 && *v < 30.0, "speedup {v} out of plausible range");
        }
    }

    #[test]
    fn logo_suite_reports_cross_vendor_holdouts() {
        let cfg = PipelineConfig {
            stencils_per_dim: 12,
            samples_per_oc: 2,
            folds: 2,
            max_regression_rows: 600,
            gpus: vec![GpuId::V100, GpuId::Mi100],
            ..PipelineConfig::default()
        };
        let ctx = ExperimentContext::build(cfg);
        let suite = logo_suite(&ctx);
        // 2 GPUs × 2 dims.
        assert_eq!(suite.entries.len(), 4);
        for e in &suite.entries {
            assert!(e.cross_vendor, "V100↔MI100 holdouts cross the vendor");
            let acc = e.class_accuracy.expect("held-out GPU was profiled");
            assert!((0.0..=1.0).contains(&acc));
            let mape = e.regr_mape.expect("held-out GPU was profiled");
            assert!(mape.is_finite() && mape >= 0.0);
        }
        let table = suite.render();
        assert!(table.contains("cross-vendor"));
        assert!(table.contains("MI100"));
        assert!(table.contains("NVIDIA") && table.contains("AMD"));
    }
}

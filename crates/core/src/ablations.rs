//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **Representation** — Table II features vs extended features vs the
//!   binary tensor, for OC selection (paper §IV-C discusses when each
//!   representation is preferable).
//! * **OC merging** — prediction quality as the number of merged classes
//!   varies (paper §IV-D motivates merging with convergence quality).
//! * **Measurement noise** — regression error as the simulated testbed
//!   gets noisier.
//! * **Tuning budget** — how close the per-OC random search gets to the
//!   best found setting as the sample budget grows.

use crate::classify::evaluate_classifier;
use crate::config::PipelineConfig;
use crate::dataset::{ClassificationDataset, ProfiledCorpus, RegressionDataset};
use crate::models::{ClassifierKind, MlpShape, RegressorKind};
use crate::regress::evaluate_regressor;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use stencilmart_gpusim::GpuId;
use stencilmart_ml::data::FeatureMatrix;
use stencilmart_stencil::features::{extract, FeatureConfig};
use stencilmart_stencil::pattern::Dim;

/// Result of the representation ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReprAblation {
    /// `(label, accuracy)` per representation.
    pub rows: Vec<(String, f64)>,
}

/// Compare input representations for OC selection on one (GPU, dim).
pub fn ablation_repr(cfg: &PipelineConfig, dim: Dim, gpu: GpuId) -> ReprAblation {
    let corpus = ProfiledCorpus::build(cfg, dim);
    let merging = corpus.derive_merging(cfg.oc_classes);
    let base = ClassificationDataset::build(&corpus, &merging, gpu);
    let mut rows = Vec::new();

    // Table II features → GBDT.
    let eval = evaluate_classifier(ClassifierKind::Gbdt, &base, cfg.folds, cfg.seed);
    rows.push(("GBDT / Table II features".to_string(), eval.accuracy));

    // Extended features → GBDT.
    let ext = FeatureConfig::extended();
    let ext_rows: Vec<Vec<f32>> = base
        .stencil_of_row
        .iter()
        .map(|&i| extract(&corpus.patterns[i], &ext).as_f32())
        .collect();
    let mut ds_ext = base.clone();
    ds_ext.features = FeatureMatrix::from_rows(ext_rows.iter().map(Vec::as_slice));
    let eval = evaluate_classifier(ClassifierKind::Gbdt, &ds_ext, cfg.folds, cfg.seed);
    rows.push(("GBDT / extended features".to_string(), eval.accuracy));

    // Binary tensor → ConvNet.
    let eval = evaluate_classifier(ClassifierKind::ConvNet, &base, cfg.folds, cfg.seed);
    rows.push(("ConvNet / binary tensor".to_string(), eval.accuracy));

    ReprAblation { rows }
}

impl ReprAblation {
    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut s = String::from("Ablation: stencil representation (OC-selection accuracy)\n");
        for (label, acc) in &self.rows {
            let _ = writeln!(s, "  {label:<28} {:>5.1}%", acc * 100.0);
        }
        s
    }
}

/// Result of the OC-merging ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MergeAblation {
    /// `(classes, accuracy, mean speedup of oracle class over global
    /// best)` per class count.
    pub rows: Vec<(usize, f64, f64)>,
}

/// Vary the number of merged classes and measure selection accuracy plus
/// the cost of committing to each class's representative.
pub fn ablation_merge(cfg: &PipelineConfig, dim: Dim, gpu: GpuId) -> MergeAblation {
    let corpus = ProfiledCorpus::build(cfg, dim);
    let mut rows = Vec::new();
    for classes in [3usize, 5, 10, 30] {
        let merging = corpus.derive_merging(classes);
        let ds = ClassificationDataset::build(&corpus, &merging, gpu);
        let eval = evaluate_classifier(ClassifierKind::Gbdt, &ds, cfg.folds, cfg.seed);
        // Representative cost under oracle labels: how much slower is the
        // class target than the global best?
        let mut ratios = Vec::new();
        for (&si, &label) in ds.stencil_of_row.iter().zip(&ds.labels) {
            let profile = &corpus.profiles_for(gpu)[si];
            let best = profile.best_time_ms().expect("runs");
            if let Some(rep) = crate::baselines::predicted_time(profile, &merging, label) {
                ratios.push(rep / best);
            }
        }
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        rows.push((classes, eval.accuracy, mean_ratio));
    }
    MergeAblation { rows }
}

impl MergeAblation {
    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut s =
            String::from("Ablation: OC merging (classes vs accuracy vs oracle-class cost)\n");
        let _ = writeln!(
            s,
            "  {:>7} {:>10} {:>22}",
            "classes", "accuracy", "rep time / best time"
        );
        for (classes, acc, ratio) in &self.rows {
            let _ = writeln!(s, "  {classes:>7} {:>9.1}% {ratio:>21.2}x", acc * 100.0);
        }
        s
    }
}

/// Result of the noise ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoiseAblation {
    /// `(sigma, regression MAPE %)` per noise level.
    pub rows: Vec<(f64, f64)>,
}

/// Vary the measurement-noise level and measure regression MAPE.
pub fn ablation_noise(cfg: &PipelineConfig, dim: Dim) -> NoiseAblation {
    let mut rows = Vec::new();
    for sigma in [0.0, 0.03, 0.06, 0.12] {
        let mut c = cfg.clone();
        c.noise = stencilmart_gpusim::NoiseModel::with_sigma(sigma);
        let corpus = ProfiledCorpus::build(&c, dim);
        let ds = RegressionDataset::build(&corpus, &c);
        let eval = evaluate_regressor(
            RegressorKind::GbRegressor,
            &ds,
            MlpShape::default(),
            c.folds,
            c.seed,
        );
        rows.push((sigma, eval.mape_overall));
    }
    NoiseAblation { rows }
}

impl NoiseAblation {
    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut s = String::from("Ablation: measurement noise vs GBRegressor MAPE\n");
        for (sigma, mape) in &self.rows {
            let _ = writeln!(s, "  sigma {sigma:>5.2}  MAPE {mape:>6.1}%");
        }
        s
    }
}

/// Result of the tuning-budget ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetAblation {
    /// `(budget k, mean best-time ratio vs full budget)` per budget.
    pub rows: Vec<(usize, f64)>,
}

/// How much of the tuned performance does a budget of `k` random settings
/// per OC capture, relative to the largest budget profiled?
pub fn ablation_budget(cfg: &PipelineConfig, dim: Dim, gpu: GpuId) -> BudgetAblation {
    let mut c = cfg.clone();
    let full = 16usize;
    c.samples_per_oc = full;
    let corpus = ProfiledCorpus::build(&c, dim);
    let profiles = corpus.profiles_for(gpu);
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8, full] {
        let mut ratios = Vec::new();
        for p in profiles {
            // Best across OCs with the first k samples of each OC.
            let best_k = p
                .per_oc
                .iter()
                .filter_map(|o| {
                    o.instances
                        .iter()
                        .take(k)
                        .map(|i| i.time_ms)
                        .min_by(f64::total_cmp)
                })
                .min_by(f64::total_cmp);
            if let (Some(bk), Some(bf)) = (best_k, p.best_time_ms()) {
                ratios.push(bk / bf);
            }
        }
        rows.push((k, ratios.iter().sum::<f64>() / ratios.len().max(1) as f64));
    }
    BudgetAblation { rows }
}

impl BudgetAblation {
    /// Render as a text table.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Ablation: random-search budget vs achieved time (ratio to full budget)\n",
        );
        for (k, ratio) in &self.rows {
            let _ = writeln!(s, "  k = {k:>2}  best-time ratio {ratio:>5.2}x");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            stencils_per_dim: 16,
            samples_per_oc: 3,
            folds: 2,
            max_regression_rows: 800,
            gpus: vec![GpuId::V100],
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn repr_ablation_produces_three_rows() {
        let r = ablation_repr(&cfg(), Dim::D2, GpuId::V100);
        assert_eq!(r.rows.len(), 3);
        assert!(r.rows.iter().all(|(_, a)| (0.0..=1.0).contains(a)));
        assert!(r.render().contains("ConvNet"));
    }

    #[test]
    fn merge_ablation_tracks_class_count() {
        let r = ablation_merge(&cfg(), Dim::D2, GpuId::V100);
        assert_eq!(r.rows.len(), 4);
        // With 30 classes the representative IS the best OC: ratio ~1.
        let full = r.rows.last().unwrap();
        assert_eq!(full.0, 30);
        assert!(full.2 < 1.05, "30-class rep cost {}", full.2);
        // Coarser classes can only be as good or worse.
        assert!(r.rows[0].2 >= full.2 - 1e-9);
    }

    #[test]
    fn budget_ablation_is_monotone() {
        let r = ablation_budget(&cfg(), Dim::D2, GpuId::V100);
        // Ratios decrease toward 1 as the budget grows.
        for w in r.rows.windows(2) {
            assert!(w[0].1 >= w[1].1 - 1e-9, "{:?}", r.rows);
        }
        assert!((r.rows.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}

//! Baseline OC-selection policies modelling the frameworks the paper
//! compares against (paper §V-B2, Fig. 10–11):
//!
//! * **ArtemisLike** — Artemis "tunes the computation for high-impact
//!   optimizations first and then selects a few high-performance
//!   candidates": a greedy hill-climb that starts from streaming and
//!   accepts one optimization at a time only if it improves the tuned
//!   time. Greedy search can miss interacting combinations, which is
//!   where StencilMART's learned selection wins.
//! * **An5dLike** — AN5D commits to high-degree temporal blocking on top
//!   of streaming (its signature schedule), falling back to plain
//!   streaming when temporal blocking cannot run.
//!
//! Budget fairness (paper §V-A3: "the number of randomly selected
//! parameter settings remains the same"): StencilMART spends its whole
//! sampling budget tuning the *one* OC its classifier picked, while a
//! baseline that probes `p` OCs must split the same total budget into
//! `budget / p` settings per probe. That concentration of tuning effort
//! is a large part of why learned selection wins.

use crate::pcc::OcMerging;
use serde::{Deserialize, Serialize};
use stencilmart_gpusim::{Merge, OcOutcome, OptCombo, StencilProfile};

/// A baseline selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaselinePolicy {
    /// Greedy high-impact-first tuning (Artemis).
    ArtemisLike,
    /// Streaming + temporal blocking schedule (AN5D).
    An5dLike,
}

impl BaselinePolicy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BaselinePolicy::ArtemisLike => "Artemis",
            BaselinePolicy::An5dLike => "AN5D",
        }
    }
}

/// Best time among the first `budget` sampled settings of an OC (the
/// settings are stored in sampling order).
fn best_within(outcome: &OcOutcome, budget: usize) -> Option<f64> {
    outcome
        .instances
        .iter()
        .take(budget.max(1))
        .map(|i| i.time_ms)
        .min_by(f64::total_cmp)
}

fn time_of(profile: &StencilProfile, oc: &OptCombo, budget: usize) -> Option<f64> {
    profile
        .per_oc
        .iter()
        .find(|o| &o.oc == oc)
        .and_then(|o| best_within(o, budget))
}

/// How many OCs each baseline probes (sets its per-probe budget share).
fn probe_count(policy: BaselinePolicy) -> usize {
    match policy {
        BaselinePolicy::ArtemisLike => 5, // start + 3 moves + a merge variant
        BaselinePolicy::An5dLike => 3,
    }
}

/// The execution time the baseline ends up with for one stencil under a
/// total sampling budget of `budget` settings, or `None` when nothing in
/// its schedule executes.
pub fn baseline_time(
    profile: &StencilProfile,
    policy: BaselinePolicy,
    budget: usize,
) -> Option<f64> {
    let per_probe = (budget / probe_count(policy)).max(1);
    match policy {
        BaselinePolicy::ArtemisLike => artemis_time(profile, per_probe),
        BaselinePolicy::An5dLike => an5d_time(profile, per_probe),
    }
}

/// Greedy hill-climb: start from ST (falling back to BASE when streaming
/// never runs), then try toggling RT, PR, merging, and TB one at a time in
/// impact order, keeping each change only if it improves the tuned time.
fn artemis_time(profile: &StencilProfile, per_probe: usize) -> Option<f64> {
    let time_of = |oc: &OptCombo| time_of(profile, oc, per_probe);
    let start = OptCombo::parse("ST").expect("valid");
    let mut current = match time_of(&start) {
        Some(t) => (start, t),
        None => (OptCombo::BASE, time_of(&OptCombo::BASE)?),
    };
    // Candidate moves in Artemis's high-impact-first order. Artemis's
    // optimization space (Rawat et al. 2019) covers streaming, retiming,
    // prefetching, and merging — it does NOT implement temporal blocking
    // (that is AN5D's signature), which is a structural blind spot its
    // greedy tuner cannot escape.
    type Move = fn(&OptCombo) -> Option<OptCombo>;
    let moves: [Move; 3] = [
        |c| OptCombo::new(c.st, c.merge, true, c.pr, c.tb).ok(),
        |c| OptCombo::new(c.st, c.merge, c.rt, true, c.tb).ok(),
        // Try both merging strategies; the caller loop keeps the best.
        |c| OptCombo::new(c.st, Merge::Block, c.rt, c.pr, c.tb).ok(),
    ];
    for mv in moves {
        let Some(candidate) = mv(&current.0) else {
            continue;
        };
        for cand in candidate_variants(candidate) {
            if let Some(t) = time_of(&cand) {
                if t < current.1 {
                    current = (cand, t);
                }
            }
        }
    }
    Some(current.1)
}

/// For merging moves, consider both BM and CM variants.
fn candidate_variants(c: OptCombo) -> Vec<OptCombo> {
    if c.merge == Merge::Block {
        let cm = OptCombo {
            merge: Merge::Cyclic,
            ..c
        };
        vec![c, cm]
    } else {
        vec![c]
    }
}

/// AN5D's schedule: streaming + temporal blocking (optionally with block
/// merging, which AN5D's code generator applies for register reuse),
/// falling back to plain streaming.
fn an5d_time(profile: &StencilProfile, per_probe: usize) -> Option<f64> {
    let schedule = ["ST_TB", "ST_BM_TB", "ST"];
    let mut best: Option<f64> = None;
    for name in schedule {
        let oc = OptCombo::parse(name).expect("valid OC name");
        if let Some(t) = time_of(profile, &oc, per_probe) {
            best = Some(best.map_or(t, |b: f64| b.min(t)));
        }
    }
    best.or_else(|| profile.best_time_ms())
}

/// The execution time StencilMART achieves when it predicts `class`:
/// the class representative's tuned time, falling back to the best tuned
/// time within the class when the representative crashed for this
/// stencil.
pub fn predicted_time(profile: &StencilProfile, merging: &OcMerging, class: usize) -> Option<f64> {
    let rep = merging.representative(class)?;
    // The whole sampling budget goes to the predicted OC.
    if let Some(t) = time_of(profile, &rep, usize::MAX) {
        return Some(t);
    }
    merging.groups[class]
        .iter()
        .filter_map(|&oc_idx| profile.per_oc[oc_idx].best().map(|b| b.time_ms))
        .min_by(f64::total_cmp)
}

/// Per-stencil speedups of predicted classes over a baseline policy
/// (baseline time / StencilMART time). Stencils where either side has no
/// runnable configuration are skipped.
pub fn speedups_over_baseline(
    profiles: &[StencilProfile],
    predictions: &[usize],
    merging: &OcMerging,
    policy: BaselinePolicy,
    budget: usize,
) -> Vec<f64> {
    assert_eq!(profiles.len(), predictions.len(), "prediction misalignment");
    profiles
        .iter()
        .zip(predictions)
        .filter_map(|(p, &class)| {
            let base = baseline_time(p, policy, budget)?;
            let ours = predicted_time(p, merging, class)?;
            Some(base / ours)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::dataset::ProfiledCorpus;
    use stencilmart_gpusim::GpuId;
    use stencilmart_stencil::pattern::Dim;

    fn corpus() -> (ProfiledCorpus, OcMerging) {
        let cfg = PipelineConfig {
            stencils_per_dim: 16,
            samples_per_oc: 3,
            gpus: vec![GpuId::V100],
            ..PipelineConfig::default()
        };
        let corpus = ProfiledCorpus::build(&cfg, Dim::D3);
        let merging = corpus.derive_merging(5);
        (corpus, merging)
    }

    #[test]
    fn baselines_produce_times_for_every_stencil() {
        let (corpus, _) = corpus();
        for p in corpus.profiles_for(GpuId::V100) {
            assert!(baseline_time(p, BaselinePolicy::ArtemisLike, 6).is_some());
            assert!(baseline_time(p, BaselinePolicy::An5dLike, 6).is_some());
        }
    }

    #[test]
    fn baseline_never_beats_global_best() {
        let (corpus, _) = corpus();
        for p in corpus.profiles_for(GpuId::V100) {
            let best = p.best_time_ms().unwrap();
            for policy in [BaselinePolicy::ArtemisLike, BaselinePolicy::An5dLike] {
                let t = baseline_time(p, policy, 6).unwrap();
                assert!(t >= best - 1e-9, "{:?}: {t} < {best}", policy);
            }
        }
    }

    #[test]
    fn oracle_predictions_dominate_baselines() {
        // Feeding the *true* class should on average at least match the
        // baselines.
        let (corpus, merging) = corpus();
        let profiles = corpus.profiles_for(GpuId::V100);
        let truth: Vec<usize> = profiles
            .iter()
            .map(|p| merging.class_of(p.best_oc().unwrap().oc.index()).unwrap())
            .collect();
        for policy in [BaselinePolicy::ArtemisLike, BaselinePolicy::An5dLike] {
            let sp = speedups_over_baseline(profiles, &truth, &merging, policy, 3);
            let mean = sp.iter().sum::<f64>() / sp.len() as f64;
            assert!(mean >= 1.0, "{:?}: mean speedup {mean}", policy);
        }
    }

    #[test]
    fn predicted_time_falls_back_within_group() {
        let (corpus, merging) = corpus();
        for p in corpus.profiles_for(GpuId::V100) {
            for class in 0..merging.classes() {
                // Either a time exists or the entire group crashed.
                let t = predicted_time(p, &merging, class);
                let any_alive = merging.groups[class]
                    .iter()
                    .any(|&i| p.per_oc[i].best().is_some());
                assert_eq!(t.is_some(), any_alive);
            }
        }
    }
}

//! Pipeline configuration: corpus sizes, profiling budgets, and
//! cross-validation settings.
//!
//! The paper profiles 500 2-D + 500 3-D stencils into ~65k/76k instances
//! per GPU on a real testbed. The defaults here are scaled so that every
//! experiment regenerates in minutes on a laptop; `PipelineConfig::paper`
//! restores the paper-scale settings for long runs.

use serde::{Deserialize, Serialize};
use stencilmart_gpusim::{GpuId, NoiseModel, ProfileConfig};
use stencilmart_stencil::pattern::Dim;

/// End-to-end pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Random stencils generated per dimensionality.
    pub stencils_per_dim: usize,
    /// Maximum stencil order (paper: 4).
    pub max_order: u8,
    /// 2-D grid points per axis (paper: 8192).
    pub grid_2d: usize,
    /// 3-D grid points per axis (paper: 512).
    pub grid_3d: usize,
    /// Random parameter settings sampled per OC during profiling.
    pub samples_per_oc: usize,
    /// Measurement noise.
    pub noise: NoiseModel,
    /// GPUs to profile on (paper: all four of Table III).
    pub gpus: Vec<GpuId>,
    /// Merged OC classes for classification (paper: 5).
    pub oc_classes: usize,
    /// Cross-validation folds (paper: 5).
    pub folds: usize,
    /// Cap on regression-dataset rows (random subsample; the paper uses
    /// every instance).
    pub max_regression_rows: usize,
    /// Include the grid size as a model input (paper future work).
    pub include_grid_size: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            stencils_per_dim: 120,
            max_order: 4,
            grid_2d: 8192,
            grid_3d: 512,
            samples_per_oc: 8,
            noise: NoiseModel::default(),
            gpus: GpuId::ALL.to_vec(),
            oc_classes: 5,
            folds: 5,
            max_regression_rows: 20_000,
            include_grid_size: false,
            seed: 0xC0FFEE,
        }
    }
}

impl PipelineConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        PipelineConfig {
            stencils_per_dim: 40,
            samples_per_oc: 4,
            folds: 3,
            max_regression_rows: 1500,
            ..Self::default()
        }
    }

    /// The paper-scale configuration (long-running).
    pub fn paper() -> Self {
        PipelineConfig {
            stencils_per_dim: 500,
            samples_per_oc: 12,
            max_regression_rows: 60_000,
            ..Self::default()
        }
    }

    /// Grid points per axis for a dimensionality.
    pub fn grid_for(&self, dim: Dim) -> usize {
        match dim {
            Dim::D1 => 1 << 26,
            Dim::D2 => self.grid_2d,
            Dim::D3 => self.grid_3d,
        }
    }

    /// The profiler configuration derived from this pipeline
    /// configuration.
    pub fn profile_config(&self) -> ProfileConfig {
        ProfileConfig {
            samples_per_oc: self.samples_per_oc,
            noise: self.noise,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = PipelineConfig::default();
        assert_eq!(c.max_order, 4);
        assert_eq!(c.grid_2d, 8192);
        assert_eq!(c.grid_3d, 512);
        assert_eq!(c.oc_classes, 5);
        assert_eq!(c.folds, 5);
        assert_eq!(c.gpus.len(), GpuId::ALL.len());
    }

    #[test]
    fn grid_lookup() {
        let c = PipelineConfig::default();
        assert_eq!(c.grid_for(Dim::D2), 8192);
        assert_eq!(c.grid_for(Dim::D3), 512);
    }

    #[test]
    fn quick_is_smaller_than_default() {
        let q = PipelineConfig::quick();
        let d = PipelineConfig::default();
        assert!(q.stencils_per_dim < d.stencils_per_dim);
        assert!(q.samples_per_oc < d.samples_per_oc);
    }

    #[test]
    fn profile_config_inherits_budget() {
        let c = PipelineConfig::default();
        assert_eq!(c.profile_config().samples_per_oc, c.samples_per_oc);
    }
}

//! Dataset persistence: the profiled stencil dataset is expensive to
//! collect (the paper measures ~140k instances across four GPUs), so the
//! pipeline stores it as JSON and reloads it for later model training —
//! OC selection and performance prediction both read from the same stored
//! corpus (paper §IV-A).

use crate::dataset::ProfiledCorpus;
use std::fs;
use std::io;
use std::path::Path;

/// Errors from saving/loading a corpus.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// (De)serialization failure.
    Serde(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Serde(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Serde(e)
    }
}

/// Write `contents` to `path` atomically and durably: the bytes land in
/// a temporary file in the *same directory* (staying on one filesystem
/// so the final rename is atomic), are fsynced, replace `path` in a
/// single `rename`, and the parent directory is fsynced so the rename
/// itself survives power loss. A crash mid-write leaves either the old
/// file or a stray temp file — never a torn document.
pub fn write_atomic(path: &Path, contents: impl AsRef<[u8]>) -> io::Result<()> {
    use std::io::Write as _;
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let write_and_rename = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents.as_ref())?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        // Durability of the rename: fsync the directory entry. Skipped
        // when the directory cannot be opened for reading (never the
        // case on the platforms we test), not when the sync fails.
        let dir_path = match dir {
            Some(d) => d.to_path_buf(),
            None => std::path::PathBuf::from("."),
        };
        if let Ok(d) = fs::File::open(&dir_path) {
            d.sync_all()?;
        }
        Ok(())
    })();
    if write_and_rename.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    write_and_rename
}

/// Save a profiled corpus as JSON (atomically — see [`write_atomic`]).
pub fn save_corpus(corpus: &ProfiledCorpus, path: &Path) -> Result<(), PersistError> {
    let json = serde_json::to_string(corpus)?;
    write_atomic(path, &json)?;
    Ok(())
}

/// Load a profiled corpus from JSON.
pub fn load_corpus(path: &Path) -> Result<ProfiledCorpus, PersistError> {
    let json = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use stencilmart_gpusim::GpuId;
    use stencilmart_stencil::pattern::Dim;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "stencilmart_test_{name}_{}.json",
            std::process::id()
        ));
        p
    }

    #[test]
    fn corpus_roundtrips_through_json() {
        let cfg = PipelineConfig {
            stencils_per_dim: 6,
            samples_per_oc: 2,
            gpus: vec![GpuId::V100],
            ..PipelineConfig::default()
        };
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        let path = tmp_path("roundtrip");
        save_corpus(&corpus, &path).expect("save");
        let loaded = load_corpus(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded.patterns, corpus.patterns);
        assert_eq!(loaded.grid, corpus.grid);
        assert_eq!(loaded.profiles.len(), corpus.profiles.len());
        // Derived artifacts agree.
        assert_eq!(loaded.derive_merging(5), corpus.derive_merging(5));
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let path = tmp_path("atomic");
        write_atomic(&path, "first").unwrap();
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .contains(&format!(".{stem}.tmp"))
            })
            .collect();
        let _ = std::fs::remove_file(&path);
        assert!(leftovers.is_empty(), "temp files must not survive");
    }

    #[test]
    fn write_atomic_accepts_bytes() {
        let path = tmp_path("bytes");
        write_atomic(&path, [0u8, 159, 146, 150].as_slice()).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![0u8, 159, 146, 150]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_atomic_cleans_up_temp_when_rename_fails() {
        // Renaming a file onto an existing non-empty directory fails
        // after the temp file has already been written; the cleanup
        // path must remove it.
        let target = tmp_path("rename_fails");
        std::fs::create_dir_all(target.join("occupant")).unwrap();
        let err = write_atomic(&target, "doomed").unwrap_err();
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::AlreadyExists | std::io::ErrorKind::Other
            ) || err.raw_os_error().is_some(),
            "unexpected error {err:?}"
        );
        let dir = target.parent().unwrap();
        let stem = target.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .contains(&format!(".{stem}.tmp"))
            })
            .collect();
        let _ = std::fs::remove_dir_all(&target);
        assert!(
            leftovers.is_empty(),
            "temp files must be cleaned up on rename failure: {leftovers:?}"
        );
    }

    #[test]
    fn write_atomic_rejects_directory_target() {
        let err = write_atomic(Path::new("/tmp/.."), "x").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_corpus(Path::new("/nonexistent/corpus.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }

    #[test]
    fn load_garbage_errors() {
        let path = tmp_path("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        let err = load_corpus(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, PersistError::Serde(_)));
    }
}

//! Dataset persistence: the profiled stencil dataset is expensive to
//! collect (the paper measures ~140k instances across four GPUs), so the
//! pipeline stores it as JSON and reloads it for later model training —
//! OC selection and performance prediction both read from the same stored
//! corpus (paper §IV-A).

use crate::dataset::ProfiledCorpus;
use std::fs;
use std::io;
use std::path::Path;

/// Errors from saving/loading a corpus.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// (De)serialization failure.
    Serde(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Serde(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Serde(e)
    }
}

/// Save a profiled corpus as JSON.
pub fn save_corpus(corpus: &ProfiledCorpus, path: &Path) -> Result<(), PersistError> {
    let json = serde_json::to_string(corpus)?;
    fs::write(path, json)?;
    Ok(())
}

/// Load a profiled corpus from JSON.
pub fn load_corpus(path: &Path) -> Result<ProfiledCorpus, PersistError> {
    let json = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use stencilmart_gpusim::GpuId;
    use stencilmart_stencil::pattern::Dim;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "stencilmart_test_{name}_{}.json",
            std::process::id()
        ));
        p
    }

    #[test]
    fn corpus_roundtrips_through_json() {
        let cfg = PipelineConfig {
            stencils_per_dim: 6,
            samples_per_oc: 2,
            gpus: vec![GpuId::V100],
            ..PipelineConfig::default()
        };
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        let path = tmp_path("roundtrip");
        save_corpus(&corpus, &path).expect("save");
        let loaded = load_corpus(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded.patterns, corpus.patterns);
        assert_eq!(loaded.grid, corpus.grid);
        assert_eq!(loaded.profiles.len(), corpus.profiles.len());
        // Derived artifacts agree.
        assert_eq!(loaded.derive_merging(5), corpus.derive_merging(5));
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_corpus(Path::new("/nonexistent/corpus.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }

    #[test]
    fn load_garbage_errors() {
        let path = tmp_path("garbage");
        std::fs::write(&path, "not json at all").unwrap();
        let err = load_corpus(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, PersistError::Serde(_)));
    }
}

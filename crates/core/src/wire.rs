//! The versioned binary wire protocol spoken by `advisord` and its
//! clients.
//!
//! Byte layout of one frame on the stream:
//!
//! ```text
//! frame := uvarint(body_len) body
//! body  := version:u8  msg_type:u8  checksum:u64le  fields
//! ```
//!
//! `checksum` is the FNV-1a hash (the same function the observability
//! manifests and model bundles use) of exactly the `fields` bytes.
//! `fields` is a sequence of TLV entries with protobuf-style keys
//! `uvarint((tag << 3) | wire_type)` and three wire types: `0` varint,
//! `1` fixed 8-byte little-endian, `2` length-delimited bytes. Unknown
//! tags are skipped by wire type, so old decoders tolerate fields added
//! by newer encoders (forward compatibility); bumping [`WIRE_VERSION`]
//! is reserved for layout-breaking changes.
//!
//! [`FrameDecoder`] is a streaming decoder: push arbitrary byte chunks,
//! pop complete frames. It never panics on truncated or hostile input —
//! every failure is a structured [`MartError`] wrapped in a
//! [`WireError`] that also says whether stream framing survives
//! (`fatal == false`: the broken frame was consumed and the stream
//! continues at the next frame boundary) or is lost (`fatal == true`:
//! the connection must be closed).

use crate::error::MartError;
use stencilmart_obs::counters::{FRAMES_DECODED, WIRE_DECODE_ERRORS};
use stencilmart_obs::manifest::fnv1a;

/// The protocol version this build speaks.
pub const WIRE_VERSION: u8 = 1;
/// Hard cap on one frame's body length; a length prefix above this is a
/// length-lie and kills the connection instead of stalling it.
pub const MAX_FRAME_LEN: usize = 1 << 20;
/// Fixed body header: version byte, msg-type byte, 8-byte checksum.
const HEADER_LEN: usize = 10;
/// Cap on offsets per pattern blob (largest canonical stencil is well
/// under this; a hostile count cannot force a huge allocation).
const MAX_PATTERN_POINTS: usize = 4096;
/// Cap on entries in a ranking blob.
const MAX_RANKING_ITEMS: usize = 64;

const WT_VARINT: u8 = 0;
const WT_FIXED64: u8 = 1;
const WT_BYTES: u8 = 2;

// Message types. Requests are < 0x80; responses have the high bit set.
const MSG_BEST_OC: u8 = 1;
const MSG_PREDICT_TIME: u8 = 2;
const MSG_RANK_GPUS: u8 = 3;
const MSG_PING: u8 = 4;
const MSG_RELOAD: u8 = 5;
const MSG_SHUTDOWN: u8 = 6;
const MSG_RESPONSE: u8 = 0x80;

/// How a request names its stencil: by canonical-suite name or by an
/// explicit offset list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternSpec {
    /// A canonical benchmark name such as `star2d1r`.
    Name(String),
    /// Explicit offsets (origin implicit) at the given rank (1–3).
    Offsets {
        /// Spatial rank of the pattern (number of meaningful
        /// components per offset).
        rank: u8,
        /// Neighbor offsets; components beyond `rank` are zero.
        points: Vec<[i32; 3]>,
    },
}

/// A decoded advisor request. String-typed fields (`gpu`, `oc`,
/// `criterion`) are validated by the dispatch layer, not the decoder,
/// so an unknown GPU is an `unknown_gpu` response rather than a dead
/// connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Predict the best optimization combination on one GPU.
    BestOc {
        /// Target GPU name.
        gpu: String,
        /// The stencil to advise on.
        pattern: PatternSpec,
    },
    /// Predict execution time of a configured kernel on one GPU.
    PredictTime {
        /// Target GPU name.
        gpu: String,
        /// The stencil to advise on.
        pattern: PatternSpec,
        /// Optimization-combination name (e.g. `ST_BM`).
        oc: String,
    },
    /// Rank all GPUs of a criterion by predicted score.
    RankGpus {
        /// Ranking criterion (`perf` or `cost`).
        criterion: String,
        /// The stencil to advise on.
        pattern: PatternSpec,
        /// Optimization-combination name.
        oc: String,
    },
    /// Liveness probe; answered without touching the model.
    Ping,
    /// Control frame: hot-swap the model bundle from the daemon's
    /// configured path.
    Reload,
    /// Control frame: stop accepting and shut the daemon down.
    Shutdown,
}

/// A successful reply payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Best OC for the requested stencil/GPU.
    BestOc {
        /// Canonical OC name.
        oc: String,
    },
    /// Predicted execution time.
    Time {
        /// Milliseconds.
        ms: f64,
    },
    /// GPUs ordered by predicted score (ascending).
    Ranking(Vec<(String, f64)>),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Reload`]: the swap succeeded.
    Reloaded {
        /// Model generation now serving.
        version: u64,
    },
}

/// One response frame: the request id echoed back, the model generation
/// that served it, and the outcome (errors travel as `(kind, message)`
/// string pairs, mirroring the JSONL error shape).
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request's id.
    pub id: u64,
    /// Generation counter of the model bundle that produced this
    /// answer (0 for answers that never touched the model).
    pub model_version: u64,
    /// The outcome: a reply, or a stable error kind plus message.
    pub result: Result<Reply, (String, String)>,
}

/// A decoded frame: a request (with its client-chosen id) or a
/// response.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A request frame.
    Request {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// The request payload.
        req: Request,
    },
    /// A response frame.
    Response(Response),
}

/// A decode failure: the structured error plus whether stream framing
/// is lost (`fatal`) or the decoder already resynchronized at the next
/// frame boundary.
#[derive(Debug)]
pub struct WireError {
    /// What went wrong.
    pub error: MartError,
    /// `true` when the byte stream can no longer be framed and the
    /// connection must be closed.
    pub fatal: bool,
}

impl WireError {
    fn recoverable(error: MartError) -> WireError {
        WireError {
            error,
            fatal: false,
        }
    }

    fn fatal(error: MartError) -> WireError {
        WireError { error, fatal: true }
    }
}

// ---------------------------------------------------------------------
// Varint primitives
// ---------------------------------------------------------------------

/// Append an LEB128 unsigned varint.
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read an LEB128 unsigned varint from `buf` at `*pos`, advancing
/// `*pos`. At most 10 bytes are consumed (the longest u64 encoding).
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, MartError> {
    let mut v: u64 = 0;
    for i in 0..10 {
        let Some(&byte) = buf.get(*pos + i) else {
            return Err(MartError::Decode("truncated varint".to_string()));
        };
        let payload = u64::from(byte & 0x7f);
        // The 10th byte may only contribute the final bit of a u64.
        if i == 9 && byte > 1 {
            return Err(MartError::Decode("varint overflows u64".to_string()));
        }
        v |= payload << (7 * i);
        if byte & 0x80 == 0 {
            *pos += i + 1;
            return Ok(v);
        }
    }
    Err(MartError::Decode("varint longer than 10 bytes".to_string()))
}

/// Zigzag-encode a signed value for varint transport.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Invert [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------
// TLV field helpers
// ---------------------------------------------------------------------

fn put_key(buf: &mut Vec<u8>, tag: u32, wire_type: u8) {
    put_uvarint(buf, (u64::from(tag) << 3) | u64::from(wire_type));
}

fn put_field_varint(buf: &mut Vec<u8>, tag: u32, v: u64) {
    put_key(buf, tag, WT_VARINT);
    put_uvarint(buf, v);
}

fn put_field_f64(buf: &mut Vec<u8>, tag: u32, v: f64) {
    put_key(buf, tag, WT_FIXED64);
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_field_bytes(buf: &mut Vec<u8>, tag: u32, v: &[u8]) {
    put_key(buf, tag, WT_BYTES);
    put_uvarint(buf, v.len() as u64);
    buf.extend_from_slice(v);
}

/// One decoded TLV value.
enum FieldValue<'a> {
    Varint(u64),
    Fixed64(u64),
    Bytes(&'a [u8]),
}

/// Iterate the TLV fields of a body, calling `f(tag, value)` per known
/// wire type and silently skipping unknown tags (the *caller* decides
/// which tags it understands; this layer only frames them).
fn for_each_field(
    fields: &[u8],
    mut f: impl FnMut(u32, FieldValue<'_>) -> Result<(), MartError>,
) -> Result<(), MartError> {
    let mut pos = 0usize;
    while pos < fields.len() {
        let key = get_uvarint(fields, &mut pos)?;
        let tag = u32::try_from(key >> 3)
            .map_err(|_| MartError::Decode("field tag out of range".to_string()))?;
        match (key & 7) as u8 {
            WT_VARINT => {
                let v = get_uvarint(fields, &mut pos)?;
                f(tag, FieldValue::Varint(v))?;
            }
            WT_FIXED64 => {
                let end = pos
                    .checked_add(8)
                    .filter(|&e| e <= fields.len())
                    .ok_or_else(|| MartError::Decode("truncated fixed64 field".to_string()))?;
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&fields[pos..end]);
                pos = end;
                f(tag, FieldValue::Fixed64(u64::from_le_bytes(raw)))?;
            }
            WT_BYTES => {
                let len = get_uvarint(fields, &mut pos)?;
                let len = usize::try_from(len)
                    .ok()
                    .filter(|&l| l <= fields.len().saturating_sub(pos))
                    .ok_or_else(|| {
                        MartError::Decode("bytes field longer than the frame".to_string())
                    })?;
                let slice = &fields[pos..pos + len];
                pos += len;
                f(tag, FieldValue::Bytes(slice))?;
            }
            wt => {
                return Err(MartError::Decode(format!(
                    "unknown wire type {wt} cannot be skipped"
                )));
            }
        }
    }
    Ok(())
}

fn utf8(bytes: &[u8], what: &str) -> Result<String, MartError> {
    std::str::from_utf8(bytes)
        .map(str::to_string)
        .map_err(|_| MartError::Decode(format!("{what} is not valid UTF-8")))
}

// ---------------------------------------------------------------------
// Pattern / ranking blobs
// ---------------------------------------------------------------------

fn encode_pattern_blob(rank: u8, points: &[[i32; 3]]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + points.len() * 3);
    out.push(rank);
    put_uvarint(&mut out, points.len() as u64);
    for p in points {
        for &c in p.iter().take(usize::from(rank)) {
            put_uvarint(&mut out, zigzag(i64::from(c)));
        }
    }
    out
}

fn decode_pattern_blob(blob: &[u8]) -> Result<PatternSpec, MartError> {
    let Some(&rank) = blob.first() else {
        return Err(MartError::Decode("empty pattern blob".to_string()));
    };
    if !(1..=3).contains(&rank) {
        return Err(MartError::Decode(format!(
            "pattern rank {rank} not in 1..=3"
        )));
    }
    let mut pos = 1usize;
    let count = get_uvarint(blob, &mut pos)?;
    let count = usize::try_from(count)
        .ok()
        .filter(|&c| c <= MAX_PATTERN_POINTS)
        .ok_or_else(|| MartError::Decode("pattern point count out of range".to_string()))?;
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        let mut p = [0i32; 3];
        for axis in p.iter_mut().take(usize::from(rank)) {
            let raw = unzigzag(get_uvarint(blob, &mut pos)?);
            *axis = i32::try_from(raw)
                .map_err(|_| MartError::Decode(format!("offset component {raw} exceeds i32")))?;
        }
        points.push(p);
    }
    if pos != blob.len() {
        return Err(MartError::Decode(
            "trailing garbage after pattern points".to_string(),
        ));
    }
    Ok(PatternSpec::Offsets { rank, points })
}

fn encode_ranking_blob(items: &[(String, f64)]) -> Vec<u8> {
    let mut out = Vec::new();
    put_uvarint(&mut out, items.len() as u64);
    for (name, score) in items {
        put_uvarint(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&score.to_le_bytes());
    }
    out
}

fn decode_ranking_blob(blob: &[u8]) -> Result<Vec<(String, f64)>, MartError> {
    let mut pos = 0usize;
    let count = get_uvarint(blob, &mut pos)?;
    let count = usize::try_from(count)
        .ok()
        .filter(|&c| c <= MAX_RANKING_ITEMS)
        .ok_or_else(|| MartError::Decode("ranking item count out of range".to_string()))?;
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        let len = get_uvarint(blob, &mut pos)?;
        let len = usize::try_from(len)
            .ok()
            .filter(|&l| l <= blob.len().saturating_sub(pos))
            .ok_or_else(|| MartError::Decode("ranking name longer than the blob".to_string()))?;
        let name = utf8(&blob[pos..pos + len], "ranking GPU name")?;
        pos += len;
        let end = pos
            .checked_add(8)
            .filter(|&e| e <= blob.len())
            .ok_or_else(|| MartError::Decode("truncated ranking score".to_string()))?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&blob[pos..end]);
        pos = end;
        items.push((name, f64::from_le_bytes(raw)));
    }
    if pos != blob.len() {
        return Err(MartError::Decode(
            "trailing garbage after ranking items".to_string(),
        ));
    }
    Ok(items)
}

// ---------------------------------------------------------------------
// Frame encoding
// ---------------------------------------------------------------------

// Request field tags.
const TAG_ID: u32 = 1;
const TAG_GPU: u32 = 2;
const TAG_STENCIL_NAME: u32 = 3;
const TAG_OFFSETS: u32 = 4;
const TAG_OC: u32 = 5;
const TAG_CRITERION: u32 = 6;

// Response field tags (TAG_ID shared).
const TAG_MODEL_VERSION: u32 = 2;
const TAG_STATUS: u32 = 3;
const TAG_ERROR_KIND: u32 = 4;
const TAG_ERROR_MSG: u32 = 5;
const TAG_RESP_OC: u32 = 6;
const TAG_TIME_MS: u32 = 7;
const TAG_RANKING: u32 = 8;
const TAG_RELOADED_VERSION: u32 = 9;

fn put_pattern(fields: &mut Vec<u8>, pattern: &PatternSpec) {
    match pattern {
        PatternSpec::Name(name) => put_field_bytes(fields, TAG_STENCIL_NAME, name.as_bytes()),
        PatternSpec::Offsets { rank, points } => {
            put_field_bytes(fields, TAG_OFFSETS, &encode_pattern_blob(*rank, points));
        }
    }
}

/// Wrap encoded fields into a complete frame (length prefix, version,
/// message type, checksum).
fn encode_frame(msg_type: u8, fields: &[u8]) -> Vec<u8> {
    let body_len = HEADER_LEN + fields.len();
    let mut out = Vec::with_capacity(5 + body_len);
    put_uvarint(&mut out, body_len as u64);
    out.push(WIRE_VERSION);
    out.push(msg_type);
    out.extend_from_slice(&fnv1a(fields).to_le_bytes());
    out.extend_from_slice(fields);
    out
}

/// Encode one request frame with the given correlation id.
pub fn encode_request(id: u64, req: &Request) -> Vec<u8> {
    let mut fields = Vec::with_capacity(64);
    put_field_varint(&mut fields, TAG_ID, id);
    let msg_type = match req {
        Request::BestOc { gpu, pattern } => {
            put_field_bytes(&mut fields, TAG_GPU, gpu.as_bytes());
            put_pattern(&mut fields, pattern);
            MSG_BEST_OC
        }
        Request::PredictTime { gpu, pattern, oc } => {
            put_field_bytes(&mut fields, TAG_GPU, gpu.as_bytes());
            put_pattern(&mut fields, pattern);
            put_field_bytes(&mut fields, TAG_OC, oc.as_bytes());
            MSG_PREDICT_TIME
        }
        Request::RankGpus {
            criterion,
            pattern,
            oc,
        } => {
            put_field_bytes(&mut fields, TAG_CRITERION, criterion.as_bytes());
            put_pattern(&mut fields, pattern);
            put_field_bytes(&mut fields, TAG_OC, oc.as_bytes());
            MSG_RANK_GPUS
        }
        Request::Ping => MSG_PING,
        Request::Reload => MSG_RELOAD,
        Request::Shutdown => MSG_SHUTDOWN,
    };
    encode_frame(msg_type, &fields)
}

/// Encode one response frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut fields = Vec::with_capacity(64);
    put_field_varint(&mut fields, TAG_ID, resp.id);
    put_field_varint(&mut fields, TAG_MODEL_VERSION, resp.model_version);
    match &resp.result {
        Ok(reply) => {
            put_field_varint(&mut fields, TAG_STATUS, 0);
            match reply {
                Reply::BestOc { oc } => put_field_bytes(&mut fields, TAG_RESP_OC, oc.as_bytes()),
                Reply::Time { ms } => put_field_f64(&mut fields, TAG_TIME_MS, *ms),
                Reply::Ranking(items) => {
                    put_field_bytes(&mut fields, TAG_RANKING, &encode_ranking_blob(items));
                }
                Reply::Pong => {}
                Reply::Reloaded { version } => {
                    put_field_varint(&mut fields, TAG_RELOADED_VERSION, *version);
                }
            }
        }
        Err((kind, msg)) => {
            put_field_varint(&mut fields, TAG_STATUS, 1);
            put_field_bytes(&mut fields, TAG_ERROR_KIND, kind.as_bytes());
            put_field_bytes(&mut fields, TAG_ERROR_MSG, msg.as_bytes());
        }
    }
    encode_frame(MSG_RESPONSE, &fields)
}

// ---------------------------------------------------------------------
// Frame decoding
// ---------------------------------------------------------------------

#[derive(Default)]
struct RequestFields {
    id: u64,
    gpu: Option<String>,
    stencil_name: Option<String>,
    offsets: Option<PatternSpec>,
    oc: Option<String>,
    criterion: Option<String>,
}

fn decode_request(msg_type: u8, fields: &[u8]) -> Result<Frame, MartError> {
    let mut f = RequestFields::default();
    for_each_field(fields, |tag, value| {
        match (tag, value) {
            (TAG_ID, FieldValue::Varint(v)) => f.id = v,
            (TAG_GPU, FieldValue::Bytes(b)) => f.gpu = Some(utf8(b, "gpu name")?),
            (TAG_STENCIL_NAME, FieldValue::Bytes(b)) => {
                f.stencil_name = Some(utf8(b, "stencil name")?);
            }
            (TAG_OFFSETS, FieldValue::Bytes(b)) => f.offsets = Some(decode_pattern_blob(b)?),
            (TAG_OC, FieldValue::Bytes(b)) => f.oc = Some(utf8(b, "oc name")?),
            (TAG_CRITERION, FieldValue::Bytes(b)) => f.criterion = Some(utf8(b, "criterion")?),
            // Unknown tags and unexpected wire types for known tags are
            // skipped: forward compatibility over strictness.
            _ => {}
        }
        Ok(())
    })?;
    let pattern = |f: &mut RequestFields| -> Result<PatternSpec, MartError> {
        // An explicit offset list wins over a name when both appear.
        if let Some(spec) = f.offsets.take() {
            return Ok(spec);
        }
        if let Some(name) = f.stencil_name.take() {
            return Ok(PatternSpec::Name(name));
        }
        Err(MartError::Decode(
            "request carries neither stencil name nor offsets".to_string(),
        ))
    };
    let gpu = |f: &mut RequestFields| {
        f.gpu
            .take()
            .ok_or_else(|| MartError::Decode("request missing gpu field".to_string()))
    };
    let oc = |f: &mut RequestFields| {
        f.oc.take()
            .ok_or_else(|| MartError::Decode("request missing oc field".to_string()))
    };
    let req = match msg_type {
        MSG_BEST_OC => Request::BestOc {
            gpu: gpu(&mut f)?,
            pattern: pattern(&mut f)?,
        },
        MSG_PREDICT_TIME => Request::PredictTime {
            gpu: gpu(&mut f)?,
            pattern: pattern(&mut f)?,
            oc: oc(&mut f)?,
        },
        MSG_RANK_GPUS => Request::RankGpus {
            criterion: f.criterion.take().unwrap_or_else(|| "perf".to_string()),
            pattern: pattern(&mut f)?,
            oc: oc(&mut f)?,
        },
        MSG_PING => Request::Ping,
        MSG_RELOAD => Request::Reload,
        MSG_SHUTDOWN => Request::Shutdown,
        other => {
            return Err(MartError::Decode(format!(
                "unknown message type {other:#x}"
            )));
        }
    };
    Ok(Frame::Request { id: f.id, req })
}

fn decode_response(fields: &[u8]) -> Result<Frame, MartError> {
    let mut id = 0u64;
    let mut model_version = 0u64;
    let mut status = 0u64;
    let mut error_kind: Option<String> = None;
    let mut error_msg: Option<String> = None;
    let mut oc: Option<String> = None;
    let mut time_ms: Option<f64> = None;
    let mut ranking: Option<Vec<(String, f64)>> = None;
    let mut reloaded_version: Option<u64> = None;
    for_each_field(fields, |tag, value| {
        match (tag, value) {
            (TAG_ID, FieldValue::Varint(v)) => id = v,
            (TAG_MODEL_VERSION, FieldValue::Varint(v)) => model_version = v,
            (TAG_STATUS, FieldValue::Varint(v)) => status = v,
            (TAG_ERROR_KIND, FieldValue::Bytes(b)) => error_kind = Some(utf8(b, "error kind")?),
            (TAG_ERROR_MSG, FieldValue::Bytes(b)) => error_msg = Some(utf8(b, "error message")?),
            (TAG_RESP_OC, FieldValue::Bytes(b)) => oc = Some(utf8(b, "oc name")?),
            (TAG_TIME_MS, FieldValue::Fixed64(v)) => time_ms = Some(f64::from_bits(v)),
            (TAG_RANKING, FieldValue::Bytes(b)) => ranking = Some(decode_ranking_blob(b)?),
            (TAG_RELOADED_VERSION, FieldValue::Varint(v)) => reloaded_version = Some(v),
            _ => {}
        }
        Ok(())
    })?;
    let result = if status != 0 {
        Err((
            error_kind.unwrap_or_else(|| "unknown".to_string()),
            error_msg.unwrap_or_default(),
        ))
    } else if let Some(oc) = oc {
        Ok(Reply::BestOc { oc })
    } else if let Some(ms) = time_ms {
        Ok(Reply::Time { ms })
    } else if let Some(items) = ranking {
        Ok(Reply::Ranking(items))
    } else if let Some(version) = reloaded_version {
        Ok(Reply::Reloaded { version })
    } else {
        Ok(Reply::Pong)
    };
    Ok(Frame::Response(Response {
        id,
        model_version,
        result,
    }))
}

fn decode_body(body: &[u8]) -> Result<Frame, MartError> {
    debug_assert!(body.len() >= HEADER_LEN);
    let version = body[0];
    if version != WIRE_VERSION {
        return Err(MartError::WrongVersion {
            found: u32::from(version),
            expected: u32::from(WIRE_VERSION),
        });
    }
    let msg_type = body[1];
    let mut stored = [0u8; 8];
    stored.copy_from_slice(&body[2..HEADER_LEN]);
    let stored = u64::from_le_bytes(stored);
    let fields = &body[HEADER_LEN..];
    let computed = fnv1a(fields);
    if stored != computed {
        return Err(MartError::ChecksumMismatch {
            stored: format!("{stored:016x}"),
            computed: format!("{computed:016x}"),
        });
    }
    if msg_type == MSG_RESPONSE {
        decode_response(fields)
    } else {
        decode_request(msg_type, fields)
    }
}

/// Streaming frame decoder. Push byte chunks of any size; pop complete
/// frames. Never panics on hostile input.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing.
        if self.pos > 0 && (self.pos >= 4096 || self.pos == self.buf.len()) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Try to decode the next complete frame.
    ///
    /// * `Ok(Some(frame))` — one frame decoded and consumed.
    /// * `Ok(None)` — the buffer holds no complete frame yet.
    /// * `Err(e)` with `e.fatal == false` — the current frame was
    ///   corrupt; it has been consumed and the stream continues at the
    ///   next frame boundary.
    /// * `Err(e)` with `e.fatal == true` — framing is lost; the caller
    ///   must drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.is_empty() {
            return Ok(None);
        }
        // Parse the length prefix. A 5-byte prefix already exceeds
        // MAX_FRAME_LEN, so an unterminated varint of 5+ bytes is a
        // length-lie, not a short read.
        let mut cursor = 0usize;
        let body_len = match get_uvarint(avail, &mut cursor) {
            Ok(v) => v,
            Err(_) if avail.len() < 5 => return Ok(None),
            Err(e) => {
                WIRE_DECODE_ERRORS.inc();
                return Err(WireError::fatal(e));
            }
        };
        let body_len = match usize::try_from(body_len) {
            Ok(l) if (HEADER_LEN..=MAX_FRAME_LEN).contains(&l) => l,
            _ => {
                WIRE_DECODE_ERRORS.inc();
                return Err(WireError::fatal(MartError::Decode(format!(
                    "frame length {body_len} outside {HEADER_LEN}..={MAX_FRAME_LEN}"
                ))));
            }
        };
        let frame_end = cursor + body_len;
        if avail.len() < frame_end {
            return Ok(None);
        }
        // The whole frame is buffered: consume it regardless of what
        // the body holds, so a corrupt body never wedges the stream.
        let body_range = (self.pos + cursor)..(self.pos + frame_end);
        self.pos += frame_end;
        match decode_body(&self.buf[body_range]) {
            Ok(frame) => {
                FRAMES_DECODED.inc();
                Ok(Some(frame))
            }
            Err(e) => {
                WIRE_DECODE_ERRORS.inc();
                Err(WireError::recoverable(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::BestOc {
                gpu: "V100".to_string(),
                pattern: PatternSpec::Name("star2d1r".to_string()),
            },
            Request::BestOc {
                gpu: "P100".to_string(),
                pattern: PatternSpec::Offsets {
                    rank: 2,
                    points: vec![[1, 0, 0], [-1, 0, 0], [0, 1, 0], [0, -1, 0]],
                },
            },
            Request::PredictTime {
                gpu: "A100".to_string(),
                pattern: PatternSpec::Offsets {
                    rank: 3,
                    points: vec![[0, 0, 1], [0, 0, -1]],
                },
                oc: "ST_BM".to_string(),
            },
            Request::RankGpus {
                criterion: "cost".to_string(),
                pattern: PatternSpec::Name("box3d2r".to_string()),
                oc: "ST".to_string(),
            },
            Request::Ping,
            Request::Reload,
            Request::Shutdown,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response {
                id: 7,
                model_version: 3,
                result: Ok(Reply::BestOc {
                    oc: "ST_CM_TB".to_string(),
                }),
            },
            Response {
                id: u64::MAX,
                model_version: 0,
                result: Ok(Reply::Time { ms: 0.25 }),
            },
            Response {
                id: 0,
                model_version: 1,
                result: Ok(Reply::Ranking(vec![
                    ("V100".to_string(), 1.5),
                    ("P100".to_string(), 2.25),
                ])),
            },
            Response {
                id: 2,
                model_version: 9,
                result: Ok(Reply::Pong),
            },
            Response {
                id: 3,
                model_version: 10,
                result: Ok(Reply::Reloaded { version: 10 }),
            },
            Response {
                id: 4,
                model_version: 2,
                result: Err(("unknown_gpu".to_string(), "no such GPU: H100".to_string())),
            },
        ]
    }

    #[test]
    fn uvarint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn uvarint_rejects_overflow_and_truncation() {
        // 11 continuation bytes: longer than any u64.
        let long = [0x80u8; 11];
        assert!(get_uvarint(&long, &mut 0).is_err());
        // 10th byte contributing more than the final bit overflows.
        let mut overflow = [0xffu8; 9].to_vec();
        overflow.push(0x02);
        assert!(get_uvarint(&overflow, &mut 0).is_err());
        // Truncated: all continuation bits, buffer ends.
        assert!(get_uvarint(&[0x80, 0x80], &mut 0).is_err());
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::from(i32::MAX),
            i64::from(i32::MIN),
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn requests_round_trip() {
        for (i, req) in sample_requests().into_iter().enumerate() {
            let id = i as u64 * 17;
            let bytes = encode_request(id, &req);
            let mut dec = FrameDecoder::new();
            dec.push(&bytes);
            let frame = dec.next_frame().unwrap().unwrap();
            assert_eq!(frame, Frame::Request { id, req });
            assert!(dec.next_frame().unwrap().is_none());
            assert_eq!(dec.pending(), 0);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let bytes = encode_response(&resp);
            let mut dec = FrameDecoder::new();
            dec.push(&bytes);
            let frame = dec.next_frame().unwrap().unwrap();
            assert_eq!(frame, Frame::Response(resp));
        }
    }

    #[test]
    fn byte_by_byte_streaming_decodes_identically() {
        let reqs = sample_requests();
        let mut stream = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            stream.extend_from_slice(&encode_request(i as u64, req));
        }
        let mut dec = FrameDecoder::new();
        let mut decoded = Vec::new();
        for &b in &stream {
            dec.push(&[b]);
            while let Some(frame) = dec.next_frame().unwrap() {
                decoded.push(frame);
            }
        }
        assert_eq!(decoded.len(), reqs.len());
        for (i, (frame, req)) in decoded.into_iter().zip(reqs).enumerate() {
            assert_eq!(frame, Frame::Request { id: i as u64, req });
        }
    }

    #[test]
    fn unknown_fields_are_skipped() {
        // Hand-build a best_oc frame carrying three fields from "the
        // future": an extra varint, bytes, and fixed64 tag.
        let mut fields = Vec::new();
        put_field_varint(&mut fields, TAG_ID, 9);
        put_field_bytes(&mut fields, TAG_GPU, b"V100");
        put_field_bytes(&mut fields, TAG_STENCIL_NAME, b"star2d1r");
        put_field_varint(&mut fields, 100, 12345);
        put_field_bytes(&mut fields, 101, b"future payload");
        put_field_f64(&mut fields, 102, 2.75);
        let bytes = encode_frame(MSG_BEST_OC, &fields);
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let frame = dec.next_frame().unwrap().unwrap();
        assert_eq!(
            frame,
            Frame::Request {
                id: 9,
                req: Request::BestOc {
                    gpu: "V100".to_string(),
                    pattern: PatternSpec::Name("star2d1r".to_string()),
                }
            }
        );
    }

    #[test]
    fn wrong_version_is_recoverable() {
        let mut bytes = encode_request(1, &Request::Ping);
        // The version byte sits right after the 1-byte length prefix
        // for small frames.
        bytes[1] = WIRE_VERSION + 1;
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        dec.push(&encode_request(2, &Request::Ping));
        let err = dec.next_frame().unwrap_err();
        assert!(!err.fatal);
        assert_eq!(err.error.kind(), "wrong_version");
        // The stream resynchronizes on the next frame.
        let frame = dec.next_frame().unwrap().unwrap();
        assert_eq!(
            frame,
            Frame::Request {
                id: 2,
                req: Request::Ping
            }
        );
    }

    #[test]
    fn corrupt_checksum_is_recoverable() {
        let mut bytes = encode_request(1, &Request::Ping);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // flip field bytes, not the stored checksum
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        dec.push(&encode_request(3, &Request::Ping));
        let err = dec.next_frame().unwrap_err();
        assert!(!err.fatal);
        assert_eq!(err.error.kind(), "checksum_mismatch");
        assert!(matches!(
            dec.next_frame().unwrap(),
            Some(Frame::Request { id: 3, .. })
        ));
    }

    #[test]
    fn truncated_frame_waits_for_more_bytes() {
        let bytes = encode_request(5, &Request::Ping);
        let mut dec = FrameDecoder::new();
        dec.push(&bytes[..bytes.len() - 1]);
        assert!(dec.next_frame().unwrap().is_none());
        dec.push(&bytes[bytes.len() - 1..]);
        assert!(dec.next_frame().unwrap().is_some());
    }

    #[test]
    fn length_lie_is_fatal() {
        // A length prefix claiming 100 MiB.
        let mut bytes = Vec::new();
        put_uvarint(&mut bytes, 100 << 20);
        bytes.extend_from_slice(&[0u8; 16]);
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let err = dec.next_frame().unwrap_err();
        assert!(err.fatal);
        assert_eq!(err.error.kind(), "decode");
    }

    #[test]
    fn undersized_body_is_fatal() {
        // Length prefix below the fixed header size.
        let mut bytes = Vec::new();
        put_uvarint(&mut bytes, 4);
        bytes.extend_from_slice(&[0u8; 4]);
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert!(dec.next_frame().unwrap_err().fatal);
    }

    #[test]
    fn hostile_pattern_counts_do_not_allocate() {
        // An offsets blob claiming u64::MAX points must error, not OOM.
        let mut blob = vec![2u8];
        put_uvarint(&mut blob, u64::MAX);
        let mut fields = Vec::new();
        put_field_bytes(&mut fields, TAG_GPU, b"V100");
        put_field_bytes(&mut fields, TAG_OFFSETS, &blob);
        let bytes = encode_frame(MSG_BEST_OC, &fields);
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        let err = dec.next_frame().unwrap_err();
        assert!(!err.fatal);
        assert_eq!(err.error.kind(), "decode");
    }
}

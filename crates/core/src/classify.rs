//! OC-selection evaluation: k-fold cross-validation of the classification
//! mechanisms (paper §V-B, Fig. 9).

use crate::dataset::ClassificationDataset;
use crate::models::{ClassifierKind, TrainedClassifier};
use serde::{Deserialize, Serialize};
use stencilmart_ml::data::KFold;
use stencilmart_ml::metrics::accuracy;
use stencilmart_ml::par::par_map_indices;

/// Cross-validated evaluation of one classifier on one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifierEval {
    /// The evaluated mechanism.
    pub kind: ClassifierKind,
    /// Mean accuracy over folds.
    pub accuracy: f64,
    /// Per-fold accuracies.
    pub fold_accuracies: Vec<f64>,
    /// Out-of-fold prediction for every dataset row.
    pub predictions: Vec<usize>,
}

/// Run k-fold cross-validation for one mechanism. Folds train in
/// parallel; predictions are assembled out-of-fold so every row has
/// exactly one held-out prediction.
///
/// GBDT folds also parallelize internally (one-vs-rest boosters train
/// across workers). Both levels are scheduling-only — the fitted models
/// and out-of-fold predictions are bit-identical for any
/// `STENCILMART_THREADS` setting — so the brief worker oversubscription
/// when folds and boosters overlap costs only scheduling, never
/// reproducibility.
pub fn evaluate_classifier(
    kind: ClassifierKind,
    ds: &ClassificationDataset,
    folds: usize,
    seed: u64,
) -> ClassifierEval {
    assert!(ds.len() >= folds, "dataset smaller than fold count");
    let kf = KFold::new(ds.len(), folds, seed);
    let fold_results: Vec<(Vec<usize>, Vec<usize>)> = par_map_indices(folds, |f| {
        let (train_idx, test_idx) = kf.split(f);
        let mut model = TrainedClassifier::train(
            kind,
            ds.dim,
            ds.classes,
            &ds.features,
            &ds.tensors,
            &ds.labels,
            &train_idx,
            seed ^ (f as u64).wrapping_mul(0x9E37),
        );
        let preds = model.predict(&ds.features, &ds.tensors, &test_idx);
        (test_idx, preds)
    });
    let mut predictions = vec![usize::MAX; ds.len()];
    let mut fold_accuracies = Vec::with_capacity(folds);
    for (test_idx, preds) in &fold_results {
        let truth: Vec<usize> = test_idx.iter().map(|&i| ds.labels[i]).collect();
        fold_accuracies.push(accuracy(preds, &truth));
        for (&i, &p) in test_idx.iter().zip(preds) {
            predictions[i] = p;
        }
    }
    debug_assert!(predictions.iter().all(|&p| p != usize::MAX));
    ClassifierEval {
        kind,
        accuracy: accuracy(&predictions, &ds.labels),
        fold_accuracies,
        predictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::dataset::ProfiledCorpus;
    use stencilmart_gpusim::GpuId;
    use stencilmart_stencil::pattern::Dim;

    fn tiny_dataset() -> ClassificationDataset {
        let cfg = PipelineConfig {
            stencils_per_dim: 24,
            samples_per_oc: 3,
            gpus: vec![GpuId::V100],
            ..PipelineConfig::default()
        };
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        let merging = corpus.derive_merging(5);
        ClassificationDataset::build(&corpus, &merging, GpuId::V100)
    }

    #[test]
    fn gbdt_cv_beats_chance() {
        let ds = tiny_dataset();
        let eval = evaluate_classifier(ClassifierKind::Gbdt, &ds, 3, 0);
        assert_eq!(eval.predictions.len(), ds.len());
        assert_eq!(eval.fold_accuracies.len(), 3);
        // 5 classes → chance ≈ 0.2 only if balanced; any real learning
        // (or majority-class behaviour) lands well above 0.
        assert!(eval.accuracy > 0.2, "accuracy {}", eval.accuracy);
    }

    #[test]
    fn predictions_are_within_class_range() {
        let ds = tiny_dataset();
        let eval = evaluate_classifier(ClassifierKind::Gbdt, &ds, 3, 1);
        assert!(eval.predictions.iter().all(|&p| p < ds.classes));
    }

    #[test]
    fn evaluation_is_deterministic() {
        let ds = tiny_dataset();
        let a = evaluate_classifier(ClassifierKind::Gbdt, &ds, 3, 7);
        let b = evaluate_classifier(ClassifierKind::Gbdt, &ds, 3, 7);
        assert_eq!(a.predictions, b.predictions);
    }
}

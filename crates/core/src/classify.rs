//! OC-selection evaluation: k-fold cross-validation of the classification
//! mechanisms (paper §V-B, Fig. 9), plus leave-one-GPU-out transfer
//! across the multi-vendor matrix.

use crate::dataset::{ClassificationDataset, ProfiledCorpus};
use crate::models::{ClassifierKind, TrainedClassifier};
use crate::pcc::OcMerging;
use serde::{Deserialize, Serialize};
use stencilmart_gpusim::{GpuArch, GpuId};
use stencilmart_ml::data::{FeatureMatrix, KFold};
use stencilmart_ml::metrics::accuracy;
use stencilmart_ml::par::par_map_indices;

/// Cross-validated evaluation of one classifier on one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifierEval {
    /// The evaluated mechanism.
    pub kind: ClassifierKind,
    /// Mean accuracy over folds.
    pub accuracy: f64,
    /// Per-fold accuracies.
    pub fold_accuracies: Vec<f64>,
    /// Out-of-fold prediction for every dataset row.
    pub predictions: Vec<usize>,
}

/// Run k-fold cross-validation for one mechanism. Folds train in
/// parallel; predictions are assembled out-of-fold so every row has
/// exactly one held-out prediction.
///
/// GBDT folds also parallelize internally (one-vs-rest boosters train
/// across workers). Both levels are scheduling-only — the fitted models
/// and out-of-fold predictions are bit-identical for any
/// `STENCILMART_THREADS` setting — so the brief worker oversubscription
/// when folds and boosters overlap costs only scheduling, never
/// reproducibility.
pub fn evaluate_classifier(
    kind: ClassifierKind,
    ds: &ClassificationDataset,
    folds: usize,
    seed: u64,
) -> ClassifierEval {
    assert!(ds.len() >= folds, "dataset smaller than fold count");
    let kf = KFold::new(ds.len(), folds, seed);
    let fold_results: Vec<(Vec<usize>, Vec<usize>)> = par_map_indices(folds, |f| {
        let (train_idx, test_idx) = kf.split(f);
        let mut model = TrainedClassifier::train(
            kind,
            ds.dim,
            ds.classes,
            &ds.features,
            &ds.tensors,
            &ds.labels,
            &train_idx,
            seed ^ (f as u64).wrapping_mul(0x9E37),
        );
        let preds = model.predict(&ds.features, &ds.tensors, &test_idx);
        (test_idx, preds)
    });
    let mut predictions = vec![usize::MAX; ds.len()];
    let mut fold_accuracies = Vec::with_capacity(folds);
    for (test_idx, preds) in &fold_results {
        let truth: Vec<usize> = test_idx.iter().map(|&i| ds.labels[i]).collect();
        fold_accuracies.push(accuracy(preds, &truth));
        for (&i, &p) in test_idx.iter().zip(preds) {
            predictions[i] = p;
        }
    }
    debug_assert!(predictions.iter().all(|&p| p != usize::MAX));
    ClassifierEval {
        kind,
        accuracy: accuracy(&predictions, &ds.labels),
        fold_accuracies,
        predictions,
    }
}

/// Leave-one-GPU-out OC-selection transfer across the GPU matrix.
///
/// Pools every training GPU's classification rows, appends the
/// hardware-characteristic feature vector ([`GpuArch::feature_vector`])
/// to each row — the only signal distinguishing architectures — trains
/// one classifier on the pool, and reports accuracy on the held-out GPU,
/// which contributes zero training rows. With AMD presets in the matrix
/// this includes genuine cross-vendor holdout: an NVIDIA-only training
/// pool predicting OC selection for a wavefront-64 LDS-limited part.
///
/// Returns `None` when the corpus was not profiled on `held_out` or no
/// other GPU remains to train on.
pub fn leave_one_gpu_out(
    kind: ClassifierKind,
    corpus: &ProfiledCorpus,
    merging: &OcMerging,
    held_out: GpuId,
    seed: u64,
) -> Option<f64> {
    let gpus: Vec<GpuId> = corpus.profiles.iter().map(|(g, _)| *g).collect();
    if !gpus.contains(&held_out) || gpus.len() < 2 {
        return None;
    }
    let mut feat_rows: Vec<Vec<f32>> = Vec::new();
    let mut tensor_rows: Vec<Vec<f32>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    let mut train_idx: Vec<usize> = Vec::new();
    let mut test_idx: Vec<usize> = Vec::new();
    let mut dim = None;
    // Training GPUs first, the held-out GPU's rows after, so indices
    // partition cleanly and follow the corpus's GPU order.
    let ordered = gpus
        .iter()
        .copied()
        .filter(|&g| g != held_out)
        .chain(std::iter::once(held_out));
    for gpu in ordered {
        let ds = ClassificationDataset::build(corpus, merging, gpu);
        dim = Some(ds.dim);
        let hw: Vec<f32> = GpuArch::preset(gpu)
            .feature_vector()
            .iter()
            .map(|&v| v as f32)
            .collect();
        for r in 0..ds.len() {
            let mut row = ds.features.row(r).to_vec();
            row.extend_from_slice(&hw);
            let idx = feat_rows.len();
            if gpu == held_out {
                test_idx.push(idx);
            } else {
                train_idx.push(idx);
            }
            feat_rows.push(row);
            tensor_rows.push(ds.tensors.row(r).to_vec());
            labels.push(ds.labels[r]);
        }
    }
    let features = FeatureMatrix::from_rows(feat_rows.iter().map(Vec::as_slice));
    let tensors = FeatureMatrix::from_rows(tensor_rows.iter().map(Vec::as_slice));
    let mut model = TrainedClassifier::train(
        kind,
        dim?,
        merging.classes(),
        &features,
        &tensors,
        &labels,
        &train_idx,
        seed,
    );
    let preds = model.predict(&features, &tensors, &test_idx);
    let truth: Vec<usize> = test_idx.iter().map(|&i| labels[i]).collect();
    Some(accuracy(&preds, &truth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use stencilmart_stencil::pattern::Dim;

    fn tiny_dataset() -> ClassificationDataset {
        let cfg = PipelineConfig {
            stencils_per_dim: 24,
            samples_per_oc: 3,
            gpus: vec![GpuId::V100],
            ..PipelineConfig::default()
        };
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        let merging = corpus.derive_merging(5);
        ClassificationDataset::build(&corpus, &merging, GpuId::V100)
    }

    #[test]
    fn gbdt_cv_beats_chance() {
        let ds = tiny_dataset();
        let eval = evaluate_classifier(ClassifierKind::Gbdt, &ds, 3, 0);
        assert_eq!(eval.predictions.len(), ds.len());
        assert_eq!(eval.fold_accuracies.len(), 3);
        // 5 classes → chance ≈ 0.2 only if balanced; any real learning
        // (or majority-class behaviour) lands well above 0.
        assert!(eval.accuracy > 0.2, "accuracy {}", eval.accuracy);
    }

    #[test]
    fn predictions_are_within_class_range() {
        let ds = tiny_dataset();
        let eval = evaluate_classifier(ClassifierKind::Gbdt, &ds, 3, 1);
        assert!(eval.predictions.iter().all(|&p| p < ds.classes));
    }

    #[test]
    fn evaluation_is_deterministic() {
        let ds = tiny_dataset();
        let a = evaluate_classifier(ClassifierKind::Gbdt, &ds, 3, 7);
        let b = evaluate_classifier(ClassifierKind::Gbdt, &ds, 3, 7);
        assert_eq!(a.predictions, b.predictions);
    }

    #[test]
    fn classification_logo_crosses_the_vendor_boundary() {
        // NVIDIA-only training pool, AMD holdout: the transfer must run
        // end to end and produce a bounded accuracy, and be
        // deterministic. A GPU the corpus never profiled returns None.
        let cfg = PipelineConfig {
            stencils_per_dim: 12,
            samples_per_oc: 2,
            gpus: vec![GpuId::V100, GpuId::A100, GpuId::Mi100],
            ..PipelineConfig::default()
        };
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        let merging = corpus.derive_merging(5);
        let acc = leave_one_gpu_out(ClassifierKind::Gbdt, &corpus, &merging, GpuId::Mi100, 0)
            .expect("MI100 was profiled");
        assert!((0.0..=1.0).contains(&acc), "accuracy {acc}");
        let again =
            leave_one_gpu_out(ClassifierKind::Gbdt, &corpus, &merging, GpuId::Mi100, 0).unwrap();
        assert_eq!(acc, again);
        assert!(
            leave_one_gpu_out(ClassifierKind::Gbdt, &corpus, &merging, GpuId::P100, 0).is_none()
        );
    }
}

//! The structured error type for the persistence + prediction
//! subsystem.
//!
//! Every failure mode that is reachable from *deserialized or
//! user-supplied data* — corrupt bundles, wrong-dimensionality queries,
//! unknown GPUs, unrankable criteria — maps to a [`MartError`] variant
//! instead of a panic, so a long-lived prediction service can reject one
//! bad request and keep serving.

use std::fmt;
use std::io;
use stencilmart_gpusim::GpuId;
use stencilmart_stencil::pattern::Dim;

/// Errors from bundle persistence and the batched prediction API.
#[derive(Debug)]
pub enum MartError {
    /// Underlying I/O failure (missing file, permission, rename…).
    Io(io::Error),
    /// JSON (de)serialization failure, including truncated files.
    Parse(serde_json::Error),
    /// The bundle's format version is not the one this build reads.
    WrongVersion {
        /// Version recorded in the envelope.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The payload bytes do not hash to the envelope's checksum.
    ChecksumMismatch {
        /// Checksum recorded in the envelope.
        stored: String,
        /// Checksum recomputed over the payload.
        computed: String,
    },
    /// The bundle parsed but violates a structural invariant (merging
    /// coverage, representative membership, feature widths…).
    InvalidBundle(String),
    /// A query's stencil dimensionality differs from the trained one.
    DimMismatch {
        /// Dimensionality the model was trained for.
        expected: Dim,
        /// Dimensionality of the query pattern.
        found: Dim,
    },
    /// The requested GPU has no trained classifier (or the name did not
    /// parse).
    UnknownGpu(String),
    /// The classifier produced a class with no representative — only
    /// possible with a corrupt merging.
    UnknownClass(usize),
    /// The GPU cannot be ranked under the requested criterion (e.g.
    /// cost efficiency without a rental price).
    UnrankableGpu(GpuId),
    /// A malformed request (bad pattern offsets, unknown OC name…).
    BadRequest(String),
    /// A wire-protocol frame failed to decode (truncated varint, bad
    /// checksum framing, oversized length, malformed field payload…).
    Decode(String),
    /// An on-disk binned dataset shard failed validation (bad magic,
    /// truncated sections, checksum mismatch, manifest disagreement…).
    InvalidShard(String),
}

impl fmt::Display for MartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MartError::Io(e) => write!(f, "I/O error: {e}"),
            MartError::Parse(e) => write!(f, "parse error: {e}"),
            MartError::WrongVersion { found, expected } => {
                write!(f, "bundle format version {found}, expected {expected}")
            }
            MartError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "payload checksum {computed} does not match stored {stored}"
                )
            }
            MartError::InvalidBundle(why) => write!(f, "invalid bundle: {why}"),
            MartError::DimMismatch { expected, found } => {
                write!(
                    f,
                    "dimensionality mismatch: model is {expected}, query is {found}"
                )
            }
            MartError::UnknownGpu(name) => write!(f, "unknown or untrained GPU: {name}"),
            MartError::UnknownClass(c) => write!(f, "predicted class {c} has no representative"),
            MartError::UnrankableGpu(g) => {
                write!(f, "GPU {g} cannot be ranked under this criterion")
            }
            MartError::BadRequest(why) => write!(f, "bad request: {why}"),
            MartError::Decode(why) => write!(f, "wire decode error: {why}"),
            MartError::InvalidShard(why) => write!(f, "invalid shard: {why}"),
        }
    }
}

impl std::error::Error for MartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MartError::Io(e) => Some(e),
            MartError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for MartError {
    fn from(e: io::Error) -> Self {
        MartError::Io(e)
    }
}

impl From<serde_json::Error> for MartError {
    fn from(e: serde_json::Error) -> Self {
        MartError::Parse(e)
    }
}

impl MartError {
    /// A short machine-readable tag for structured (JSONL) error
    /// responses, stable across message-wording changes.
    pub fn kind(&self) -> &'static str {
        match self {
            MartError::Io(_) => "io",
            MartError::Parse(_) => "parse",
            MartError::WrongVersion { .. } => "wrong_version",
            MartError::ChecksumMismatch { .. } => "checksum_mismatch",
            MartError::InvalidBundle(_) => "invalid_bundle",
            MartError::DimMismatch { .. } => "dim_mismatch",
            MartError::UnknownGpu(_) => "unknown_gpu",
            MartError::UnknownClass(_) => "unknown_class",
            MartError::UnrankableGpu(_) => "unrankable_gpu",
            MartError::BadRequest(_) => "bad_request",
            MartError::Decode(_) => "decode",
            MartError::InvalidShard(_) => "invalid_shard",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_every_variant() {
        let cases: Vec<(MartError, &str)> = vec![
            (
                MartError::Io(io::Error::new(io::ErrorKind::NotFound, "gone")),
                "I/O",
            ),
            (
                MartError::WrongVersion {
                    found: 7,
                    expected: 1,
                },
                "version 7",
            ),
            (
                MartError::ChecksumMismatch {
                    stored: "aa".into(),
                    computed: "bb".into(),
                },
                "checksum",
            ),
            (MartError::InvalidBundle("broken".into()), "broken"),
            (
                MartError::DimMismatch {
                    expected: Dim::D2,
                    found: Dim::D3,
                },
                "model is 2d",
            ),
            (MartError::UnknownGpu("H100".into()), "H100"),
            (MartError::UnknownClass(9), "class 9"),
            (MartError::UnrankableGpu(GpuId::Rtx2080Ti), "2080Ti"),
            (MartError::BadRequest("no offsets".into()), "no offsets"),
            (MartError::Decode("length lies".into()), "length lies"),
            (MartError::InvalidShard("bad magic".into()), "bad magic"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
            assert!(!err.kind().is_empty());
        }
    }
}

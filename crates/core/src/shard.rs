//! Sharded out-of-core corpus profiling: split the unique-stencil work
//! queue into contiguous shards, profile each shard independently (in
//! this process or several), persist each shard as a checksummed JSON
//! envelope, and merge the shards back into a [`ProfiledCorpus`] that is
//! **bit-for-bit identical** to the single-process
//! [`ProfiledCorpus::build`] result.
//!
//! Determinism argument: profiling randomness flows only through
//! per-(stencil, OC) seed streams keyed by each unique stencil's
//! *global* first-occurrence index ([`CorpusPlan`] carries those
//! indices into every shard), and shards are contiguous ranges of the
//! unique list merged in shard-id order — so no partitioning, worker
//! count, or scheduling decision can reach a single simulated number.
//!
//! The second half of the pipeline streams the corpus's regression rows
//! straight into an on-disk [`BinStore`]
//! ([`write_regression_store`]), emitting rows in exactly the
//! [`RegressionDataset::build`](crate::dataset::RegressionDataset::build)
//! order while holding only one shard of rows in memory.

use crate::binstore::{read_envelope_json, write_envelope_json, BinStore, BinStoreWriter};
use crate::config::PipelineConfig;
use crate::dataset::ProfiledCorpus;
use crate::error::MartError;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::path::Path;
use stencilmart_gpusim::{
    profile_corpus_tasks, shard_ranges, GpuArch, GpuId, OptCombo, StencilProfile,
};
use stencilmart_obs::manifest::fnv1a;
use stencilmart_obs::{self as obs, counters};
use stencilmart_stencil::features::{extract, FeatureConfig};
use stencilmart_stencil::generator::StencilGenerator;
use stencilmart_stencil::pattern::{Dim, StencilPattern};

/// Manifest file name for a sharded corpus directory.
pub const CORPUS_MANIFEST_FILE: &str = "corpus-manifest.json";

/// Deduplication of a pattern corpus by canonical pattern equality.
///
/// `unique[u]` is the corpus index of unique stencil `u`'s *first*
/// occurrence (which is also its profiling seed index), and
/// `slot_of[i]` maps corpus slot `i` to its unique slot — the exact
/// structure `ProfiledCorpus::build` uses, recomputable from the
/// patterns alone so a merge never has to trust a stored copy.
#[derive(Debug, Clone)]
pub struct DedupPlan {
    /// First-occurrence corpus index of each unique stencil.
    pub unique: Vec<usize>,
    /// Corpus slot → unique slot.
    pub slot_of: Vec<usize>,
}

/// Compute the [`DedupPlan`] for a corpus (counts duplicates into the
/// `corpus_duplicates` counter, like the resident profiling path).
pub fn dedup_plan(patterns: &[StencilPattern]) -> DedupPlan {
    let mut first_slot: HashMap<&StencilPattern, usize> = HashMap::new();
    let mut unique: Vec<usize> = Vec::new();
    let mut slot_of: Vec<usize> = Vec::with_capacity(patterns.len());
    for (i, p) in patterns.iter().enumerate() {
        match first_slot.entry(p) {
            Entry::Occupied(e) => {
                counters::CORPUS_DUPLICATES.inc();
                slot_of.push(*e.get());
            }
            Entry::Vacant(e) => {
                e.insert(unique.len());
                slot_of.push(unique.len());
                unique.push(i);
            }
        }
    }
    DedupPlan { unique, slot_of }
}

/// The deterministic prelude of a corpus build: generated patterns plus
/// their dedup plan, GPU list, and profiling config — everything a
/// shard worker needs to profile its slice identically to the
/// single-process path. Cheap to recompute in every worker (generation
/// is a seeded stream; profiling is the expensive part).
#[derive(Debug, Clone)]
pub struct CorpusPlan {
    /// Stencil dimensionality.
    pub dim: Dim,
    /// Grid points per axis.
    pub grid: usize,
    /// The generated corpus, in generation order.
    pub patterns: Vec<StencilPattern>,
    /// Dedup structure over `patterns`.
    pub plan: DedupPlan,
    gpus: Vec<GpuId>,
    pc: stencilmart_gpusim::ProfileConfig,
}

/// One profiled shard: per-GPU profiles for the contiguous unique-range
/// `[lo, hi)` of the plan's unique-stencil list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusShardData {
    /// Shard id.
    pub shard: usize,
    /// Total shard count the range was computed against.
    pub of: usize,
    /// First unique slot covered (inclusive).
    pub lo: usize,
    /// One past the last unique slot covered.
    pub hi: usize,
    /// `profiles[gpu][u - lo]` aligned with the plan's GPU order.
    pub profiles: Vec<Vec<StencilProfile>>,
}

#[derive(Debug, Serialize, Deserialize)]
struct CorpusManifestPayload {
    dim: Dim,
    grid: usize,
    gpus: Vec<GpuId>,
    patterns: Vec<StencilPattern>,
    shards: Vec<CorpusShardEntry>,
}

/// One shard file as recorded in the corpus manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusShardEntry {
    /// Shard id (contiguous from 0).
    pub id: usize,
    /// File name relative to the corpus directory.
    pub file: String,
    /// First unique slot covered.
    pub lo: usize,
    /// One past the last unique slot covered.
    pub hi: usize,
    /// FNV-1a checksum of the shard's JSON payload (16 hex digits).
    pub checksum: String,
}

fn invalid(msg: impl Into<String>) -> MartError {
    MartError::InvalidShard(msg.into())
}

/// File name of corpus shard `id`.
pub fn corpus_shard_file_name(id: usize) -> String {
    format!("corpus-{id:05}.json")
}

impl CorpusPlan {
    /// Generate the corpus and its dedup plan for `(cfg, dim)` — the
    /// same seeded stream [`ProfiledCorpus::build`] runs, minus the
    /// profiling.
    pub fn new(cfg: &PipelineConfig, dim: Dim) -> CorpusPlan {
        let patterns = obs::time("stencil_gen", || {
            let mut gen = StencilGenerator::new(cfg.seed ^ dim.rank() as u64);
            gen.generate_corpus(dim, cfg.max_order, cfg.stencils_per_dim)
        });
        counters::STENCILS_GENERATED.add(patterns.len() as u64);
        let plan = dedup_plan(&patterns);
        CorpusPlan {
            dim,
            grid: cfg.grid_for(dim),
            plan,
            patterns,
            gpus: cfg.gpus.clone(),
            pc: cfg.profile_config(),
        }
    }

    /// Number of unique stencils (= total profiling work items).
    pub fn unique_count(&self) -> usize {
        self.plan.unique.len()
    }

    /// Profile shard `shard` of `of`: the contiguous unique-range
    /// assigned by [`shard_ranges`], with every stencil keeping its
    /// global first-occurrence seed index so the result is independent
    /// of the partitioning.
    pub fn profile_shard(&self, shard: usize, of: usize) -> CorpusShardData {
        assert!(shard < of, "shard index out of range");
        let (lo, hi) = shard_ranges(self.unique_count(), of)[shard];
        let refs: Vec<&StencilPattern> = self.plan.unique[lo..hi]
            .iter()
            .map(|&i| &self.patterns[i])
            .collect();
        let seeds: Vec<u64> = self.plan.unique[lo..hi].iter().map(|&i| i as u64).collect();
        let archs: Vec<GpuArch> = self.gpus.iter().map(|&g| GpuArch::preset(g)).collect();
        let profiles = profile_corpus_tasks(&refs, &seeds, self.grid, &archs, &self.pc);
        CorpusShardData {
            shard,
            of,
            lo,
            hi,
            profiles,
        }
    }

    /// Write one profiled shard into `dir` as a checksummed envelope.
    /// Returns the manifest entry for it.
    pub fn write_shard(
        &self,
        dir: &Path,
        data: &CorpusShardData,
    ) -> Result<CorpusShardEntry, MartError> {
        std::fs::create_dir_all(dir).map_err(MartError::Io)?;
        let file = corpus_shard_file_name(data.shard);
        let payload = serde_json::to_string(data)?;
        let checksum = write_envelope_json(&dir.join(&file), &payload)?;
        counters::SHARDS_WRITTEN.inc();
        Ok(CorpusShardEntry {
            id: data.shard,
            file,
            lo: data.lo,
            hi: data.hi,
            checksum,
        })
    }

    /// Write the corpus manifest after every shard entry is in hand.
    pub fn write_manifest(
        &self,
        dir: &Path,
        entries: Vec<CorpusShardEntry>,
    ) -> Result<(), MartError> {
        let payload = CorpusManifestPayload {
            dim: self.dim,
            grid: self.grid,
            gpus: self.gpus.clone(),
            patterns: self.patterns.clone(),
            shards: entries,
        };
        write_envelope_json(
            &dir.join(CORPUS_MANIFEST_FILE),
            &serde_json::to_string(&payload)?,
        )?;
        Ok(())
    }
}

/// Single-process driver: plan, profile every shard in id order, write
/// the shard files and the manifest. Each `profile_shard` call is
/// independent, so distributing them across processes and writing the
/// same manifest yields the same directory.
pub fn build_sharded_corpus(
    dir: &Path,
    cfg: &PipelineConfig,
    dim: Dim,
    shards: usize,
) -> Result<(), MartError> {
    let _span = obs::span("corpus_build");
    let plan = CorpusPlan::new(cfg, dim);
    let mut entries = Vec::with_capacity(shards);
    for s in 0..shards {
        let data = plan.profile_shard(s, shards);
        entries.push(plan.write_shard(dir, &data)?);
    }
    plan.write_manifest(dir, entries)
}

/// Merge a sharded corpus directory back into a [`ProfiledCorpus`].
///
/// Verifies the manifest envelope and every shard's payload checksum
/// against both its own envelope and the manifest entry, validates that
/// the shard ranges tile the unique list exactly, concatenates the
/// unique profiles in shard-id order, and fans them out to duplicate
/// slots — reproducing [`ProfiledCorpus::build`] bit-for-bit.
pub fn merge_corpus_shards(dir: &Path) -> Result<ProfiledCorpus, MartError> {
    let (payload, _) = read_envelope_json(&dir.join(CORPUS_MANIFEST_FILE))?;
    let m: CorpusManifestPayload = serde_json::from_str(&payload)?;
    let plan = dedup_plan(&m.patterns);
    let k = m.shards.len();
    if k == 0 {
        return Err(invalid("corpus manifest lists no shards"));
    }
    let expect_ranges = shard_ranges(plan.unique.len(), k);
    let mut per_gpu: Vec<Vec<StencilProfile>> = (0..m.gpus.len())
        .map(|_| Vec::with_capacity(plan.unique.len()))
        .collect();
    for (i, entry) in m.shards.iter().enumerate() {
        if entry.id != i {
            return Err(invalid(format!(
                "corpus manifest: shard ids not contiguous ({} at position {i})",
                entry.id
            )));
        }
        if (entry.lo, entry.hi) != expect_ranges[i] {
            return Err(invalid(format!(
                "corpus shard {i}: range [{}, {}) does not match the canonical \
                 decomposition {:?} of {} uniques into {k} shards",
                entry.lo,
                entry.hi,
                expect_ranges[i],
                plan.unique.len()
            )));
        }
        let (shard_payload, checksum) = read_envelope_json(&dir.join(&entry.file))?;
        if checksum != entry.checksum {
            return Err(MartError::ChecksumMismatch {
                stored: entry.checksum.clone(),
                computed: checksum,
            });
        }
        debug_assert_eq!(
            checksum,
            format!("{:016x}", fnv1a(shard_payload.as_bytes()))
        );
        let data: CorpusShardData = serde_json::from_str(&shard_payload)?;
        if data.shard != i || data.of != k || (data.lo, data.hi) != (entry.lo, entry.hi) {
            return Err(invalid(format!(
                "corpus shard {i}: payload identity ({}, of {}, [{}, {})) disagrees with manifest",
                data.shard, data.of, data.lo, data.hi
            )));
        }
        if data.profiles.len() != m.gpus.len() {
            return Err(invalid(format!(
                "corpus shard {i}: {} GPU profile lists for {} GPUs",
                data.profiles.len(),
                m.gpus.len()
            )));
        }
        for (g, profs) in data.profiles.into_iter().enumerate() {
            if profs.len() != entry.hi - entry.lo {
                return Err(invalid(format!(
                    "corpus shard {i}: GPU {g} has {} profiles for {} stencils",
                    profs.len(),
                    entry.hi - entry.lo
                )));
            }
            per_gpu[g].extend(profs);
        }
    }
    let profiles = m
        .gpus
        .iter()
        .copied()
        .zip(per_gpu.into_iter().map(|uniq| {
            if plan.unique.len() == m.patterns.len() {
                uniq
            } else {
                plan.slot_of.iter().map(|&s| uniq[s].clone()).collect()
            }
        }))
        .collect();
    Ok(ProfiledCorpus {
        dim: m.dim,
        grid: m.grid,
        patterns: m.patterns,
        profiles,
    })
}

/// Stream a profiled corpus's regression rows into an on-disk
/// [`BinStore`], emitting rows in exactly the order
/// [`RegressionDataset::build`](crate::dataset::RegressionDataset::build)
/// materializes them (GPU → stencil → OC → instance), with the same
/// feature layout (extended stencil features ++ OC flags ++ parameter
/// features ++ hardware features ++ optional log2-grid column) and the
/// same `ln(time_ms)` target. The row's OC index rides along as the
/// chunk label. Subsampling is intentionally disabled: capping rows is
/// the in-RAM workaround this store exists to remove.
///
/// Memory stays bounded by one shard of raw rows plus one raw column
/// during cut derivation, however large the corpus.
pub fn write_regression_store(
    dir: &Path,
    corpus: &ProfiledCorpus,
    cfg: &PipelineConfig,
    n_bins: usize,
    rows_per_shard: usize,
) -> Result<BinStore, MartError> {
    write_regression_store_with(
        dir,
        corpus,
        cfg,
        n_bins,
        rows_per_shard,
        StoreOptions::default(),
    )
}

/// On-disk layout options for [`write_regression_store_with`]. The
/// layout is invisible to training — every combination decodes to the
/// same bin codes and trains to byte-identical models (pinned by the
/// out-of-core property suite).
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreOptions {
    /// Force u16 bin codes even when the bin count fits in a byte.
    pub wide_codes: bool,
    /// Compress CODES sections with the frame-of-reference codec.
    pub compress: bool,
}

/// [`write_regression_store`] with explicit [`StoreOptions`].
pub fn write_regression_store_with(
    dir: &Path,
    corpus: &ProfiledCorpus,
    cfg: &PipelineConfig,
    n_bins: usize,
    rows_per_shard: usize,
    opts: StoreOptions,
) -> Result<BinStore, MartError> {
    let _span = obs::span("regression_store_write");
    let fc = FeatureConfig::extended();
    let ocs = OptCombo::enumerate();
    let stencil_feats: Vec<Vec<f32>> = corpus
        .patterns
        .iter()
        .map(|p| extract(p, &fc).as_f32())
        .collect();
    let mut writer: Option<BinStoreWriter> = None;
    let mut row: Vec<f32> = Vec::new();
    for (gpu, profiles) in &corpus.profiles {
        let hw: Vec<f32> = GpuArch::preset(*gpu)
            .feature_vector()
            .iter()
            .map(|&v| v as f32)
            .collect();
        for (si, profile) in profiles.iter().enumerate() {
            for (oi, outcome) in profile.per_oc.iter().enumerate() {
                let oc_feats: Vec<f32> =
                    ocs[oi].feature_vector().iter().map(|&v| v as f32).collect();
                for inst in &outcome.instances {
                    let params = inst.params.feature_vector(&ocs[oi]);
                    row.clear();
                    row.extend_from_slice(&stencil_feats[si]);
                    row.extend_from_slice(&oc_feats);
                    row.extend(params.iter().map(|&v| v as f32));
                    row.extend_from_slice(&hw);
                    if cfg.include_grid_size {
                        row.push((corpus.grid as f32).log2());
                    }
                    let w = match &mut writer {
                        Some(w) => w,
                        None => {
                            let mut w =
                                BinStoreWriter::create(dir, row.len(), n_bins, rows_per_shard)?;
                            if opts.wide_codes {
                                w = w.with_wide_codes();
                            }
                            if opts.compress {
                                w = w.with_codec();
                            }
                            writer.insert(w)
                        }
                    };
                    w.push_row(&row, inst.time_ms.ln() as f32, oi as u32)?;
                }
            }
        }
    }
    writer
        .ok_or_else(|| invalid("corpus produced no regression rows"))?
        .finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::RegressionDataset;
    use std::fs;
    use std::path::PathBuf;
    use stencilmart_ml::gbdt::binned::BinnedMatrix;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("stencilmart_shard_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_cfg() -> PipelineConfig {
        PipelineConfig {
            stencils_per_dim: 6,
            samples_per_oc: 2,
            gpus: vec![
                stencilmart_gpusim::GpuId::V100,
                stencilmart_gpusim::GpuId::P100,
            ],
            max_regression_rows: usize::MAX,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn sharded_corpus_merges_bit_identical_to_resident_build() {
        let cfg = tiny_cfg();
        let expect = ProfiledCorpus::build(&cfg, Dim::D2);
        let expect_json = serde_json::to_string(&expect).unwrap();
        for shards in [1usize, 3] {
            let dir = tmp_dir(&format!("merge{shards}"));
            build_sharded_corpus(&dir, &cfg, Dim::D2, shards).unwrap();
            let merged = merge_corpus_shards(&dir).unwrap();
            assert_eq!(
                serde_json::to_string(&merged).unwrap(),
                expect_json,
                "{shards} shards must reproduce the resident corpus"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn corrupt_corpus_shard_is_a_structured_error() {
        let cfg = tiny_cfg();
        let dir = tmp_dir("corrupt");
        build_sharded_corpus(&dir, &cfg, Dim::D2, 2).unwrap();
        let victim = dir.join(corpus_shard_file_name(1));
        let text = fs::read_to_string(&victim).unwrap();
        let tampered = text.replace("\\\"time_ms\\\"", "\\\"time_mz\\\"");
        assert_ne!(tampered, text, "tamper pattern must hit the payload");
        fs::write(&victim, tampered).unwrap();
        let err = merge_corpus_shards(&dir).expect_err("tampered shard must fail");
        assert_eq!(err.kind(), "checksum_mismatch");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn regression_store_matches_resident_dataset_binning() {
        let cfg = tiny_cfg();
        let corpus = ProfiledCorpus::build(&cfg, Dim::D2);
        let ds = RegressionDataset::build(&corpus, &cfg); // uncapped
        let dir = tmp_dir("regstore");
        let store = write_regression_store(&dir, &corpus, &cfg, 16, 37).unwrap();
        assert_eq!(store.rows(), ds.len());
        assert_eq!(store.cols(), ds.features.cols());
        // Targets stream out in the same order…
        let targets = store.all_targets().unwrap();
        for (a, b) in targets.iter().zip(&ds.target_ln_ms) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // …and the on-disk cuts are bit-identical to binning the
        // resident dataset.
        let bm = BinnedMatrix::new(&ds.features, 16);
        for c in 0..store.cols() {
            let expect: Vec<u32> = (0..bm.n_bins(c) - 1)
                .map(|b| bm.cut_value(c, b).to_bits())
                .collect();
            let got: Vec<u32> = store.cuts()[c].iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, expect, "column {c}");
        }
        // Labels carry the OC index of each row.
        let labels = store.all_labels().unwrap();
        for (l, key) in labels.iter().zip(&ds.keys) {
            assert_eq!(*l as usize, key.oc);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Property-based tests for the GPU simulator: physical sanity of the
//! cost model over random stencils, OCs, parameter settings, and
//! architectures.

use proptest::prelude::*;
use stencilmart_gpusim::{
    characterize, occupancy, simulate, simulate_breakdown, BoundaryModel, GpuArch, GpuId,
    NoiseModel, OptCombo, ParamSetting, ParamSpace,
};
use stencilmart_stencil::generator::{GeneratorConfig, StencilGenerator};
use stencilmart_stencil::pattern::{Dim, StencilPattern};

fn arb_dim() -> impl Strategy<Value = Dim> {
    prop_oneof![Just(Dim::D2), Just(Dim::D3)]
}

fn arb_gpu() -> impl Strategy<Value = GpuId> {
    prop_oneof![
        Just(GpuId::P100),
        Just(GpuId::V100),
        Just(GpuId::Rtx2080Ti),
        Just(GpuId::A100)
    ]
}

fn arb_pattern() -> impl Strategy<Value = StencilPattern> {
    (arb_dim(), 1u8..=4, 0u64..500).prop_map(|(dim, order, seed)| {
        StencilGenerator::new(seed).generate(&GeneratorConfig::new(dim, order))
    })
}

fn arb_oc() -> impl Strategy<Value = OptCombo> {
    (0usize..30).prop_map(|i| OptCombo::enumerate()[i])
}

fn arb_config() -> impl Strategy<Value = (StencilPattern, OptCombo, ParamSetting, GpuArch)> {
    (arb_pattern(), arb_oc(), arb_gpu(), 0u64..1000).prop_map(|(p, oc, gpu, seed)| {
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed);
        let params = ParamSpace::new(oc, p.dim()).sample(&mut rng);
        (p, oc, params, GpuArch::preset(gpu))
    })
}

fn grid_of(p: &StencilPattern) -> usize {
    if p.dim() == Dim::D2 {
        8192
    } else {
        512
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulated_times_are_positive_and_finite((p, oc, params, arch) in arb_config()) {
        if let Ok(t) = simulate(&p, grid_of(&p), &oc, &params, &arch) {
            prop_assert!(t.is_finite());
            prop_assert!(t > 0.0);
            // One double-precision sweep of these grids finishes well
            // under a minute on any of the evaluated GPUs.
            prop_assert!(t < 60_000.0, "t = {t} ms");
        }
    }

    #[test]
    fn breakdown_components_bound_total((p, oc, params, arch) in arb_config()) {
        if let Ok(b) = simulate_breakdown(&p, grid_of(&p), &oc, &params, &arch, BoundaryModel::None) {
            let roof = b.t_mem_ms.max(b.t_comp_ms).max(b.t_smem_ms);
            prop_assert!(b.total_ms >= roof - 1e-9, "total below roofline");
            prop_assert!(b.t_mem_ms >= 0.0 && b.t_comp_ms >= 0.0);
            prop_assert!(b.occupancy.fraction > 0.0 && b.occupancy.fraction <= 1.0);
        }
    }

    #[test]
    fn profiles_respect_resource_limits((p, oc, params, arch) in arb_config()) {
        if let Ok(prof) = characterize(&p, grid_of(&p), &oc, &params, &arch) {
            prop_assert!(prof.regs_per_thread <= 255);
            prop_assert!(prof.smem_per_block <= arch.smem_per_block);
            prop_assert!(prof.threads_per_block <= 1024);
            prop_assert!(prof.total_blocks > 0);
            prop_assert!(prof.dram_bytes_per_point > 0.0);
            prop_assert!(prof.flops_per_point >= p.flops_per_point() as f64 * 0.9);
            let occ = occupancy(&prof, &arch).unwrap();
            prop_assert!(occ.blocks_per_sm >= 1);
        }
    }

    #[test]
    fn boundary_model_never_speeds_up((p, oc, params, arch) in arb_config()) {
        let grid = grid_of(&p);
        let plain = simulate_breakdown(&p, grid, &oc, &params, &arch, BoundaryModel::None);
        let ghost = simulate_breakdown(&p, grid, &oc, &params, &arch, BoundaryModel::GhostFill);
        if let (Ok(a), Ok(b)) = (plain, ghost) {
            prop_assert!(b.total_ms >= a.total_ms - 1e-12);
        }
    }

    #[test]
    fn bigger_grids_never_run_faster((p, oc, params, arch) in arb_config()) {
        // Equality is possible below one full wave: a latency-bound
        // launch takes one wave regardless of how full it is.
        let (small, large) = if p.dim() == Dim::D2 { (4096, 8192) } else { (256, 512) };
        if let (Ok(a), Ok(b)) = (
            simulate(&p, small, &oc, &params, &arch),
            simulate(&p, large, &oc, &params, &arch),
        ) {
            prop_assert!(b >= a - 1e-12, "{b} < {a}");
        }
    }

    #[test]
    fn noise_preserves_positivity(sigma in 0.0f64..0.3, t in 1e-3f64..1e4, seed in 0u64..100) {
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed);
        let noisy = NoiseModel::with_sigma(sigma).apply(t, &mut rng);
        prop_assert!(noisy > 0.0);
        prop_assert!(noisy.is_finite());
    }

    #[test]
    fn simulation_is_deterministic((p, oc, params, arch) in arb_config()) {
        let a = simulate(&p, grid_of(&p), &oc, &params, &arch);
        let b = simulate(&p, grid_of(&p), &oc, &params, &arch);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "determinism violated"),
        }
    }
}

//! Profiling must be bit-identical regardless of the worker count, and
//! the observability counters (monotonic sums) must agree too — only the
//! worker-pool gauge may differ. Exercises the `STENCILMART_THREADS`
//! override end to end through [`stencilmart_obs::runtime::worker_count`].

use stencilmart_gpusim::{
    profile_corpus, profile_corpus_multi, profile_stencil, GpuArch, GpuId, ProfileConfig,
};
use stencilmart_obs as obs;
use stencilmart_stencil::generator::StencilGenerator;
use stencilmart_stencil::pattern::Dim;

fn run_with_threads(
    threads: &str,
    patterns: &[stencilmart_stencil::pattern::StencilPattern],
    arch: &GpuArch,
    cfg: &ProfileConfig,
) -> (
    Vec<stencilmart_gpusim::StencilProfile>,
    Vec<(&'static str, u64)>,
) {
    // Safety: this integration-test binary runs this single test only, so
    // no other thread reads the variable concurrently.
    std::env::set_var("STENCILMART_THREADS", threads);
    obs::reset();
    let profiles = profile_corpus(patterns, 64, arch, cfg);
    let counters = obs::counters::snapshot();
    (profiles, counters)
}

#[test]
fn profiling_is_deterministic_across_thread_counts() {
    let mut generator = StencilGenerator::new(0xD15C);
    let patterns = generator.generate_corpus(Dim::D2, 3, 12);
    assert!(patterns.len() >= 8, "corpus generation came up short");
    let arch = GpuArch::preset(GpuId::V100);
    let cfg = ProfileConfig {
        samples_per_oc: 4,
        ..ProfileConfig::default()
    };

    let (seq, counters_seq) = run_with_threads("1", &patterns, &arch, &cfg);
    let (par, counters_par) = run_with_threads("4", &patterns, &arch, &cfg);

    // Bit-identical profiles: structural equality plus a serialized
    // round-trip so float formatting differences cannot hide.
    assert_eq!(seq, par, "profiles differ between 1 and 4 workers");
    let json_seq = serde_json::to_string(&seq).unwrap();
    let json_par = serde_json::to_string(&par).unwrap();
    assert_eq!(json_seq, json_par, "serialized profiles differ");

    // Counter totals are commutative sums and must match exactly.
    assert_eq!(
        counters_seq, counters_par,
        "observability counters differ between 1 and 4 workers"
    );
    let profiled = counters_seq
        .iter()
        .find(|(name, _)| *name == "stencils_profiled")
        .map(|(_, v)| *v)
        .unwrap();
    assert_eq!(profiled, patterns.len() as u64);

    // The full metrics report's `counters` section must also agree (the
    // worker-pool gauge lives in `gauges` and is allowed to differ).
    std::env::set_var("STENCILMART_THREADS", "4");
    let counters_json = |profiles_json: &str| {
        let manifest = obs::RunManifest::new("obs_determinism", cfg.seed, profiles_json);
        let report = serde_json::parse_value(&obs::report::metrics_json(&manifest)).unwrap();
        serde_json::to_string(report.field("counters").unwrap()).unwrap()
    };
    // Both runs ended with identical counter state, so rendering the
    // report twice from the two runs' serialized inputs must agree.
    assert_eq!(counters_json(&json_seq), counters_json(&json_par));

    // The flattened multi-GPU work queue must be just as deterministic:
    // 1 worker, 4 workers, and a fully sequential per-stencil reference
    // all produce bit-identical profiles, and the counter snapshots (the
    // queue-steal gauge is deliberately *not* a counter) agree.
    let archs: Vec<GpuArch> = GpuId::ALL.into_iter().map(GpuArch::preset).collect();
    let run_multi = |threads: &str| {
        std::env::set_var("STENCILMART_THREADS", threads);
        obs::reset();
        let profiles = profile_corpus_multi(&patterns, 64, &archs, &cfg);
        (profiles, obs::counters::snapshot())
    };
    let (multi_seq, mc_seq) = run_multi("1");
    let (multi_par, mc_par) = run_multi("4");
    assert_eq!(
        multi_seq, multi_par,
        "work-queue profiles differ between 1 and 4 workers"
    );
    assert_eq!(
        serde_json::to_string(&multi_seq).unwrap(),
        serde_json::to_string(&multi_par).unwrap(),
        "serialized work-queue profiles differ"
    );
    assert_eq!(
        mc_seq, mc_par,
        "observability counters differ between 1 and 4 work-queue workers"
    );
    let reference: Vec<Vec<_>> = archs
        .iter()
        .map(|arch| {
            patterns
                .iter()
                .enumerate()
                .map(|(i, p)| profile_stencil(p, 64, arch, &cfg, i as u64))
                .collect()
        })
        .collect();
    assert_eq!(
        multi_par, reference,
        "work queue diverges from the sequential per-stencil reference"
    );
    std::env::remove_var("STENCILMART_THREADS");
}

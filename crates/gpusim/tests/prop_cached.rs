//! The two-phase simulator must be a pure refactor: evaluating through a
//! shared, precomputed [`PatternAnalysis`] has to be **bit-identical** to
//! the uncached path that re-derives every pattern quantity per call —
//! across random patterns, all 30 OCs, sampled parameter settings, and
//! all four GPU presets.

use proptest::prelude::*;
use rand::SeedableRng;
use stencilmart_gpusim::kernel::shifted_union;
use stencilmart_gpusim::{
    characterize, characterize_with, simulate, simulate_breakdown, simulate_breakdown_with,
    simulate_with, BoundaryModel, GpuArch, GpuId, OptCombo, ParamSpace, PatternAnalysis,
};
use stencilmart_stencil::generator::{GeneratorConfig, StencilGenerator};
use stencilmart_stencil::pattern::{Dim, StencilPattern};

fn arb_dim() -> impl Strategy<Value = Dim> {
    prop_oneof![Just(Dim::D2), Just(Dim::D3)]
}

fn arb_pattern() -> impl Strategy<Value = StencilPattern> {
    (arb_dim(), 1u8..=4, 0u64..500).prop_map(|(dim, order, seed)| {
        StencilGenerator::new(seed).generate(&GeneratorConfig::new(dim, order))
    })
}

fn grid_of(p: &StencilPattern) -> usize {
    if p.dim() == Dim::D2 {
        8192
    } else {
        512
    }
}

/// Bit-exact comparison of simulate results (`PartialEq` would accept
/// `-0.0 == 0.0`; `to_bits` does not).
fn assert_bits_eq(
    a: Result<f64, stencilmart_gpusim::Crash>,
    b: Result<f64, stencilmart_gpusim::Crash>,
) {
    match (a, b) {
        (Ok(x), Ok(y)) => assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}"),
        (Err(x), Err(y)) => assert_eq!(x, y),
        (x, y) => panic!("cached/uncached disagree on crash: {x:?} vs {y:?}"),
    }
}

/// Serialize a simulator result so float formatting differences cannot
/// hide (the vendored serde has no `Result` impl).
fn ser<T: serde::Serialize>(r: &Result<T, stencilmart_gpusim::Crash>) -> String {
    match r {
        Ok(v) => serde_json::to_string(v).unwrap(),
        Err(c) => format!("crash:{c:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // One shared analysis, reused across every (OC, params, GPU)
    // evaluation, equals a fresh uncached call each time.
    #[test]
    fn cached_analysis_is_bit_identical(p in arb_pattern(), seed in 0u64..1000) {
        let analysis = PatternAnalysis::new(&p);
        let grid = grid_of(&p);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for oc in OptCombo::enumerate() {
            let space = ParamSpace::new(oc, p.dim());
            for params in space.sample_many(&mut rng, 2) {
                for gpu in GpuId::ALL {
                    let arch = GpuArch::preset(gpu);
                    // characterize: full profile equality (serialized, so
                    // float formatting differences cannot hide).
                    let cached = characterize_with(&analysis, grid, &oc, &params, &arch);
                    let fresh = characterize(&p, grid, &oc, &params, &arch);
                    prop_assert_eq!(ser(&cached), ser(&fresh));
                    // simulate: bit-exact times.
                    assert_bits_eq(
                        simulate_with(&analysis, grid, &oc, &params, &arch),
                        simulate(&p, grid, &oc, &params, &arch),
                    );
                    // breakdown (with the boundary model the profiler
                    // does not exercise).
                    let bd_cached = simulate_breakdown_with(
                        &analysis, grid, &oc, &params, &arch, BoundaryModel::GhostFill,
                    );
                    let bd_fresh = simulate_breakdown(
                        &p, grid, &oc, &params, &arch, BoundaryModel::GhostFill,
                    );
                    prop_assert_eq!(ser(&bd_cached), ser(&bd_fresh));
                }
            }
        }
    }

    // The precomputed shifted-union table agrees with the direct
    // computation for every axis and merge factor the parameter space
    // can sample — and the fallback path handles out-of-table factors.
    #[test]
    fn shifted_union_table_matches_direct(p in arb_pattern()) {
        let analysis = PatternAnalysis::new(&p);
        for axis in 0..p.dim().rank() {
            for m in [1u32, 2, 3, 4, 5, 8, 16] {
                prop_assert_eq!(analysis.shifted_union(axis, m), shifted_union(&p, axis, m));
            }
        }
    }
}

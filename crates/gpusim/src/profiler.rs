//! The profiling stage of the StencilMART pipeline: for each stencil and
//! each valid OC, randomly sample parameter settings, "measure" each
//! (simulate + noise), and keep every instance plus the per-OC best
//! (paper §IV-A).

use crate::arch::GpuArch;
use crate::exec::simulate_with;
use crate::kernel::{Crash, PatternAnalysis};
use crate::noise::NoiseModel;
use crate::opts::OptCombo;
use crate::params::{ParamSetting, ParamSpace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use stencilmart_obs::{self as obs, counters};
use stencilmart_stencil::pattern::StencilPattern;

/// Profiling configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileConfig {
    /// Random parameter settings sampled per OC (the paper's random
    /// search budget).
    pub samples_per_oc: usize,
    /// Measurement noise applied to every sample.
    pub noise: NoiseModel,
    /// Base seed; per-(stencil, OC) streams are derived from it so results
    /// are deterministic regardless of thread scheduling.
    pub seed: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            samples_per_oc: 8,
            noise: NoiseModel::default(),
            seed: 0x5EED,
        }
    }
}

/// One measured (OC, parameter setting) instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceRecord {
    /// The optimization combination.
    pub oc: OptCombo,
    /// The sampled parameter setting.
    pub params: ParamSetting,
    /// Measured (simulated + noise) time for one sweep, in ms.
    pub time_ms: f64,
}

/// Profiling outcome for one OC on one stencil.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcOutcome {
    /// The optimization combination.
    pub oc: OptCombo,
    /// All successfully measured instances.
    pub instances: Vec<InstanceRecord>,
    /// Crashes encountered during sampling, by reason.
    pub crashes: Vec<Crash>,
    /// Index of the fastest instance, fixed at construction so the PCC
    /// merging and dataset assembly, which consult `best()` repeatedly,
    /// never re-scan the instance list.
    best_idx: Option<usize>,
}

impl OcOutcome {
    /// Assemble an outcome, caching the index of the fastest instance.
    pub fn new(oc: OptCombo, instances: Vec<InstanceRecord>, crashes: Vec<Crash>) -> OcOutcome {
        let best_idx = instances
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.time_ms.total_cmp(&b.time_ms))
            .map(|(i, _)| i);
        OcOutcome {
            oc,
            instances,
            crashes,
            best_idx,
        }
    }

    /// The fastest measured instance, if any setting executed (cached at
    /// construction; O(1)).
    pub fn best(&self) -> Option<&InstanceRecord> {
        self.best_idx.map(|i| &self.instances[i])
    }

    /// Whether every sampled setting crashed (the paper notes such OCs
    /// "fail to be applied" for certain stencils).
    pub fn all_crashed(&self) -> bool {
        self.instances.is_empty()
    }
}

/// Full profiling result for one stencil on one GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StencilProfile {
    /// Per-OC outcomes, in [`OptCombo::enumerate`] order.
    pub per_oc: Vec<OcOutcome>,
}

impl StencilProfile {
    /// The OC with the fastest best instance.
    pub fn best_oc(&self) -> Option<&OcOutcome> {
        self.per_oc
            .iter()
            .filter(|o| !o.all_crashed())
            .min_by(|a, b| {
                a.best()
                    .unwrap()
                    .time_ms
                    .total_cmp(&b.best().unwrap().time_ms)
            })
    }

    /// Best achievable time over all OCs (ms).
    pub fn best_time_ms(&self) -> Option<f64> {
        self.best_oc().map(|o| o.best().unwrap().time_ms)
    }

    /// Worst per-OC best time over OCs that executed (ms). The Fig. 1 gap
    /// is `worst / best`.
    pub fn worst_best_time_ms(&self) -> Option<f64> {
        self.per_oc
            .iter()
            .filter_map(|o| o.best().map(|b| b.time_ms))
            .max_by(f64::total_cmp)
    }

    /// Best time for a specific OC (ms).
    pub fn time_for(&self, oc: &OptCombo) -> Option<f64> {
        self.per_oc
            .iter()
            .find(|o| &o.oc == oc)
            .and_then(|o| o.best().map(|b| b.time_ms))
    }

    /// All instances across OCs.
    pub fn all_instances(&self) -> impl Iterator<Item = &InstanceRecord> {
        self.per_oc.iter().flat_map(|o| o.instances.iter())
    }
}

fn derive_seed(base: u64, stencil_idx: u64, oc_idx: u64) -> u64 {
    // SplitMix64-style mixing for independent per-cell streams.
    let mut z = base
        .wrapping_add(stencil_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(oc_idx.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Profile one stencil under every valid OC, reusing a precomputed
/// [`PatternAnalysis`] for every simulator evaluation.
///
/// `stencil_idx` keys the deterministic per-stencil random stream; pass
/// the stencil's position in its corpus. The per-(stencil, OC) streams
/// make the result independent of which thread (or GPU loop) runs it.
pub fn profile_stencil_with(
    analysis: &PatternAnalysis,
    grid: usize,
    arch: &GpuArch,
    cfg: &ProfileConfig,
    stencil_idx: u64,
) -> StencilProfile {
    let per_oc: Vec<OcOutcome> = OptCombo::enumerate()
        .into_iter()
        .enumerate()
        .map(|(oc_idx, oc)| {
            let mut rng =
                ChaCha8Rng::seed_from_u64(derive_seed(cfg.seed, stencil_idx, oc_idx as u64));
            let space = ParamSpace::new(oc, analysis.dim());
            let mut instances = Vec::new();
            let mut crashes = Vec::new();
            for params in space.sample_many(&mut rng, cfg.samples_per_oc) {
                counters::ANALYSIS_CACHE_HITS.inc();
                match simulate_with(analysis, grid, &oc, &params, arch) {
                    Ok(t) => instances.push(InstanceRecord {
                        oc,
                        params,
                        time_ms: cfg.noise.apply(t, &mut rng),
                    }),
                    Err(c) => crashes.push(c),
                }
            }
            OcOutcome::new(oc, instances, crashes)
        })
        .collect();
    counters::STENCILS_PROFILED.inc();
    counters::OC_INSTANCES_SIMULATED.add(per_oc.iter().map(|o| o.instances.len() as u64).sum());
    counters::CRASHES_OBSERVED.add(per_oc.iter().map(|o| o.crashes.len() as u64).sum());
    StencilProfile { per_oc }
}

/// Profile one stencil under every valid OC (analyzes the pattern first;
/// prefer [`profile_stencil_with`] when profiling the same stencil on
/// several GPUs).
pub fn profile_stencil(
    pattern: &StencilPattern,
    grid: usize,
    arch: &GpuArch,
    cfg: &ProfileConfig,
    stencil_idx: u64,
) -> StencilProfile {
    profile_stencil_with(&PatternAnalysis::new(pattern), grid, arch, cfg, stencil_idx)
}

/// Profile `patterns` on every GPU in `archs` with an explicit seed index
/// per stencil.
///
/// This is the flattened work-queue core shared by [`profile_corpus`] and
/// [`profile_corpus_multi`]: every (GPU, stencil) pair becomes one task,
/// and workers drain tasks off a single atomic counter, so crash-heavy
/// stencils (which finish their 30 OCs much faster) no longer leave
/// statically chunked workers idle. Each stencil is analyzed exactly once
/// up front and the [`PatternAnalysis`] is shared across all GPUs.
///
/// `seed_indices[si]` is the seed index used for stencil `si` — normally
/// its corpus position, but the dedup path in `ProfiledCorpus::build`
/// passes first-occurrence indices so deduplicated corpora stay
/// bit-identical to profiling the full corpus. Results are
/// `out[gpu][stencil]`, bit-identical for any worker count: the
/// per-(stencil, OC) seed streams never depend on scheduling.
pub fn profile_corpus_tasks(
    patterns: &[&StencilPattern],
    seed_indices: &[u64],
    grid: usize,
    archs: &[GpuArch],
    cfg: &ProfileConfig,
) -> Vec<Vec<StencilProfile>> {
    assert_eq!(patterns.len(), seed_indices.len());
    let _span = obs::span("profile_corpus");
    let analyses: Vec<PatternAnalysis> = patterns.iter().map(|p| PatternAnalysis::new(p)).collect();
    let n_stencils = patterns.len();
    let n_tasks = n_stencils * archs.len();
    let workers = obs::runtime::worker_count().min(n_tasks.max(1));
    counters::WORKER_POOL_SIZE.set(workers as u64);
    let run_task = |task: usize| {
        let (gi, si) = (task / n_stencils, task % n_stencils);
        profile_stencil_with(&analyses[si], grid, &archs[gi], cfg, seed_indices[si])
    };
    if workers <= 1 || n_tasks < 4 {
        let mut out: Vec<Vec<StencilProfile>> = Vec::with_capacity(archs.len());
        for gi in 0..archs.len() {
            out.push(
                (0..n_stencils)
                    .map(|si| run_task(gi * n_stencils + si))
                    .collect(),
            );
        }
        return out;
    }
    // One flat queue over all (GPU, stencil) tasks. A worker's "home"
    // range is what static chunking would have handed it; claims outside
    // it count as steals (a load-balance signal, inherently
    // scheduling-dependent, hence a gauge and not a counter).
    let next = AtomicUsize::new(0);
    let chunk = n_tasks.div_ceil(workers);
    let mut done: Vec<(usize, StencilProfile)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|wi| {
                let next = &next;
                let run_task = &run_task;
                s.spawn(move || {
                    let home = wi * chunk..((wi + 1) * chunk).min(n_tasks);
                    let mut produced = Vec::new();
                    let mut steals = 0u64;
                    loop {
                        let task = next.fetch_add(1, Ordering::Relaxed);
                        if task >= n_tasks {
                            break;
                        }
                        if !home.contains(&task) {
                            steals += 1;
                        }
                        produced.push((task, run_task(task)));
                    }
                    (produced, steals)
                })
            })
            .collect();
        let mut done = Vec::with_capacity(n_tasks);
        let mut steals = 0;
        for h in handles {
            let (produced, s) = h.join().expect("profiler worker panicked");
            done.extend(produced);
            steals += s;
        }
        counters::PROFILE_QUEUE_STEALS.set(steals);
        done
    });
    done.sort_unstable_by_key(|(task, _)| *task);
    let mut done = done.into_iter();
    (0..archs.len())
        .map(|_| {
            (0..n_stencils)
                .map(|_| done.next().expect("filled").1)
                .collect()
        })
        .collect()
}

/// Profile a corpus on several GPUs at once, analyzing each stencil only
/// once and balancing all (GPU, stencil) tasks over one worker pool.
///
/// Results are `out[gpu][stencil]`, bit-identical to calling
/// [`profile_corpus`] per GPU in order.
pub fn profile_corpus_multi(
    patterns: &[StencilPattern],
    grid: usize,
    archs: &[GpuArch],
    cfg: &ProfileConfig,
) -> Vec<Vec<StencilProfile>> {
    let refs: Vec<&StencilPattern> = patterns.iter().collect();
    let seeds: Vec<u64> = (0..patterns.len() as u64).collect();
    profile_corpus_tasks(&refs, &seeds, grid, archs, cfg)
}

/// Profile a corpus of stencils in parallel on one GPU. Results are
/// deterministic and ordered to match the input corpus.
///
/// The worker count comes from the pipeline-wide resolution in
/// [`stencilmart_obs::runtime::worker_count`], so `STENCILMART_THREADS`
/// governs this pool exactly like the ML thread pools.
pub fn profile_corpus(
    patterns: &[StencilPattern],
    grid: usize,
    arch: &GpuArch,
    cfg: &ProfileConfig,
) -> Vec<StencilProfile> {
    profile_corpus_multi(patterns, grid, std::slice::from_ref(arch), cfg)
        .pop()
        .expect("one arch in, one profile vector out")
}

/// Partition `n` items into `k` contiguous, near-equal ranges
/// `[lo, hi)` covering `0..n` in order. The canonical shard
/// decomposition for out-of-core profiling: every caller that agrees on
/// `(n, k)` agrees on the ranges, so shards computed by independent
/// workers (or processes) concatenate back to the original order.
/// Ranges can be empty when `k > n`.
pub fn shard_ranges(n: usize, k: usize) -> Vec<(usize, usize)> {
    assert!(k > 0, "need at least one shard");
    (0..k).map(|s| (s * n / k, (s + 1) * n / k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::GpuId;
    use stencilmart_stencil::pattern::Dim;
    use stencilmart_stencil::shapes;

    fn v100() -> GpuArch {
        GpuArch::preset(GpuId::V100)
    }

    fn small_cfg() -> ProfileConfig {
        ProfileConfig {
            samples_per_oc: 4,
            noise: NoiseModel::none(),
            seed: 1,
        }
    }

    #[test]
    fn shard_ranges_tile_exactly() {
        for n in [0usize, 1, 5, 8, 100, 101] {
            for k in [1usize, 2, 3, 8, 13] {
                let ranges = shard_ranges(n, k);
                assert_eq!(ranges.len(), k);
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges[k - 1].1, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                }
                let sizes: Vec<usize> = ranges.iter().map(|(lo, hi)| hi - lo).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "near-equal: {sizes:?}");
            }
        }
    }

    #[test]
    fn profile_covers_all_ocs() {
        let p = shapes::star(Dim::D2, 2);
        let prof = profile_stencil(&p, 8192, &v100(), &small_cfg(), 0);
        assert_eq!(prof.per_oc.len(), 30);
        assert!(prof.best_oc().is_some());
        assert!(prof.best_time_ms().unwrap() > 0.0);
    }

    #[test]
    fn best_is_not_worse_than_any_instance() {
        let p = shapes::box_(Dim::D2, 2);
        let prof = profile_stencil(&p, 8192, &v100(), &small_cfg(), 0);
        let best = prof.best_time_ms().unwrap();
        for inst in prof.all_instances() {
            assert!(best <= inst.time_ms + 1e-12);
        }
    }

    #[test]
    fn tb_without_streaming_crashes_for_3d_order4() {
        let p = shapes::box_(Dim::D3, 4);
        let prof = profile_stencil(&p, 512, &v100(), &small_cfg(), 0);
        let tb = OptCombo::parse("TB").unwrap();
        let outcome = prof.per_oc.iter().find(|o| o.oc == tb).unwrap();
        assert!(outcome.all_crashed(), "TB alone must crash for box3d4r");
        // The gap still computes over surviving OCs.
        assert!(prof.worst_best_time_ms().unwrap() >= prof.best_time_ms().unwrap());
    }

    #[test]
    fn profiling_is_deterministic() {
        let p = shapes::cross(Dim::D2, 3);
        let a = profile_stencil(&p, 8192, &v100(), &small_cfg(), 7);
        let b = profile_stencil(&p, 8192, &v100(), &small_cfg(), 7);
        assert_eq!(a, b);
        let c = profile_stencil(&p, 8192, &v100(), &small_cfg(), 8);
        assert_ne!(a, c, "different stencil index must give a new stream");
    }

    #[test]
    fn corpus_profiling_matches_sequential() {
        let patterns: Vec<_> = (1..=4u8)
            .map(|r| shapes::star(Dim::D2, r))
            .chain((1..=4u8).map(|r| shapes::box_(Dim::D2, r)))
            .collect();
        let cfg = small_cfg();
        let par = profile_corpus(&patterns, 8192, &v100(), &cfg);
        let seq: Vec<_> = patterns
            .iter()
            .enumerate()
            .map(|(i, p)| profile_stencil(p, 8192, &v100(), &cfg, i as u64))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn multi_gpu_queue_matches_per_gpu_runs() {
        let patterns: Vec<_> = (1..=3u8)
            .map(|r| shapes::star(Dim::D2, r))
            .chain((1..=3u8).map(|r| shapes::cross(Dim::D2, r)))
            .collect();
        let cfg = small_cfg();
        let archs = [
            GpuArch::preset(GpuId::V100),
            GpuArch::preset(GpuId::P100),
            GpuArch::preset(GpuId::A100),
        ];
        let multi = profile_corpus_multi(&patterns, 8192, &archs, &cfg);
        assert_eq!(multi.len(), archs.len());
        for (per_gpu, arch) in multi.iter().zip(&archs) {
            assert_eq!(per_gpu, &profile_corpus(&patterns, 8192, arch, &cfg));
        }
    }

    #[test]
    fn streaming_ocs_usually_win() {
        // Paper Fig. 2: OCs with streaming perform better for most
        // stencils.
        let mut st_wins = 0;
        let mut total = 0;
        for r in 1..=4u8 {
            for dim in [Dim::D2, Dim::D3] {
                let grid = if dim == Dim::D2 { 8192 } else { 512 };
                for shape in shapes::Shape::ALL {
                    let p = shapes::build(shape, dim, r);
                    let prof = profile_stencil(&p, grid, &v100(), &small_cfg(), total);
                    if prof.best_oc().unwrap().oc.st {
                        st_wins += 1;
                    }
                    total += 1;
                }
            }
        }
        assert!(
            st_wins as f64 >= 0.6 * total as f64,
            "streaming won only {st_wins}/{total}"
        );
    }
}
